//! Baseline µop trace generation.
//!
//! Produces the dynamic instruction stream an optimized software probe
//! loop (the paper's Listing 1, compiled) executes over a materialized
//! index image. The trace-driven core models of `widx-sim` replay it
//! against the same simulated memory the Widx model walks, so the OoO
//! baseline and the accelerator are measured on byte-identical
//! structures.
//!
//! Trace shape per probe key:
//!
//! 1. load the key from the input column (keys are dense: 8–16 per cache
//!    block, so most loads hit);
//! 2. one single-cycle ALU µop per hash-recipe step, chained (the hash is
//!    serial on the key);
//! 3. two address-arithmetic µops (mask, scale+base);
//! 4. load the bucket header's status word; empty buckets end here;
//! 5. per node: load the key slot (+ the pointed-to key for indirect
//!    layouts), one compare µop and its conditional branch, a store on
//!    match, and the next-pointer load that the following node depends
//!    on — the serial pointer-chasing chain the paper identifies as the
//!    bottleneck.
//!
//! # Branch misprediction policy
//!
//! Key-compare branches are *data-dependent*: whether a visited node
//! matches the probe key is essentially random to the predictor, so each
//! compare branch is marked mispredicted with deterministic
//! pseudo-random probability 1/2 (hashed from the probe key and node
//! address, so runs are reproducible). Loop-control branches
//! (empty-bucket test, chain exit) are strongly biased or fixed-length
//! in these workloads and are marked predicted. A mispredicted compare
//! resolves only when the node's key arrives from memory, which is what
//! keeps a real OoO core from perfectly overlapping consecutive probes —
//! the paper's OoO baseline beats one Widx walker only marginally
//! (Section 6.1) precisely because of this effect.

use widx_db::index::{HashIndex, KeyKind, NodeLayout, NONE};
use widx_sim::trace::{Trace, UopIdx};

use crate::memimg::IndexImage;

/// SplitMix-style deterministic mixer for the misprediction policy.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether the data-dependent compare of `key` against the node at
/// `node_addr` mispredicts (deterministic 50 %).
fn compare_mispredicts(key: u64, node_addr: u64) -> bool {
    mix(key ^ node_addr.rotate_left(17)) & 1 == 0
}

/// Generates the software probe trace for `probes[range]` over `image`.
///
/// The logical `index` supplies the walk order (which is exactly what
/// the materialized image encodes; see `memimg` tests for the
/// equivalence proof).
#[must_use]
pub fn probe_trace(index: &HashIndex, image: &IndexImage, probes: &[u64]) -> Trace {
    let mut t = Trace::new();
    let recipe = index.recipe();
    let layout = image.layout;
    let kw = layout.key_width as u8;
    let mut out_cursor = 0u64;

    for (i, key) in probes.iter().enumerate() {
        t.mark_tuple();
        // 0. Probe-loop overhead of the compiled key-iterator loop
        //    (Listing 1's `for` header): induction increment, bounds
        //    compare, well-predicted loop-back branch.
        let inc = t.comp(1, [None, None]);
        let bound = t.comp(1, [Some(inc), None]);
        t.branch(false, [Some(bound), None]);
        // 1. Key fetch.
        let key_load = t.load(image.input_addr(i as u64), kw, [None, None]);
        // 2. Hash chain.
        let mut h: UopIdx = key_load;
        for _ in 0..recipe.op_count() {
            h = t.comp(1, [Some(h), None]);
        }
        // 3. Bucket address arithmetic (mask; shift+add).
        let mask = t.comp(1, [Some(h), None]);
        let addr = t.comp(1, [Some(mask), None]);

        // 4. Header status load.
        let b = recipe.bucket_of(*key, image.bucket_count);
        let header = image.header_addr(b);
        let count_load = t.load(header, 4, [Some(addr), None]);
        let check = t.comp(1, [Some(count_load), None]);
        // Empty-bucket test: strongly biased, predicted correctly.
        t.branch(false, [Some(check), None]);
        let bucket = &index.buckets()[b as usize];
        if bucket.count == 0 {
            continue;
        }

        // 5. Walk: header node first, then the overflow chain.
        let emit = |t: &mut Trace, cursor: &mut u64, cmp: UopIdx, payload: u64| {
            let addr = image.output_addr(*cursor % image.output_capacity);
            t.store(addr, 8, payload, [Some(cmp), None]);
            *cursor += 1;
        };

        // Header node's key (one extra dereference when indirect).
        let slot_addr = header.offset(NodeLayout::HEADER_SLOT_OFFSET as i64);
        let hdr_key = match layout.key_kind {
            KeyKind::Direct => t.load(slot_addr, kw, [Some(check), None]),
            KeyKind::Indirect => {
                let ptr = t.load(slot_addr, 8, [Some(check), None]);
                t.load(image.build_key_addr(bucket.payload), kw, [Some(ptr), None])
            }
        };
        let hdr_cmp = t.comp(1, [Some(hdr_key), Some(key_load)]);
        t.branch(
            compare_mispredicts(*key, header.get()),
            [Some(hdr_cmp), None],
        );
        if bucket.key == *key {
            emit(&mut t, &mut out_cursor, hdr_cmp, bucket.payload);
        }
        let mut next_load = t.load(
            header.offset(NodeLayout::HEADER_NEXT_OFFSET as i64),
            8,
            [Some(check), None],
        );

        let mut next = bucket.next;
        while next != NONE {
            let node = &index.nodes()[next as usize];
            let node_addr = image.node_addr(u64::from(next));
            let slot_addr = node_addr.offset(NodeLayout::NODE_SLOT_OFFSET as i64);
            let node_key = match layout.key_kind {
                KeyKind::Direct => t.load(slot_addr, kw, [Some(next_load), None]),
                KeyKind::Indirect => {
                    let ptr = t.load(slot_addr, 8, [Some(next_load), None]);
                    t.load(image.build_key_addr(node.payload), kw, [Some(ptr), None])
                }
            };
            let cmp = t.comp(1, [Some(node_key), Some(key_load)]);
            t.branch(
                compare_mispredicts(*key, node_addr.get()),
                [Some(cmp), None],
            );
            if node.key == *key {
                emit(&mut t, &mut out_cursor, cmp, node.payload);
            }
            next_load = t.load(
                node_addr.offset(NodeLayout::NODE_NEXT_OFFSET as i64),
                8,
                [Some(next_load), None],
            );
            // Chain-exit test: fixed-length chains predict well.
            t.branch(false, [Some(next_load), None]);
            next = node.next;
        }
    }
    t
}

/// Generates the software probe trace for a B+-tree lookup loop over a
/// materialized [`BTreeImage`](crate::btree_img::BTreeImage): per inner
/// node a separator scan (loads within one node mostly share its cache
/// blocks; the scan-exit branch is data-dependent), then the
/// child-pointer load every deeper access depends on — a pointer chase
/// just like the hash chain — and finally the leaf scan with a store
/// per match.
#[must_use]
pub fn btree_probe_trace(
    tree: &widx_db::index::BTreeIndex,
    image: &crate::btree_img::BTreeImage,
    probes: &[u64],
) -> Trace {
    use crate::btree_img::BTreeImage;
    let export = tree.export();
    let f = image.fanout;
    let mut t = Trace::new();
    let mut out_cursor = 0u64;

    for (i, key) in probes.iter().enumerate() {
        t.mark_tuple();
        let inc = t.comp(1, [None, None]);
        let bound = t.comp(1, [Some(inc), None]);
        t.branch(false, [Some(bound), None]);
        let key_load = t.load(image.input_addr(i as u64), 8, [None, None]);

        let mut dep = key_load;
        let mut node_idx = 0u64;
        for d in (0..export.levels.len()).rev() {
            let node_addr = image.inner_addr(d, node_idx);
            let (keys, children) = &export.levels[d][node_idx as usize];
            let count_load = t.load(node_addr, 8, [Some(dep), None]);
            let slot = keys.partition_point(|k| *k <= *key);
            let mut scan_dep = count_load;
            for j in 0..slot.max(1).min(keys.len()) {
                let kl = t.load(node_addr + 8 + (j as u64) * 8, 8, [Some(count_load), None]);
                scan_dep = t.comp(1, [Some(kl), Some(key_load)]);
            }
            // Scan-exit branch: slot position is data-dependent.
            t.branch(
                compare_mispredicts(*key, node_addr.get() ^ d as u64),
                [Some(scan_dep), None],
            );
            dep = t.load(
                node_addr + BTreeImage::child_array_offset(f) + (slot as u64) * 8,
                8,
                [Some(scan_dep), None],
            );
            node_idx = u64::from(children[slot]);
        }

        // Leaf scan: compare keys in order, store the first match.
        let leaf_addr = image.leaf_addr(node_idx);
        let (keys, payloads) = &export.leaves[node_idx as usize];
        let count_load = t.load(leaf_addr, 8, [Some(dep), None]);
        for (j, k) in keys.iter().enumerate() {
            let kl = t.load(leaf_addr + 8 + (j as u64) * 8, 8, [Some(count_load), None]);
            let cmp = t.comp(1, [Some(kl), Some(key_load)]);
            t.branch(
                compare_mispredicts(*key, leaf_addr.get() ^ (j as u64)),
                [Some(cmp), None],
            );
            if *k == *key {
                let pl = t.load(leaf_addr + 8 + 8 * f + (j as u64) * 8, 8, [Some(cmp), None]);
                let out = image.output_addr(out_cursor % image.output_capacity);
                t.store(out, 8, payloads[j], [Some(pl), None]);
                out_cursor += 1;
                break;
            }
            if *k > *key {
                break;
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memimg::materialize;
    use widx_db::hash::HashRecipe;
    use widx_sim::config::SystemConfig;
    use widx_sim::core::{run_inorder, run_ooo};
    use widx_sim::mem::{MemorySystem, RegionAllocator};

    fn setup(layout: NodeLayout) -> (MemorySystem, HashIndex, IndexImage, Vec<u64>) {
        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut alloc = RegionAllocator::new();
        let pairs: Vec<(u64, u64)> = (0..500u64).map(|k| (k, k)).collect();
        let index = HashIndex::build(HashRecipe::robust64(), 512, pairs.iter().copied());
        let probes: Vec<u64> = (0..100u64).map(|i| i * 5).collect();
        let image = materialize(&mut mem, &mut alloc, &index, &probes, layout, 200);
        (mem, index, image, probes)
    }

    #[test]
    fn trace_has_one_tuple_per_probe() {
        let (_, index, image, probes) = setup(NodeLayout::direct8());
        let t = probe_trace(&index, &image, &probes);
        assert_eq!(t.tuples(), probes.len());
        // At least key + header loads per probe.
        assert!(t.load_count() >= probes.len() * 2);
    }

    #[test]
    fn indirect_layout_adds_loads() {
        let (_, index, image_d, probes) = setup(NodeLayout::direct8());
        let (_, index_i, image_i, _) = setup(NodeLayout::indirect8());
        let direct = probe_trace(&index, &image_d, &probes);
        let indirect = probe_trace(&index_i, &image_i, &probes);
        assert!(
            indirect.load_count() > direct.load_count(),
            "indirect {} vs direct {}",
            indirect.load_count(),
            direct.load_count()
        );
    }

    #[test]
    fn heavier_hash_adds_comp_uops() {
        let (mut mem, _, _, _) = setup(NodeLayout::direct8());
        let mut alloc = RegionAllocator::new();
        let pairs: Vec<(u64, u64)> = (0..100u64).map(|k| (k, k)).collect();
        let probes: Vec<u64> = (0..50u64).collect();
        let light = HashIndex::build(HashRecipe::trivial(), 128, pairs.iter().copied());
        let heavy = HashIndex::build(HashRecipe::heavy128(), 128, pairs.iter().copied());
        let img_l = materialize(
            &mut mem,
            &mut alloc,
            &light,
            &probes,
            NodeLayout::direct8(),
            100,
        );
        let img_h = materialize(
            &mut mem,
            &mut alloc,
            &heavy,
            &probes,
            NodeLayout::direct8(),
            100,
        );
        let tl = probe_trace(&light, &img_l, &probes);
        let th = probe_trace(&heavy, &img_h, &probes);
        assert!(th.len() > tl.len());
    }

    #[test]
    fn trace_replays_on_both_cores() {
        let (mut mem, index, image, probes) = setup(NodeLayout::direct8());
        let t = probe_trace(&index, &image, &probes);
        let sys = SystemConfig::default();
        let ooo = run_ooo(&sys.ooo, &t, &mut mem, 0);
        let mut mem2 = MemorySystem::new(sys.clone());
        // Rebuild functional state for the second run.
        let mut alloc = RegionAllocator::new();
        let _ = materialize(
            alloc_helper(&mut mem2),
            &mut alloc,
            &index,
            &probes,
            image.layout,
            200,
        );
        let ino = run_inorder(&sys.inorder, &t, &mut mem2, 0);
        assert!(ooo.cycles > 0 && ino.cycles > 0);
        assert!(
            ino.cycles >= ooo.cycles,
            "in-order {} vs ooo {}",
            ino.cycles,
            ooo.cycles
        );
        assert_eq!(ooo.tuples, probes.len() as u64);
    }

    // Helper: identity — keeps the test body symmetrical.
    fn alloc_helper(mem: &mut MemorySystem) -> &mut MemorySystem {
        mem
    }

    #[test]
    fn stores_emitted_per_match() {
        let (_, index, image, _) = setup(NodeLayout::direct8());
        // Probe only hit keys: every probe ends in exactly one store.
        let hits: Vec<u64> = (0..50u64).collect();
        let t = probe_trace(&index, &image, &hits);
        let stores = t
            .uops()
            .iter()
            .filter(|u| matches!(u.kind, widx_sim::trace::UopKind::Store { .. }))
            .count();
        assert_eq!(stores, 50);
    }
}
