//! # widx-workloads — workload generation and materialization
//!
//! The paper evaluates three benchmarks: a hand-optimized hash-join
//! kernel at three index sizes (Section 5), and TPC-H / TPC-DS queries on
//! MonetDB with a 100 GB dataset. This crate provides the reproduction's
//! equivalents:
//!
//! * [`datagen`] — seeded key generators (uniform, unique-shuffled,
//!   Zipfian) built on `rand::rngs::StdRng` for bit-stable workloads.
//! * [`kernel`] — the hash-join kernel configurations (Small / Medium /
//!   Large), scaled so the cache-residency relationships of the paper
//!   hold for the simulated hierarchy (L1-resident / LLC-resident /
//!   DRAM-resident); scale factors are documented per configuration.
//! * [`profiles`] — per-query *index profiles* for the 12 queries the
//!   paper simulates (TPC-H 2, 11, 17, 19, 20, 22; TPC-DS 5, 37, 40, 52,
//!   64, 82): index size, layout, hash cost, probe count, and the
//!   query-level indexing fraction used for Figure 2a projection.
//! * [`dss`] — synthetic-but-executed DSS query plans whose operator
//!   mixes regenerate the Figure 2a execution-time breakdown on the real
//!   software engine of `widx-db`.
//! * [`memimg`] — materializes a logical [`widx_db::index::HashIndex`]
//!   (plus probe input and output buffers) into simulated memory
//!   according to a [`widx_db::index::NodeLayout`], for consumption by
//!   the Widx accelerator model.
//! * [`trace`] — generates the baseline cores' µop traces for the same
//!   probe stream over the same materialized image, so OoO/in-order and
//!   Widx timing are compared on byte-identical data structures.
//! * [`btree_img`] — B+-tree materialization for the Section 7
//!   "other index structures" extension.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod btree_img;
pub mod datagen;
pub mod dss;
pub mod kernel;
pub mod memimg;
pub mod profiles;
pub mod trace;
