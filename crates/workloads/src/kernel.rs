//! The hash-join kernel workloads (paper Section 5).
//!
//! The paper configures the "no partitioning" kernel of Balkesen et al.
//! with 4-byte keys and payloads, up to two nodes per bucket, and three
//! index sizes: Small (4 K tuples / 32 KB raw), Medium (512 K / 4 MB),
//! Large (128 M / 1 GB), probed by 128 M uniform keys.
//!
//! # Scaling
//!
//! Cycle simulation of 128 M probes is infeasible, so the reproduction
//! preserves the *cache-residency relationships* rather than absolute
//! sizes, using the materialized layout's 32-byte headers:
//!
//! | Config | Paper | Here | Residency (32 KB L1 / 4 MB LLC) |
//! |---|---|---|---|
//! | Small  | 32 KB | 1 K tuples → 32 KB | L1-resident |
//! | Medium | 4 MB  | 128 K tuples → 4 MB | ≈ LLC-sized |
//! | Large  | 1 GB  | 2 M tuples → 64 MB | far exceeds the LLC |
//!
//! The probe stream is a SMARTS-style sample (default 16 K keys) of the
//! paper's 128 M-key outer relation; harnesses report confidence
//! intervals over windows of it.

use widx_db::hash::HashRecipe;
use widx_db::index::{HashIndex, NodeLayout};

use crate::datagen;

/// The kernel's three index-size configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelSize {
    /// L1-resident index (paper: 4 K tuples, 32 KB).
    Small,
    /// LLC-sized index (paper: 512 K tuples, 4 MB).
    Medium,
    /// DRAM-resident index (paper: 128 M tuples, 1 GB).
    Large,
}

impl KernelSize {
    /// All sizes, smallest first.
    pub const ALL: [KernelSize; 3] = [KernelSize::Small, KernelSize::Medium, KernelSize::Large];

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelSize::Small => "Small",
            KernelSize::Medium => "Medium",
            KernelSize::Large => "Large",
        }
    }

    /// Build-side tuple count at reproduction scale.
    #[must_use]
    pub fn tuples(self) -> usize {
        match self {
            KernelSize::Small => 1 << 10,
            KernelSize::Medium => 1 << 17,
            KernelSize::Large => 1 << 21,
        }
    }
}

/// A fully specified kernel workload.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Which index size.
    pub size: KernelSize,
    /// Number of sampled probe keys.
    pub probes: usize,
    /// Workload seed.
    pub seed: u64,
}

impl KernelConfig {
    /// Default probe-sample size.
    pub const DEFAULT_PROBES: usize = 16 * 1024;

    /// Creates the standard configuration for `size`.
    #[must_use]
    pub fn new(size: KernelSize) -> KernelConfig {
        KernelConfig {
            size,
            probes: Self::DEFAULT_PROBES,
            seed: 0x5EED + size.tuples() as u64,
        }
    }

    /// Overrides the probe-sample size (for quick tests).
    #[must_use]
    pub fn with_probes(mut self, probes: usize) -> KernelConfig {
        self.probes = probes;
        self
    }

    /// The kernel's physical layout: 4-byte direct keys.
    #[must_use]
    pub fn layout(&self) -> NodeLayout {
        NodeLayout::kernel4()
    }

    /// The kernel's hash: the trivial masked-XOR of Listing 1 (the paper
    /// notes the kernel "implements an oversimplified hash function").
    #[must_use]
    pub fn recipe(&self) -> HashRecipe {
        HashRecipe::trivial()
    }

    /// Builds the index and the sampled probe stream.
    ///
    /// Build keys are the dense set `0..tuples` (every probe can match);
    /// probes are uniform over the key space, like the paper's uniform
    /// outer relation. The bucket count is half the tuple count, giving
    /// exactly the paper's "up to two nodes per bucket" occupancy (a
    /// header node plus one chained node).
    #[must_use]
    pub fn build(&self) -> (HashIndex, Vec<u64>) {
        let tuples = self.size.tuples();
        let build_keys = datagen::unique_shuffled_keys(self.seed, tuples);
        let index = HashIndex::build(
            self.recipe(),
            (tuples / 2).max(1),
            build_keys
                .iter()
                .enumerate()
                .map(|(row, k)| (*k, row as u64)),
        );
        let probes = datagen::uniform_keys(self.seed ^ 0xABCD, self.probes, tuples as u64);
        (index, probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale() {
        assert!(KernelSize::Small.tuples() < KernelSize::Medium.tuples());
        assert!(KernelSize::Medium.tuples() < KernelSize::Large.tuples());
        // Small bucket array fits L1 (32 KB), Large far exceeds LLC.
        let header = NodeLayout::HEADER_STRIDE;
        assert!(KernelSize::Small.tuples() * header <= 32 * 1024);
        assert!(KernelSize::Large.tuples() * header >= 16 * 4 * 1024 * 1024);
    }

    #[test]
    fn build_produces_probeable_index() {
        let cfg = KernelConfig::new(KernelSize::Small).with_probes(100);
        let (index, probes) = cfg.build();
        assert_eq!(index.len(), KernelSize::Small.tuples());
        assert_eq!(probes.len(), 100);
        // All probes fall in the key space and hence match exactly once.
        for p in &probes {
            assert_eq!(index.lookup_all(*p).len(), 1);
        }
    }

    #[test]
    fn bucket_occupancy_matches_paper() {
        let cfg = KernelConfig::new(KernelSize::Small);
        let (index, _) = cfg.build();
        let stats = index.stats();
        // Dense keys over half as many buckets: exactly two nodes per
        // bucket, the paper's kernel occupancy.
        assert!(
            (stats.mean_chain - 2.0).abs() < 0.5,
            "mean chain {}",
            stats.mean_chain
        );
        assert!(stats.max_chain <= 2, "max chain {}", stats.max_chain);
    }

    #[test]
    fn deterministic() {
        let a = KernelConfig::new(KernelSize::Small)
            .with_probes(64)
            .build()
            .1;
        let b = KernelConfig::new(KernelSize::Small)
            .with_probes(64)
            .build()
            .1;
        assert_eq!(a, b);
    }
}
