//! Executed DSS query mixes for the Figure 2a breakdown.
//!
//! Figure 2a of the paper profiles 16 TPC-H and 9 TPC-DS queries on a
//! real Xeon and splits execution time into Index / Scan / Sort&Join /
//! Other. Without MonetDB and the 100 GB datasets, the reproduction
//! *executes* synthetic query plans on the `widx-db` engine — real
//! scans, real hash joins (build + decoupled hash/walk probes), real
//! sorts, and real aggregations over seeded data — with per-operator work
//! sized so that the measured mix approximates each query's published
//! breakdown. The *measurement machinery* is therefore genuine (wall
//! time attributed by the instrumented executor); only the operator
//! sizing is calibrated.

use widx_db::column::{Column, ColumnType};
use widx_db::exec::{OpClass, QueryRun};
use widx_db::hash::HashRecipe;
use widx_db::ops;

use crate::datagen;
use crate::profiles::Suite;

/// Rough per-row operator costs (nanoseconds) used to size the
/// synthetic plans from target fractions. Measured breakdowns come from
/// actual execution, not from these constants. [`OperatorCosts::measure`]
/// replaces them with host-calibrated values.
const PROBE_NS: f64 = 28.0;
const SCAN_NS: f64 = 2.2;
const SORT_NS: f64 = 70.0;
const AGG_NS: f64 = 35.0;

/// Per-row operator costs used to derive plan sizes from target
/// fractions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OperatorCosts {
    /// Nanoseconds per probed row (build amortized in).
    pub probe_ns: f64,
    /// Nanoseconds per scanned row.
    pub scan_ns: f64,
    /// Nanoseconds per sorted row.
    pub sort_ns: f64,
    /// Nanoseconds per aggregated row.
    pub agg_ns: f64,
}

impl Default for OperatorCosts {
    fn default() -> OperatorCosts {
        OperatorCosts {
            probe_ns: PROBE_NS,
            scan_ns: SCAN_NS,
            sort_ns: SORT_NS,
            agg_ns: AGG_NS,
        }
    }
}

impl OperatorCosts {
    /// Measures per-row operator costs on this host with short
    /// calibration runs, so that derived plans land near their target
    /// fractions regardless of the machine.
    #[must_use]
    pub fn measure() -> OperatorCosts {
        use std::time::Instant;
        let n = 200_000usize;
        let dim = Column::new(
            "d",
            ColumnType::U64,
            datagen::unique_shuffled_keys(99, n / 8),
        );
        let fact = Column::new(
            "f",
            ColumnType::U64,
            datagen::uniform_keys(98, n, (n / 8) as u64),
        );
        let t0 = Instant::now();
        let join = ops::hash_join(&dim, &fact, HashRecipe::robust64(), n / 8);
        let probe_ns =
            (join.build_nanos + join.hash_nanos + join.walk_nanos).max(1) as f64 / n as f64;
        let _ = t0;

        let scan_col = Column::new(
            "s",
            ColumnType::U64,
            datagen::uniform_keys(97, n * 4, 1 << 30),
        );
        let t1 = Instant::now();
        let sel = ops::scan_filter(&scan_col, |v| v & 7 == 0);
        let scan_ns = t1.elapsed().as_nanos().max(1) as f64 / (n * 4) as f64;
        std::hint::black_box(sel.rows.len());

        let sort_col = Column::new("o", ColumnType::U64, datagen::uniform_keys(96, n, 1 << 30));
        let sort = ops::sort_column(&sort_col);
        let sort_ns = sort.nanos.max(1) as f64 / n as f64;

        let gk = Column::new("gk", ColumnType::U64, datagen::uniform_keys(95, n, 1024));
        let gv = Column::new("gv", ColumnType::U64, datagen::uniform_keys(94, n, 1000));
        let agg = ops::group_sum(&gk, &gv);
        let agg_ns = agg.nanos.max(1) as f64 / n as f64;

        OperatorCosts {
            probe_ns,
            scan_ns,
            sort_ns,
            agg_ns,
        }
    }
}

/// A synthetic DSS query plan calibrated to a published time breakdown.
#[derive(Clone, Debug)]
pub struct DssQuerySpec {
    /// Query name as in Figure 2a (e.g. `q17`).
    pub name: &'static str,
    /// Benchmark suite.
    pub suite: Suite,
    /// Build-side rows of the query's join.
    pub dim_rows: usize,
    /// Probe-side rows (drives Index time).
    pub fact_rows: usize,
    /// Rows scanned by selection passes (drives Scan time).
    pub scan_rows: usize,
    /// Rows sorted (drives Sort&Join time).
    pub sort_rows: usize,
    /// Rows aggregated (drives Other time).
    pub agg_rows: usize,
    /// Workload seed.
    pub seed: u64,
}

impl DssQuerySpec {
    /// Derives a spec from the target Figure 2a fractions
    /// `(index, scan, sort&join, other)` at the given probe-row budget.
    #[must_use]
    pub fn from_fractions(
        name: &'static str,
        suite: Suite,
        fractions: [f64; 4],
        fact_rows: usize,
        seed: u64,
    ) -> DssQuerySpec {
        Self::from_fractions_with(
            &OperatorCosts::default(),
            name,
            suite,
            fractions,
            fact_rows,
            seed,
        )
    }

    /// [`from_fractions`](Self::from_fractions) with explicit
    /// (e.g. host-calibrated) operator costs.
    #[must_use]
    pub fn from_fractions_with(
        costs: &OperatorCosts,
        name: &'static str,
        suite: Suite,
        fractions: [f64; 4],
        fact_rows: usize,
        seed: u64,
    ) -> DssQuerySpec {
        let [fi, fs, fj, fo] = fractions;
        assert!(fi > 0.0, "index fraction must be positive");
        let index_ns = fact_rows as f64 * costs.probe_ns;
        let total_ns = index_ns / fi;
        DssQuerySpec {
            name,
            suite,
            dim_rows: (fact_rows / 8).max(1024),
            fact_rows,
            scan_rows: ((total_ns * fs) / costs.scan_ns) as usize,
            sort_rows: ((total_ns * fj) / costs.sort_ns) as usize,
            agg_rows: ((total_ns * fo) / costs.agg_ns) as usize,
            seed,
        }
    }

    /// Rebuilds this spec's operator sizes from its target fractions
    /// using `costs`.
    #[must_use]
    pub fn recalibrated(&self, costs: &OperatorCosts, fractions: [f64; 4]) -> DssQuerySpec {
        Self::from_fractions_with(
            costs,
            self.name,
            self.suite,
            fractions,
            self.fact_rows,
            self.seed,
        )
    }

    /// Scales every operator's row count (tests use small scales).
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> DssQuerySpec {
        let s = |v: usize| ((v as f64 * scale) as usize).max(64);
        self.dim_rows = s(self.dim_rows);
        self.fact_rows = s(self.fact_rows);
        self.scan_rows = s(self.scan_rows);
        self.sort_rows = s(self.sort_rows);
        self.agg_rows = s(self.agg_rows);
        self
    }

    /// Executes the plan on the software engine, returning the
    /// instrumented run.
    #[must_use]
    pub fn run(&self) -> QueryRun {
        let mut q = QueryRun::new();
        let dim = Column::new(
            "dim",
            ColumnType::U64,
            datagen::unique_shuffled_keys(self.seed, self.dim_rows),
        );
        let fact = Column::new(
            "fact",
            ColumnType::U64,
            datagen::uniform_keys(self.seed ^ 1, self.fact_rows, self.dim_rows as u64),
        );
        let scan_col = Column::new(
            "scan",
            ColumnType::U64,
            datagen::uniform_keys(self.seed ^ 2, self.scan_rows, 1 << 30),
        );
        let sort_col = Column::new(
            "sort",
            ColumnType::U64,
            datagen::uniform_keys(self.seed ^ 3, self.sort_rows, 1 << 30),
        );
        let agg_keys = Column::new(
            "gk",
            ColumnType::U64,
            datagen::uniform_keys(self.seed ^ 4, self.agg_rows, 1024),
        );
        let agg_vals = Column::new(
            "gv",
            ColumnType::U64,
            datagen::uniform_keys(self.seed ^ 5, self.agg_rows, 1000),
        );

        // Selection scan.
        let _sel = q.run(OpClass::Scan, "scan", || {
            ops::scan_filter(&scan_col, |v| v & 7 == 0)
        });
        // Index build + probe (hash and walk recorded separately, the
        // Figure 2b split).
        let join = ops::hash_join(&dim, &fact, HashRecipe::robust64(), self.dim_rows);
        q.record(OpClass::Index, "index.build", join.build_nanos);
        q.record(OpClass::Index, "index.hash", join.hash_nanos);
        q.record(OpClass::Index, "index.walk", join.walk_nanos);
        // Sort.
        let _perm = q.run(OpClass::SortJoin, "sort", || ops::sort_column(&sort_col));
        // Aggregate.
        let _sum = q.run(OpClass::Other, "aggregate", || {
            ops::group_sum(&agg_keys, &agg_vals)
        });
        q
    }
}

/// Target Figure 2a fractions `(index, scan, sort&join, other)` for the
/// 16 TPC-H queries.
#[must_use]
pub fn tpch_fractions() -> Vec<(&'static str, [f64; 4], u64)> {
    vec![
        ("q2", [0.55, 0.15, 0.20, 0.10], 2),
        ("q3", [0.15, 0.35, 0.40, 0.10], 3),
        ("q5", [0.20, 0.30, 0.40, 0.10], 5),
        ("q7", [0.25, 0.30, 0.35, 0.10], 7),
        ("q8", [0.30, 0.30, 0.30, 0.10], 8),
        ("q9", [0.30, 0.25, 0.35, 0.10], 9),
        ("q11", [0.45, 0.20, 0.20, 0.15], 11),
        ("q13", [0.10, 0.40, 0.40, 0.10], 13),
        ("q14", [0.25, 0.40, 0.25, 0.10], 14),
        ("q15", [0.20, 0.45, 0.25, 0.10], 15),
        ("q17", [0.94, 0.03, 0.02, 0.01], 17),
        ("q18", [0.40, 0.25, 0.25, 0.10], 18),
        ("q19", [0.60, 0.20, 0.10, 0.10], 19),
        ("q20", [0.70, 0.15, 0.10, 0.05], 20),
        ("q21", [0.35, 0.30, 0.25, 0.10], 21),
        ("q22", [0.50, 0.25, 0.15, 0.10], 22),
    ]
}

/// Target Figure 2a fractions for the 9 TPC-DS queries.
#[must_use]
pub fn tpcds_fractions() -> Vec<(&'static str, [f64; 4], u64)> {
    vec![
        ("q5", [0.35, 0.30, 0.25, 0.10], 105),
        ("q37", [0.29, 0.40, 0.20, 0.11], 137),
        ("q40", [0.45, 0.25, 0.20, 0.10], 140),
        ("q43", [0.40, 0.30, 0.20, 0.10], 143),
        ("q46", [0.50, 0.20, 0.20, 0.10], 146),
        ("q52", [0.50, 0.25, 0.15, 0.10], 152),
        ("q64", [0.55, 0.20, 0.15, 0.10], 164),
        ("q81", [0.77, 0.10, 0.08, 0.05], 181),
        ("q82", [0.40, 0.30, 0.20, 0.10], 182),
    ]
}

/// The 16 TPC-H queries of Figure 2a sized with `costs`.
#[must_use]
pub fn tpch_fig2_with(costs: &OperatorCosts) -> Vec<DssQuerySpec> {
    tpch_fractions()
        .into_iter()
        .map(|(name, fr, seed)| {
            DssQuerySpec::from_fractions_with(costs, name, Suite::TpcH, fr, 150_000, seed)
        })
        .collect()
}

/// The 9 TPC-DS queries of Figure 2a sized with `costs`.
#[must_use]
pub fn tpcds_fig2_with(costs: &OperatorCosts) -> Vec<DssQuerySpec> {
    tpcds_fractions()
        .into_iter()
        .map(|(name, fr, seed)| {
            DssQuerySpec::from_fractions_with(costs, name, Suite::TpcDs, fr, 150_000, seed)
        })
        .collect()
}

/// The 16 TPC-H queries of Figure 2a with their target breakdowns.
#[must_use]
pub fn tpch_fig2() -> Vec<DssQuerySpec> {
    let f = |name, fr, seed| DssQuerySpec::from_fractions(name, Suite::TpcH, fr, 150_000, seed);
    vec![
        f("q2", [0.55, 0.15, 0.20, 0.10], 2),
        f("q3", [0.15, 0.35, 0.40, 0.10], 3),
        f("q5", [0.20, 0.30, 0.40, 0.10], 5),
        f("q7", [0.25, 0.30, 0.35, 0.10], 7),
        f("q8", [0.30, 0.30, 0.30, 0.10], 8),
        f("q9", [0.30, 0.25, 0.35, 0.10], 9),
        f("q11", [0.45, 0.20, 0.20, 0.15], 11),
        f("q13", [0.10, 0.40, 0.40, 0.10], 13),
        f("q14", [0.25, 0.40, 0.25, 0.10], 14),
        f("q15", [0.20, 0.45, 0.25, 0.10], 15),
        f("q17", [0.94, 0.03, 0.02, 0.01], 17),
        f("q18", [0.40, 0.25, 0.25, 0.10], 18),
        f("q19", [0.60, 0.20, 0.10, 0.10], 19),
        f("q20", [0.70, 0.15, 0.10, 0.05], 20),
        f("q21", [0.35, 0.30, 0.25, 0.10], 21),
        f("q22", [0.50, 0.25, 0.15, 0.10], 22),
    ]
}

/// The 9 TPC-DS queries of Figure 2a with their target breakdowns.
#[must_use]
pub fn tpcds_fig2() -> Vec<DssQuerySpec> {
    let f = |name, fr, seed| DssQuerySpec::from_fractions(name, Suite::TpcDs, fr, 150_000, seed);
    vec![
        f("q5", [0.35, 0.30, 0.25, 0.10], 105),
        f("q37", [0.29, 0.40, 0.20, 0.11], 137),
        f("q40", [0.45, 0.25, 0.20, 0.10], 140),
        f("q43", [0.40, 0.30, 0.20, 0.10], 143),
        f("q46", [0.50, 0.20, 0.20, 0.10], 146),
        f("q52", [0.50, 0.25, 0.15, 0.10], 152),
        f("q64", [0.55, 0.20, 0.15, 0.10], 164),
        f("q81", [0.77, 0.10, 0.08, 0.05], 181),
        f("q82", [0.40, 0.30, 0.20, 0.10], 182),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_counts_match_figure_2a() {
        assert_eq!(tpch_fig2().len(), 16);
        assert_eq!(tpcds_fig2().len(), 9);
    }

    #[test]
    fn specs_derive_sensible_sizes() {
        let q17 = tpch_fig2().into_iter().find(|q| q.name == "q17").unwrap();
        let q13 = tpch_fig2().into_iter().find(|q| q.name == "q13").unwrap();
        // q17 is index-dominated: little scanning; q13 scans heavily.
        assert!(q17.scan_rows < q13.scan_rows);
        assert!(q17.fact_rows == q13.fact_rows);
    }

    #[test]
    fn run_produces_all_classes() {
        let spec = tpch_fig2().remove(0).scaled(0.02);
        let run = spec.run();
        let b = run.breakdown();
        assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Every class saw some work.
        for class in OpClass::ALL {
            assert!(run.class_nanos(class) > 0, "{class} has no time");
        }
    }

    #[test]
    fn index_heavy_query_is_index_heavy() {
        // Compare the most index-heavy (q17: 94%) against the least
        // (q13: 10%) at small scale: the measured ordering must hold even
        // if the absolute fractions drift from the calibration targets.
        let q17 = tpch_fig2()
            .into_iter()
            .find(|q| q.name == "q17")
            .unwrap()
            .scaled(0.05);
        let q13 = tpch_fig2()
            .into_iter()
            .find(|q| q.name == "q13")
            .unwrap()
            .scaled(0.05);
        let f17 = q17.run().class_fraction(OpClass::Index);
        let f13 = q13.run().class_fraction(OpClass::Index);
        assert!(f17 > f13, "q17 {f17:.2} should exceed q13 {f13:.2}");
        assert!(f17 > 0.5, "q17 should be index-dominated, got {f17:.2}");
    }
}
