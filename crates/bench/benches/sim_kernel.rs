//! Criterion bench: simulator throughput on the hash-join kernel.
//!
//! Measures host-seconds per simulated probe for the Widx model and the
//! OoO baseline — the cost of the reproduction itself, useful for
//! sizing experiment sample counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use widx_bench::runner::ProbeSetup;
use widx_core::config::WidxConfig;
use widx_workloads::kernel::{KernelConfig, KernelSize};

fn bench_sim(c: &mut Criterion) {
    let probes = 1024usize;
    let setup = ProbeSetup::kernel(&KernelConfig::new(KernelSize::Medium).with_probes(probes));

    let mut group = c.benchmark_group("sim_kernel_medium");
    group.throughput(Throughput::Elements(probes as u64));
    group.sample_size(10);

    for walkers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("widx", walkers), &walkers, |b, w| {
            b.iter(|| {
                setup
                    .run_widx(&WidxConfig::with_walkers(*w))
                    .0
                    .stats
                    .total_cycles
            });
        });
    }
    group.bench_function("ooo_baseline", |b| {
        b.iter(|| setup.run_ooo().cycles);
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
