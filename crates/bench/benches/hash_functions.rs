//! Criterion bench: hash-recipe evaluation cost.
//!
//! The paper's hash functions range from the kernel's "oversimplified"
//! masked XOR to robust multi-constant mixers (up to 68 % of lookup
//! time). This bench measures the software cost of each recipe tier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use widx_db::hash::HashRecipe;

fn bench_hashes(c: &mut Criterion) {
    let keys: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    let mut group = c.benchmark_group("hash_functions");
    group.throughput(Throughput::Elements(keys.len() as u64));
    for recipe in [
        HashRecipe::trivial(),
        HashRecipe::robust64(),
        HashRecipe::heavy128(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(recipe.name()),
            &recipe,
            |b, recipe| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for k in &keys {
                        acc ^= recipe.eval(*k);
                    }
                    acc
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hashes);
criterion_main!(benches);
