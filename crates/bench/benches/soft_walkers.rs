//! Criterion bench: software walkers on the host CPU.
//!
//! The real-hardware counterpart of Figure 8b — scalar probing vs group
//! prefetching vs AMAC interleaving on a DRAM-resident index. AMAC's
//! in-flight count plays the role of the paper's walker count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use widx_db::hash::HashRecipe;
use widx_db::index::HashIndex;
use widx_soft::{probe_amac, probe_group_prefetch, probe_scalar};
use widx_workloads::datagen;

fn build(entries: usize, probes: usize) -> (HashIndex, Vec<u64>) {
    let keys = datagen::unique_shuffled_keys(0xBEEF, entries);
    let index = HashIndex::build(
        HashRecipe::robust64(),
        entries / 2,
        keys.iter().enumerate().map(|(r, k)| (*k, r as u64)),
    );
    let probes = datagen::uniform_keys(0xF00D, probes, entries as u64);
    (index, probes)
}

fn bench_walkers(c: &mut Criterion) {
    // ~96 MB of buckets+nodes: decisively DRAM-resident.
    let entries = 1 << 21;
    let probe_count = 1 << 14;
    let (index, probes) = build(entries, probe_count);

    let mut group = c.benchmark_group("soft_walkers");
    group.throughput(Throughput::Elements(probe_count as u64));

    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(probe_count);
            probe_scalar(&index, &probes, &mut out);
            out
        });
    });
    for g in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("group_prefetch", g), &g, |b, g| {
            b.iter(|| {
                let mut out = Vec::with_capacity(probe_count);
                probe_group_prefetch(&index, &probes, *g, &mut out);
                out
            });
        });
    }
    for w in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("amac", w), &w, |b, w| {
            b.iter(|| {
                let mut out = Vec::with_capacity(probe_count);
                probe_amac(&index, &probes, *w, &mut out);
                out
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_walkers
}
criterion_main!(benches);
