//! Figure 8 — Hash Join kernel analysis.
//!
//! * **Fig. 8a**: Widx walker cycles-per-tuple breakdown
//!   (Comp/Mem/TLB/Idle) for Small/Medium/Large × 1/2/4 walkers,
//!   normalized to Small on 1 walker.
//! * **Fig. 8b**: indexing speedup over the OoO baseline for the same
//!   sweep (the paper reports a 4 % geomean win for 1 walker and up to
//!   4x for the Large index with 4 walkers).
//!
//! Usage: `fig8_hashjoin [probes]` (default 16384; use fewer for a
//! quick run).

use widx_bench::runner::{geomean, ProbeSetup};
use widx_bench::table::{f2, Table};
use widx_core::config::WidxConfig;
use widx_workloads::kernel::{KernelConfig, KernelSize};

fn main() {
    let probes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(KernelConfig::DEFAULT_PROBES);

    println!("== Figure 8: Hash Join kernel (probes/sample = {probes}) ==\n");

    let mut fig8a = Table::new(&[
        "size", "walkers", "comp/t", "mem/t", "tlb/t", "idle/t", "total/t", "norm",
    ]);
    let mut fig8b = Table::new(&["size", "ooo cpt", "1w", "2w", "4w"]);
    let mut norm_base = None;
    let mut speedups_1w = Vec::new();
    let mut speedups_4w = Vec::new();

    for size in KernelSize::ALL {
        let cfg = KernelConfig::new(size).with_probes(probes);
        println!(
            "building {} ({} tuples, seed {:#x})...",
            size.name(),
            size.tuples(),
            cfg.seed
        );
        let setup = ProbeSetup::kernel(&cfg);
        let ooo = setup.run_ooo();

        let mut cpts = Vec::new();
        for walkers in [1usize, 2, 4] {
            let (r, _) = setup.run_widx(&WidxConfig::with_walkers(walkers));
            let per = r.stats.walker_cycles_per_tuple();
            let norm_denominator = *norm_base.get_or_insert(per.total());
            fig8a.row(&[
                size.name().into(),
                walkers.to_string(),
                f2(per.comp),
                f2(per.mem),
                f2(per.tlb),
                f2(per.idle),
                f2(per.total()),
                f2(per.total() / norm_denominator),
            ]);
            cpts.push(r.stats.cycles_per_tuple());
        }
        speedups_1w.push(ooo.cpt / cpts[0]);
        speedups_4w.push(ooo.cpt / cpts[2]);
        fig8b.row(&[
            size.name().into(),
            f2(ooo.cpt),
            f2(ooo.cpt / cpts[0]),
            f2(ooo.cpt / cpts[1]),
            f2(ooo.cpt / cpts[2]),
        ]);
    }

    println!("\n-- Fig. 8a: Widx walker cycle breakdown per tuple --");
    println!(
        "(norm = total normalized to Small/1-walker; paper's y-axis)\n{}",
        fig8a.render()
    );
    println!(
        "-- Fig. 8b: indexing speedup over OoO --\n{}",
        fig8b.render()
    );
    println!(
        "geomean speedup: 1 walker {:.2}x (paper: ~1.04x), 4 walkers {:.2}x (paper: up to 4x on Large)",
        geomean(&speedups_1w),
        geomean(&speedups_4w),
    );
}
