//! Table 1 — the Widx ISA and its per-unit-class usage matrix, printed
//! directly from the `widx-isa` implementation (so the table can never
//! drift from the code).

use widx_bench::table::Table;
use widx_isa::{Opcode, UnitClass};

fn main() {
    println!("== Table 1: Widx ISA ==\n");
    let mut t = Table::new(&["Instruction", "H", "W", "P"]);
    for op in Opcode::ALL {
        let cell = |c: UnitClass| {
            if c.allows(op) {
                "X".to_string()
            } else {
                String::new()
            }
        };
        t.row(&[
            op.mnemonic().to_uppercase(),
            cell(UnitClass::Dispatcher),
            cell(UnitClass::Walker),
            cell(UnitClass::Producer),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(HALT is this implementation's explicit form of the unit-done status \
         write implied by the paper's configuration interface; queue transfers \
         use the IN/OUT port registers rather than extra instructions.)"
    );
}
