//! Ablation — LLC-side Widx (paper Section 7).
//!
//! "The advantages of LLC-side placement include lower LLC access
//! latencies and reduced MSHR pressure. The disadvantages include the
//! need for a dedicated address translation logic [and] a dedicated
//! low-latency storage next to Widx to exploit data locality." This
//! sweep measures both placements across the kernel sizes.
//!
//! Usage: `ablation_llc_widx [probes]`.

use widx_bench::runner::ProbeSetup;
use widx_bench::table::{f2, Table};
use widx_core::config::WidxConfig;
use widx_core::placement::Placement;
use widx_workloads::kernel::{KernelConfig, KernelSize};

fn main() {
    let probes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8192);
    println!("== Ablation: core-coupled vs LLC-side Widx (4 walkers) ==\n");
    let mut t = Table::new(&["size", "core-coupled cpt", "LLC-side cpt", "winner"]);
    for size in KernelSize::ALL {
        let setup = ProbeSetup::kernel(&KernelConfig::new(size).with_probes(probes));
        let (core, _) = setup.run_widx(&WidxConfig::with_walkers(4));
        let (llc, _) =
            setup.run_widx(&WidxConfig::with_walkers(4).with_placement(Placement::LlcSide));
        let c = core.stats.cycles_per_tuple();
        let l = llc.stats.cycles_per_tuple();
        t.row(&[
            size.name().into(),
            f2(c),
            f2(l),
            if c <= l {
                "core-coupled".into()
            } else {
                "LLC-side".into()
            },
        ]);
    }
    println!("{}", t.render());
    println!(
        "(paper's judgement: \"the balance is in favor of a core-coupled design\" — \
         the L1 locality of small indexes and the shared MMU outweigh the \
         shorter LLC path; LLC-side catches up when nothing fits in the L1)"
    );
}
