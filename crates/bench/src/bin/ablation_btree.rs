//! Ablation — Widx on a B+-tree index (paper Section 7: "Widx can
//! easily be extended to accelerate other index structures, such as
//! balanced trees").
//!
//! Compares the OoO baseline descending the tree in software against
//! Widx walkers running the tree-walker program, across fanouts, plus a
//! hash-index reference on the same data.
//!
//! With `--profile`, the software walker engines (scalar /
//! group-prefetch / AMAC) run the same workloads on *this* CPU under
//! `perf-event` counter groups — a probe sweep on the hash reference
//! and a range-scan sweep on the tree — reporting the paper-style
//! per-engine cycle breakdown (IPC, LLC MPKI, stall fraction,
//! effective MLP) next to the simulated speedups.
//!
//! Usage: `ablation_btree [probes] [--profile]`.

use widx_bench::prof::{profile_btree_engines, profile_engines, render_engine_table};
use widx_bench::runner::ProbeSetup;
use widx_bench::table::{f2, Table};
use widx_core::btree::offload_btree_probe;
use widx_core::config::WidxConfig;
use widx_db::hash::HashRecipe;
use widx_db::index::{BTreeIndex, HashIndex, NodeLayout};
use widx_sim::config::SystemConfig;
use widx_sim::core::run_ooo;
use widx_sim::mem::{MemorySystem, RegionAllocator};
use widx_soft::ScanRange;
use widx_workloads::btree_img::materialize_btree;
use widx_workloads::datagen;
use widx_workloads::trace::btree_probe_trace;

fn main() {
    let mut probes_n: usize = 4096;
    let mut profile = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--profile" => profile = true,
            other => probes_n = other.parse().expect("probes count"),
        }
    }
    let entries = 400_000u64; // DRAM-resident tree

    println!("== Ablation: B+-tree index traversal on Widx (Section 7 extension) ==\n");
    let mut t = Table::new(&["index", "height", "ooo cpt", "1w", "2w", "4w (speedup)"]);

    for fanout in [8usize, 16] {
        let keys = datagen::unique_shuffled_keys(51, entries as usize);
        let tree = BTreeIndex::build(fanout, keys.iter().enumerate().map(|(r, k)| (*k, r as u64)));
        let probes = datagen::uniform_keys(52, probes_n, entries);

        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut alloc = RegionAllocator::new();
        let expected = probes.iter().filter(|p| tree.lookup(**p).is_some()).count() as u64;
        let image = materialize_btree(&mut mem, &mut alloc, &tree, &probes, expected);

        let trace = btree_probe_trace(&tree, &image, &probes);
        let sys = SystemConfig::default();
        let ooo = run_ooo(&sys.ooo, &trace, &mut mem.clone(), 0);

        let mut cpts = Vec::new();
        for walkers in [1usize, 2, 4] {
            let mut m = mem.clone();
            let r = offload_btree_probe(&mut m, &image, &WidxConfig::with_walkers(walkers));
            cpts.push(r.stats.cycles_per_tuple());
        }
        t.row(&[
            format!("btree f={fanout}"),
            tree.height().to_string(),
            f2(ooo.cycles_per_tuple()),
            f2(ooo.cycles_per_tuple() / cpts[0]),
            f2(ooo.cycles_per_tuple() / cpts[1]),
            f2(ooo.cycles_per_tuple() / cpts[2]),
        ]);
    }

    // Hash-index reference on the same scale.
    let setup = ProbeSetup::kernel(
        &widx_workloads::kernel::KernelConfig::new(widx_workloads::kernel::KernelSize::Large)
            .with_probes(probes_n),
    );
    let ooo = setup.run_ooo();
    let mut row = vec!["hash (Large)".to_string(), "2".to_string(), f2(ooo.cpt)];
    for walkers in [1usize, 2, 4] {
        let (r, _) = setup.run_widx(&WidxConfig::with_walkers(walkers));
        row.push(f2(ooo.cpt / r.stats.cycles_per_tuple()));
    }
    t.row(&row);
    let _ = NodeLayout::kernel4();

    println!("{}", t.render());
    println!(
        "(tree descents are longer pointer chases than hash chains, so \
         parallel walkers pay off on trees too — the paper's Section 7 claim)"
    );

    if profile {
        // The same engine comparison measured on this CPU: hash probes
        // first, then B+-tree range scans, each engine under its own
        // counter group.
        let (backend, hw, fallback) = widx_bench::prof::prof_backend();
        println!(
            "\n== live per-engine profile (backend {backend}, hw counters {}) ==",
            if hw { "on" } else { "off" }
        );
        if let Some(reason) = fallback {
            println!("(hardware counters unavailable — {reason}; software clock backend)");
        }
        let keys = datagen::unique_shuffled_keys(53, entries as usize);
        let index = HashIndex::build(
            HashRecipe::robust64(),
            entries as usize,
            keys.iter().enumerate().map(|(r, k)| (*k, r as u64)),
        );
        let probes = datagen::uniform_keys(54, probes_n, entries);
        println!("\nhash probes ({probes_n} uniform keys):");
        println!(
            "{}",
            render_engine_table(&profile_engines(&index, &probes, 8, 16))
        );

        let tree = BTreeIndex::build(16, keys.iter().enumerate().map(|(r, k)| (*k, r as u64)));
        let scans: Vec<ScanRange> = datagen::uniform_keys(55, probes_n / 8, entries)
            .into_iter()
            .map(|lo| ScanRange {
                lo,
                hi: lo.saturating_add(256),
                limit: 128,
                desc: false,
            })
            .collect();
        println!("btree range scans ({} scans, limit 128):", scans.len());
        println!(
            "{}",
            render_engine_table(&profile_btree_engines(&tree, &scans, 8, 16))
        );
        println!(
            "(soft MLP = walker occupancy / rounds — the AMAC rows should hold \
             the deepest memory-level parallelism on both index shapes)"
        );
    }
}
