//! Serving-layer throughput sweep: shard count × in-flight walkers ×
//! batch size on a Zipfian key stream — the `widx-serve` walker pool
//! measured as a front-end, not a loop.
//!
//! Four client threads pipeline `MultiLookup` requests against the
//! service; per-run output reports wall-clock service throughput,
//! request-latency percentiles, and per-worker occupancy/batch shape.
//! With `--json PATH`, the full sweep (including per-worker rows) is
//! written as JSON for trend tracking (`BENCH_serve.json` keeps the
//! committed baseline).
//!
//! With `--scrape-ms N`, a telemetry thread polls
//! `ProbeService::live_stats()` every N milliseconds *while the run is
//! hot*, asserting the scraped counters are monotone — the bench
//! doubles as a concurrency test for the lock-free registry, and the
//! scrape count lands in the JSON so overhead runs are comparable.
//!
//! With `--profile`, every worker thread opens a `perf-event` counter
//! group (hardware counters where the kernel grants them, the software
//! clock otherwise — the JSON says which), the per-run output carries
//! the per-stage cycle breakdown, and a paper-style per-engine sweep
//! (scalar / group-prefetch / AMAC over the same Zipfian probes)
//! reports IPC, LLC MPKI, stall fraction, and effective MLP per
//! walker engine — Figure 2 of the paper, measured live.
//!
//! With `--write-frac F`, that fraction of requests become `Insert`
//! batches over the same Zipfian key stream (F=0.05 is the YCSB-B
//! 95/5 shape, F=0.5 the YCSB-A 50/50 shape) — the sweep then measures
//! the mutable serving tier with write barriers and epoch reclamation
//! on the hot path, and each run reports its write-op counters.
//!
//! Usage: `serve_throughput [--shards N] [--probes N] [--entries N]
//! [--theta T] [--req-size N] [--write-frac F] [--scrape-ms N]
//! [--profile] [--smoke] [--json PATH]`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use widx_bench::prof::{engines_json, host_json, profile_engines, render_engine_table};
use widx_bench::table::{f1, f2, pct, Table};
use widx_db::hash::HashRecipe;
use widx_db::index::HashIndex;
use widx_serve::{ProbeService, Request, ServeConfig, ServiceStats};
use widx_workloads::datagen;

const SEED: u64 = 0xD15C0;
const CLIENTS: usize = 4;
/// AMAC ring size / group-prefetch width for the per-engine profiled
/// sweep (matches the serving tier's default walker shape).
const PROFILE_INFLIGHT: usize = 8;
const PROFILE_GROUP: usize = 16;

struct Args {
    shards: Option<usize>,
    probes: usize,
    entries: u64,
    theta: f64,
    req_size: usize,
    write_frac: f64,
    scrape_ms: Option<u64>,
    profile: bool,
    smoke: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: None,
        probes: 100_000,
        entries: 1 << 18,
        theta: 0.99,
        req_size: 128,
        write_frac: 0.0,
        scrape_ms: None,
        profile: false,
        smoke: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--shards" => args.shards = Some(value().parse().expect("--shards")),
            "--probes" => args.probes = value().parse().expect("--probes"),
            "--entries" => args.entries = value().parse().expect("--entries"),
            "--theta" => args.theta = value().parse().expect("--theta"),
            "--req-size" => args.req_size = value().parse().expect("--req-size"),
            "--write-frac" => {
                args.write_frac = value().parse().expect("--write-frac");
                assert!(
                    (0.0..=1.0).contains(&args.write_frac),
                    "--write-frac must be in [0, 1]"
                );
            }
            "--scrape-ms" => args.scrape_ms = Some(value().parse().expect("--scrape-ms")),
            "--profile" => args.profile = true,
            "--smoke" => args.smoke = true,
            "--json" => args.json = Some(value()),
            other => panic!("unknown flag {other}"),
        }
    }
    if args.smoke {
        // A CI-sized run: one sweep point, small table, seconds not
        // minutes. Explicit flags still win.
        args.probes = 8_000;
        args.entries = 1 << 14;
        if args.shards.is_none() {
            args.shards = Some(2);
        }
    }
    args
}

/// One sweep point's results.
struct Run {
    shards: usize,
    inflight: usize,
    batch_size: usize,
    wall_ms: f64,
    keys_per_sec: f64,
    /// Live-stats scrapes taken while the run was hot (0 without
    /// `--scrape-ms`).
    scrapes: u64,
    stats: ServiceStats,
}

/// Drives `probes` through a freshly built service with `CLIENTS`
/// pipelining client threads. With `scrape_ms`, a telemetry thread
/// polls `live_stats()` concurrently, asserting monotone counters.
/// With `write_frac > 0`, each client turns that fraction of its
/// requests into `Insert` batches over the same keys (deterministic
/// error-diffusion pick, so every run at a given fraction issues the
/// identical mix).
#[allow(clippy::too_many_arguments)]
fn run_once(
    pairs: &[(u64, u64)],
    probes: &[u64],
    shards: usize,
    inflight: usize,
    batch_size: usize,
    req_size: usize,
    write_frac: f64,
    scrape_ms: Option<u64>,
    profile: bool,
) -> Run {
    let config = ServeConfig::default()
        .with_shards(shards)
        .with_inflight(inflight)
        .with_batch_size(batch_size)
        .with_profile(profile);
    let service = ProbeService::build(HashRecipe::robust64(), pairs.iter().copied(), &config);

    let started = Instant::now();
    let scrapes = AtomicU64::new(0);
    let stop_scraper = AtomicBool::new(false);
    let stop_scraper = &stop_scraper;
    std::thread::scope(|scope| {
        let per_client = probes.len().div_ceil(CLIENTS);
        let mut clients = Vec::with_capacity(CLIENTS);
        for slice in probes.chunks(per_client.max(1)) {
            let service = &service;
            clients.push(scope.spawn(move || {
                // Pipeline up to 32 requests per client before reaping.
                let mut window = Vec::with_capacity(32);
                let mut write_debt = 0.0f64;
                for req in slice.chunks(req_size) {
                    write_debt += write_frac;
                    let request = if write_debt >= 1.0 {
                        write_debt -= 1.0;
                        Request::Insert {
                            pairs: req.iter().map(|k| (*k, k ^ SEED)).collect(),
                        }
                    } else {
                        Request::MultiLookup { keys: req.to_vec() }
                    };
                    let pending = service.submit(request).expect("service running");
                    window.push(pending);
                    if window.len() == 32 {
                        for p in window.drain(..) {
                            let _ = p.wait();
                        }
                    }
                }
                for p in window {
                    let _ = p.wait();
                }
            }));
        }
        if let Some(ms) = scrape_ms {
            let service = &service;
            let scrapes = &scrapes;
            scope.spawn(move || {
                let mut last_keys = 0u64;
                let mut last_lat = 0u64;
                while !stop_scraper.load(Ordering::Relaxed) {
                    let live = service.live_stats();
                    let keys = live.total_keys();
                    let lat = live.latency.count as u64;
                    assert!(keys >= last_keys, "live total_keys went backwards");
                    assert!(lat >= last_lat, "live latency count went backwards");
                    (last_keys, last_lat) = (keys, lat);
                    scrapes.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(ms));
                }
            });
        }
        // Join the clients explicitly, then release the scraper — the
        // scope would otherwise deadlock waiting on an infinite loop.
        for client in clients {
            client.join().expect("client thread");
        }
        stop_scraper.store(true, Ordering::Relaxed);
    });
    let wall = started.elapsed();
    let stats = service.shutdown();
    Run {
        shards,
        inflight,
        batch_size,
        wall_ms: wall.as_secs_f64() * 1e3,
        keys_per_sec: probes.len() as f64 / wall.as_secs_f64(),
        scrapes: scrapes.load(Ordering::Relaxed),
        stats,
    }
}

fn render_json(args: &Args, runs: &[Run], engines: &[widx_bench::prof::EngineProfile]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"serve_throughput\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"host\": {},", host_json());
    let _ = writeln!(out, "  \"entries\": {},", args.entries);
    let _ = writeln!(out, "  \"probes\": {},", args.probes);
    let _ = writeln!(out, "  \"theta\": {},", args.theta);
    let _ = writeln!(out, "  \"req_size\": {},", args.req_size);
    let _ = writeln!(out, "  \"write_frac\": {},", args.write_frac);
    let _ = writeln!(out, "  \"clients\": {CLIENTS},");
    let _ = writeln!(out, "  \"profile\": {},", args.profile);
    if args.profile {
        let _ = writeln!(out, "  \"engine_profiles\": {},", engines_json(engines));
    }
    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let lat = &run.stats.latency;
        out.push_str("    {");
        let _ = write!(
            out,
            "\"shards\": {}, \"inflight\": {}, \"batch_size\": {}, \
             \"wall_ms\": {:.3}, \"keys_per_sec\": {:.0}, \"live_scrapes\": {}, \
             \"write_ops\": {}, \"write_batches\": {}, \"epoch_reclaimed\": {}, ",
            run.shards,
            run.inflight,
            run.batch_size,
            run.wall_ms,
            run.keys_per_sec,
            run.scrapes,
            run.stats.total_write_ops(),
            run.stats.total_write_batches(),
            run.stats.epoch_reclaimed,
        );
        let _ = write!(
            out,
            "\"latency_ns\": {{\"count\": {}, \"mean\": {:.0}, \"p50\": {}, \
             \"p95\": {}, \"p99\": {}, \"max\": {}}}, ",
            lat.count, lat.mean_ns, lat.p50_ns, lat.p95_ns, lat.p99_ns, lat.max_ns
        );
        if let Some(prof) = &run.stats.prof {
            let _ = write!(out, "\"prof\": {}, ", prof.to_json());
        }
        out.push_str("\"workers\": [");
        for (j, w) in run.stats.workers.iter().enumerate() {
            let _ = write!(
                out,
                "{{\"shard\": {}, \"keys\": {}, \"matches\": {}, \"batches\": {}, \
                 \"mean_batch\": {:.2}, \"size_flushes\": {}, \"deadline_flushes\": {}, \
                 \"occupancy\": {:.4}, \"busy_keys_per_sec\": {:.0}}}",
                w.shard,
                w.keys,
                w.matches,
                w.batches,
                w.mean_batch(),
                w.size_flushes,
                w.deadline_flushes,
                w.occupancy(),
                w.busy_throughput(),
            );
            if j + 1 < run.stats.workers.len() {
                out.push_str(", ");
            }
        }
        out.push_str("]}");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = parse_args();
    let shard_sweep: Vec<usize> = match args.shards {
        Some(s) => vec![s],
        None => vec![1, 2, 4],
    };
    let inflight_sweep: &[usize] = if args.smoke { &[4] } else { &[1, 4, 8] };
    let batch_sweep: &[usize] = if args.smoke { &[16] } else { &[16, 64] };

    let pairs: Vec<(u64, u64)> = datagen::unique_shuffled_keys(SEED, args.entries as usize)
        .into_iter()
        .enumerate()
        .map(|(row, key)| (key, row as u64))
        .collect();
    // Probe domain slightly exceeds the build domain: ~6% misses.
    let probes = datagen::zipf_keys(
        SEED ^ 1,
        args.probes,
        args.entries + args.entries / 16,
        args.theta,
    );

    println!(
        "== serve_throughput: {} entries, {} Zipf({}) probes, {} clients, req-size {}, \
         write-frac {} ==\n",
        args.entries, args.probes, args.theta, CLIENTS, args.req_size, args.write_frac
    );
    println!("(seed {SEED:#x}; per-worker detail in --json output)\n");

    let mut runs = Vec::new();
    let mut t = Table::new(&[
        "shards",
        "inflight",
        "batch",
        "wall ms",
        "Mkeys/s",
        "p50 µs",
        "p99 µs",
        "occupancy",
        "mean batch",
        "write ops",
    ]);
    for &shards in &shard_sweep {
        for &inflight in inflight_sweep {
            for &batch_size in batch_sweep {
                let run = run_once(
                    &pairs,
                    &probes,
                    shards,
                    inflight,
                    batch_size,
                    args.req_size,
                    args.write_frac,
                    args.scrape_ms,
                    args.profile,
                );
                let occ = run
                    .stats
                    .workers
                    .iter()
                    .map(widx_serve::WorkerStats::occupancy)
                    .sum::<f64>()
                    / run.stats.workers.len() as f64;
                let mean_batch = run
                    .stats
                    .workers
                    .iter()
                    .map(widx_serve::WorkerStats::mean_batch)
                    .sum::<f64>()
                    / run.stats.workers.len() as f64;
                t.row(&[
                    run.shards.to_string(),
                    run.inflight.to_string(),
                    run.batch_size.to_string(),
                    f2(run.wall_ms),
                    f2(run.keys_per_sec / 1e6),
                    f1(run.stats.latency.p50_ns as f64 / 1e3),
                    f1(run.stats.latency.p99_ns as f64 / 1e3),
                    pct(occ),
                    f1(mean_batch),
                    run.stats.total_write_ops().to_string(),
                ]);
                runs.push(run);
            }
        }
    }
    println!("{}", t.render());
    println!(
        "(batching across concurrent requests fills the AMAC ring per shard; \
         occupancy is busy/(busy+idle) per worker — the serving analogue of \
         the paper's walker-utilization figure)"
    );
    if args.scrape_ms.is_some() {
        let total: u64 = runs.iter().map(|r| r.scrapes).sum();
        println!("(live-stats scraper: {total} mid-run scrapes, counters monotone throughout)");
    }

    // The per-engine profiled sweep: the same Zipfian probes through
    // scalar / group-prefetch / AMAC walkers on one thread, each under
    // a counter group — the paper's cycle-breakdown figure, live.
    let mut engines = Vec::new();
    if args.profile {
        let (backend, hw, fallback) = widx_bench::prof::prof_backend();
        println!(
            "\n== per-engine profile (backend {backend}, hw counters {}) ==",
            if hw { "on" } else { "off" }
        );
        if let Some(reason) = fallback {
            println!("(hardware counters unavailable — {reason}; software clock backend)");
        }
        let index = HashIndex::build(
            HashRecipe::robust64(),
            args.entries as usize,
            pairs.iter().copied(),
        );
        engines = profile_engines(&index, &probes, PROFILE_INFLIGHT, PROFILE_GROUP);
        println!("{}", render_engine_table(&engines));
        println!(
            "(effective MLP = LLC-misses x {} cycles / walk cycles; \
             soft MLP = walker occupancy / rounds — AMAC should hold the \
             highest MLP, the paper's inter-key parallelism claim)",
            widx_obs::MISS_LATENCY_CYCLES
        );
    }

    if let Some(path) = &args.json {
        let json = render_json(&args, &runs, &engines);
        std::fs::write(path, json).expect("write json");
        println!("\nwrote {path}");
    }
}
