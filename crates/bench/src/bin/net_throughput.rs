//! Network front-end throughput sweep: closed-loop clients × pipeline
//! depth against a `widx-net` server over loopback TCP — the full
//! sockets → frames → queues → walkers path measured end to end.
//!
//! Each sweep point builds a fresh two-tier service and server, then
//! drives a mixed Zipfian workload (point lookups with a slice of range
//! scans) from `clients` connections, each keeping `depth` requests
//! pipelined. Request latency is measured client-side, send to
//! matching recv. With `--json PATH`, the full sweep (including the
//! server's net-tier counters) is written as JSON for trend tracking
//! (`BENCH_net.json` keeps the committed baseline).
//!
//! After the sweep, an **idle/tail phase** measures what the poller
//! rework is for: `--idle-conns` connections sit open doing nothing
//! while two active clients drive traffic (p99/p999 tail latency at a
//! high connection count with few active clients), then the same
//! population goes fully quiet and the process's CPU time over a
//! zero-load window is read from `/proc/self/stat` — near zero with a
//! blocking poller, a steady burn with a readiness-polling sleep loop.
//!
//! With `--scrape-ms N`, every sweep point also runs a telemetry
//! scraper on its **own connection**, polling the `Stats` wire opcode
//! every N milliseconds mid-run and asserting the scraped counters are
//! monotone — measuring the serving path *with observers attached*.
//! `--seed-baseline PATH` reads a previous `BENCH_net.json` and emits a
//! `telemetry_overhead` comparison (seed vs. instrumented reqs/sec)
//! into this run's JSON.
//!
//! `--reactors` takes a comma list (e.g. `--reactors 1,2,4`) and adds a
//! reactor-count axis to the sweep: every clients × depth cell runs once
//! per reactor count, and the idle phase spreads its idle population
//! across the largest count — the front-end sharding axis.
//!
//! With `--trace-sample N`, every sweep point arms per-request tracing
//! (head-sample 1-in-N into the serve tier's flight recorder) and the
//! per-run trace counts land in the JSON. `--trace-ab` appends an A/B
//! smoke after the sweep: the same cell once with tracing off and once
//! armed, asserting the unarmed run records nothing, the armed run
//! records traces, and printing the throughput delta — the number that
//! keeps the tracing seam honest about its hot-path cost.
//!
//! With `--profile`, every sweep point's service opens per-worker
//! `perf-event` counter groups (`ServeConfig::with_profile`), the
//! per-run JSON carries the per-stage counter breakdown, and each run
//! ends with a `Profile` wire-opcode scrape — the 0x09 frame answered
//! inline from the event loop — so the opcode path is exercised under
//! real load.
//!
//! With `--write-frac F`, that fraction of each connection's requests
//! become single-pair `Insert` frames over the same Zipfian keys
//! (F=0.05 is the YCSB-B 95/5 shape, F=0.5 the YCSB-A 50/50 shape) —
//! the write opcodes measured on the wire, with per-key acks reaped
//! like any other pipelined reply and the server's write counters
//! landing in the JSON.
//!
//! Usage: `net_throughput [--requests N] [--entries N] [--span N]
//! [--scan-share F] [--write-frac F] [--theta T] [--reactors A,B,..]
//! [--idle-conns N] [--idle-window-ms N] [--scrape-ms N]
//! [--trace-sample N] [--trace-ab] [--profile] [--seed-baseline PATH]
//! [--json PATH] [--smoke]`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use widx_bench::table::{f1, f2, Table};
use widx_db::hash::HashRecipe;
use widx_net::{NetConfig, WidxClient, WidxServer};
use widx_serve::{LatencySummary, NetStats, ProbeService, Request, ServeConfig};
use widx_workloads::datagen;

const SEED: u64 = 0x7E7;

struct Args {
    requests: usize,
    entries: u64,
    span: u64,
    scan_share: f64,
    write_frac: f64,
    theta: f64,
    reactors: Vec<usize>,
    idle_conns: usize,
    idle_window_ms: u64,
    scrape_ms: Option<u64>,
    trace_sample: u64,
    trace_ab: bool,
    profile: bool,
    seed_baseline: Option<String>,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 100_000,
        entries: 1 << 18,
        span: 128,
        scan_share: 0.1,
        write_frac: 0.0,
        theta: 0.99,
        reactors: vec![1],
        idle_conns: 256,
        idle_window_ms: 500,
        scrape_ms: None,
        trace_sample: 0,
        trace_ab: false,
        profile: false,
        seed_baseline: None,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--entries" => args.entries = value().parse().expect("--entries"),
            "--span" => args.span = value().parse().expect("--span"),
            "--scan-share" => args.scan_share = value().parse().expect("--scan-share"),
            "--write-frac" => {
                args.write_frac = value().parse().expect("--write-frac");
                assert!(
                    (0.0..=1.0).contains(&args.write_frac),
                    "--write-frac must be in [0, 1]"
                );
            }
            "--theta" => args.theta = value().parse().expect("--theta"),
            "--reactors" => {
                args.reactors = value()
                    .split(',')
                    .map(|n| n.trim().parse().expect("--reactors"))
                    .collect();
                assert!(!args.reactors.is_empty(), "--reactors needs at least one");
            }
            "--idle-conns" => args.idle_conns = value().parse().expect("--idle-conns"),
            "--idle-window-ms" => args.idle_window_ms = value().parse().expect("--idle-window-ms"),
            "--scrape-ms" => args.scrape_ms = Some(value().parse().expect("--scrape-ms")),
            "--trace-sample" => args.trace_sample = value().parse().expect("--trace-sample"),
            "--trace-ab" => args.trace_ab = true,
            "--profile" => args.profile = true,
            "--seed-baseline" => args.seed_baseline = Some(value()),
            "--json" => args.json = Some(value()),
            // Quick CI tier: small workload, the sweep shape unchanged.
            "--smoke" => {
                args.requests = 4_000;
                args.entries = 1 << 14;
                args.idle_conns = 64;
                args.idle_window_ms = 150;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// One sweep point's results.
struct Run {
    reactors: usize,
    clients: usize,
    depth: usize,
    wall_ms: f64,
    reqs_per_sec: f64,
    latency: LatencySummary,
    net: NetStats,
    busy_replies: u64,
    /// `Stats`-opcode scrapes taken over the wire while the run was hot
    /// (0 without `--scrape-ms`).
    scrapes: u64,
    /// Flight-recorder commits over the run (0 with tracing unarmed).
    traces_recorded: u64,
    /// Write ops applied across both tiers (0 without `--write-frac`).
    write_ops: u64,
    /// Per-stage counter breakdown (`--profile` only).
    prof: Option<widx_obs::ProfSnapshot>,
}

/// The per-client mixed workload: mostly Zipfian lookups, a slice of
/// bounded range scans over the same hot keys, and (with
/// `--write-frac`) a deterministic error-diffusion slice of single-pair
/// inserts — every run at a given fraction issues the identical mix.
fn build_ops(args: &Args, client: usize, count: usize) -> Vec<Request> {
    let keys = datagen::zipf_keys(
        SEED ^ (client as u64).wrapping_mul(0x9E37),
        count,
        args.entries,
        args.theta,
    );
    let every = if args.scan_share <= 0.0 {
        usize::MAX
    } else {
        ((1.0 / args.scan_share) as usize).max(1)
    };
    let mut write_debt = 0.0f64;
    keys.into_iter()
        .enumerate()
        .map(|(i, key)| {
            write_debt += args.write_frac;
            if write_debt >= 1.0 {
                write_debt -= 1.0;
                Request::Insert {
                    pairs: vec![(key, key ^ SEED)],
                }
            } else if (i + 1) % every == 0 {
                Request::RangeScan {
                    lo: key,
                    hi: key.saturating_add(args.span),
                    limit: args.span as usize,
                    desc: false,
                }
            } else {
                Request::Lookup { key }
            }
        })
        .collect()
}

/// Drives one sweep point: fresh service + server, `clients` threads
/// each pipelining `depth` requests closed-loop. Returns wall time and
/// client-measured latencies. `Busy` replies are counted and dropped —
/// the bounded closed loop keeps them rare, and the counter proves it.
fn run_once(
    pairs: &[(u64, u64)],
    args: &Args,
    reactors: usize,
    clients: usize,
    depth: usize,
    trace_sample: u64,
) -> Run {
    let mut config = ServeConfig::default()
        .with_shards(4)
        .with_inflight(8)
        .with_profile(args.profile);
    if trace_sample > 0 {
        config = config.with_trace_sample(trace_sample);
    }
    let service = Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        pairs.iter().copied(),
        &config,
    ));
    let server = WidxServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetConfig::default().with_reactors(reactors),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let per_client = args.requests.div_ceil(clients);

    let started = Instant::now();
    let stop_scraper = AtomicBool::new(false);
    let stop_scraper = &stop_scraper;
    let (samples, busy_replies, scrapes) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let ops = build_ops(args, c, per_client);
                scope.spawn(move || {
                    let mut client = WidxClient::connect(addr).expect("connect");
                    let mut samples: Vec<u64> = Vec::with_capacity(ops.len());
                    let mut window: std::collections::VecDeque<(u64, Instant)> =
                        std::collections::VecDeque::with_capacity(depth);
                    let mut busy = 0u64;
                    let reap = |client: &mut WidxClient,
                                window: &mut std::collections::VecDeque<(u64, Instant)>,
                                samples: &mut Vec<u64>,
                                busy: &mut u64| {
                        let (id, sent) = window.pop_front().expect("window non-empty");
                        match client.recv(id) {
                            Ok(_) => {
                                let ns = sent.elapsed().as_nanos();
                                samples.push(u64::try_from(ns).unwrap_or(u64::MAX));
                            }
                            Err(widx_net::ClientError::Remote(e)) => {
                                assert_eq!(
                                    e.code,
                                    widx_net::ErrorCode::Busy,
                                    "unexpected server error: {e}"
                                );
                                *busy += 1;
                            }
                            Err(widx_net::ClientError::Io(e)) => panic!("client io: {e}"),
                        }
                    };
                    for op in &ops {
                        if window.len() == depth.max(1) {
                            reap(&mut client, &mut window, &mut samples, &mut busy);
                        }
                        let id = client.send(op).expect("send");
                        window.push_back((id, Instant::now()));
                    }
                    while !window.is_empty() {
                        reap(&mut client, &mut window, &mut samples, &mut busy);
                    }
                    (samples, busy)
                })
            })
            .collect();
        // The scraper is a fifth, out-of-band connection: it exercises
        // the Stats fast path (answered inline from the event loop)
        // while the measured connections saturate the queued path.
        let scraper = args.scrape_ms.map(|ms| {
            scope.spawn(move || {
                let mut client = WidxClient::connect(addr).expect("scraper connect");
                let mut last_keys = 0u64;
                let mut last_frames = 0u64;
                let mut scrapes = 0u64;
                while !stop_scraper.load(Ordering::Relaxed) {
                    let json = client.stats_json().expect("stats scrape");
                    let keys = widx_obs::json::find_u64(&json, "total_keys").expect("total_keys");
                    let frames = widx_obs::json::find_u64(&json, "frames_in").expect("frames_in");
                    assert!(keys >= last_keys, "scraped total_keys went backwards");
                    assert!(frames >= last_frames, "scraped frames_in went backwards");
                    (last_keys, last_frames) = (keys, frames);
                    scrapes += 1;
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                scrapes
            })
        });
        let mut samples = Vec::new();
        let mut busy = 0u64;
        for handle in handles {
            let (s, b) = handle.join().expect("client thread");
            samples.extend(s);
            busy += b;
        }
        stop_scraper.store(true, Ordering::Relaxed);
        let scrapes = scraper.map_or(0, |h| h.join().expect("scraper thread"));
        (samples, busy, scrapes)
    });
    let wall = started.elapsed();

    // With profiling on, scrape the Profile opcode once over the wire
    // before teardown: the 0x09 frame is answered inline from the
    // event loop, and the reply must say profiling is live.
    if args.profile {
        let mut scraper = WidxClient::connect(addr).expect("profile scrape connect");
        let json = scraper.profile_json().expect("profile scrape");
        assert!(
            json.starts_with("{\"enabled\": true,"),
            "profiled server answered {json}"
        );
    }

    let net = server.shutdown();
    let final_stats = Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
    Run {
        reactors,
        clients,
        depth,
        wall_ms: wall.as_secs_f64() * 1e3,
        reqs_per_sec: samples.len() as f64 / wall.as_secs_f64(),
        latency: LatencySummary::from_samples(samples),
        net,
        busy_replies,
        scrapes,
        traces_recorded: final_stats.trace.recorded,
        write_ops: final_stats.total_write_ops(),
        prof: final_stats.prof,
    }
}

/// The idle/tail phase's results.
struct IdleRun {
    reactors: usize,
    idle_conns: usize,
    active_clients: usize,
    depth: usize,
    requests: usize,
    latency: LatencySummary,
    zero_load_window: std::time::Duration,
    /// Process CPU seconds burned per wall second at zero load (a
    /// fraction; multiply by 100 for percent). `None` when
    /// `/proc/self/stat` is unavailable (non-Linux host).
    zero_load_cpu: Option<f64>,
}

/// Process CPU time (utime + stime, user and kernel) in seconds, read
/// from `/proc/self/stat`; `None` off Linux. Fields 14/15 sit after the
/// parenthesised command name, in USER_HZ ticks (100 on every
/// mainstream Linux configuration).
fn process_cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let after_comm = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// The idle/tail phase: `idle_conns` connections sit open and silent
/// (each one registered with the server's poller) while two pipelining
/// clients drive the mixed workload — the tail-latency shape of a real
/// fleet, where most connections are quiet at any instant. Then the
/// active clients leave and the whole population goes quiet: process
/// CPU over the zero-load window is the cost of *having* connections,
/// which a blocking poller makes ~zero and a polling sleep loop does
/// not.
fn run_idle_phase(pairs: &[(u64, u64)], args: &Args, reactors: usize) -> IdleRun {
    const ACTIVE_CLIENTS: usize = 2;
    const DEPTH: usize = 8;
    let config = ServeConfig::default().with_shards(4).with_inflight(8);
    let service = Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        pairs.iter().copied(),
        &config,
    ));
    let server = WidxServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetConfig::default().with_reactors(reactors),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let idle: Vec<WidxClient> = (0..args.idle_conns)
        .map(|_| WidxClient::connect(addr).expect("idle connect"))
        .collect();

    let per_client = (args.requests / 4).max(1_000).div_ceil(ACTIVE_CLIENTS);
    let samples = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ACTIVE_CLIENTS)
            .map(|c| {
                // Offset the workload seed so the tail phase does not
                // replay the sweep's exact key streams.
                let ops = build_ops(args, c + 64, per_client);
                scope.spawn(move || {
                    let mut client = WidxClient::connect(addr).expect("active connect");
                    let mut samples: Vec<u64> = Vec::with_capacity(ops.len());
                    let mut window: std::collections::VecDeque<(u64, Instant)> =
                        std::collections::VecDeque::with_capacity(DEPTH);
                    let reap = |client: &mut WidxClient,
                                window: &mut std::collections::VecDeque<(u64, Instant)>,
                                samples: &mut Vec<u64>| {
                        let (id, sent) = window.pop_front().expect("window non-empty");
                        match client.recv(id) {
                            Ok(_) => {
                                let ns = sent.elapsed().as_nanos();
                                samples.push(u64::try_from(ns).unwrap_or(u64::MAX));
                            }
                            Err(widx_net::ClientError::Remote(e)) => {
                                assert_eq!(e.code, widx_net::ErrorCode::Busy, "server error: {e}");
                            }
                            Err(widx_net::ClientError::Io(e)) => panic!("client io: {e}"),
                        }
                    };
                    for op in &ops {
                        if window.len() == DEPTH {
                            reap(&mut client, &mut window, &mut samples);
                        }
                        let id = client.send(op).expect("send");
                        window.push_back((id, Instant::now()));
                    }
                    while !window.is_empty() {
                        reap(&mut client, &mut window, &mut samples);
                    }
                    samples
                })
            })
            .collect();
        let mut samples = Vec::new();
        for handle in handles {
            samples.extend(handle.join().expect("active client"));
        }
        samples
    });
    let latency = LatencySummary::from_samples(samples);

    // Zero load: the active connections have closed; let the server
    // finish reaping them, then watch process CPU with only the idle
    // population registered.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let window = std::time::Duration::from_millis(args.idle_window_ms.max(1));
    let before = process_cpu_seconds();
    std::thread::sleep(window);
    let after = process_cpu_seconds();
    let zero_load_cpu = match (before, after) {
        (Some(b), Some(a)) => Some(((a - b).max(0.0)) / window.as_secs_f64()),
        _ => None,
    };

    drop(idle);
    let _ = server.shutdown();
    drop(
        Arc::try_unwrap(service)
            .ok()
            .expect("sole owner")
            .shutdown(),
    );
    IdleRun {
        reactors,
        idle_conns: args.idle_conns,
        active_clients: ACTIVE_CLIENTS,
        depth: DEPTH,
        requests: per_client * ACTIVE_CLIENTS,
        latency,
        zero_load_window: window,
        zero_load_cpu,
    }
}

/// The `--trace-ab` smoke's results: one sweep cell with tracing off,
/// the same cell armed.
struct TraceAb {
    sample: u64,
    off_reqs_per_sec: f64,
    on_reqs_per_sec: f64,
    delta_pct: f64,
    recorded: u64,
}

/// One cell (2 clients × depth 8) run twice — tracing unarmed, then
/// head-sampled — to smoke-check that an unarmed server records
/// nothing, an armed one records, and the cost stays in the noise.
fn run_trace_ab(pairs: &[(u64, u64)], args: &Args) -> TraceAb {
    let sample = if args.trace_sample > 0 {
        args.trace_sample
    } else {
        16
    };
    let off = run_once(pairs, args, 1, 2, 8, 0);
    let on = run_once(pairs, args, 1, 2, 8, sample);
    assert_eq!(
        off.traces_recorded, 0,
        "unarmed run committed traces to the recorder"
    );
    assert!(
        on.traces_recorded > 0,
        "armed run (1-in-{sample}) recorded nothing"
    );
    TraceAb {
        sample,
        off_reqs_per_sec: off.reqs_per_sec,
        on_reqs_per_sec: on.reqs_per_sec,
        delta_pct: (on.reqs_per_sec - off.reqs_per_sec) / off.reqs_per_sec * 100.0,
        recorded: on.traces_recorded,
    }
}

/// Seed-vs-instrumented throughput comparison computed from a previous
/// `BENCH_net.json` (`--seed-baseline`).
struct Overhead {
    seed_reqs_per_sec: f64,
    instrumented_reqs_per_sec: f64,
    delta_pct: f64,
}

/// Mean sweep throughput of the baseline file vs. this run. Every
/// `reqs_per_sec` key in the old JSON is a sweep-row value (the idle
/// section reports latency only), so the mean over all matches is the
/// seed's sweep-average throughput.
fn telemetry_overhead(path: &str, runs: &[Run]) -> Option<Overhead> {
    let old = std::fs::read_to_string(path).ok()?;
    let seed_rates = widx_obs::json::find_all_f64(&old, "reqs_per_sec");
    if seed_rates.is_empty() || runs.is_empty() {
        return None;
    }
    let seed = seed_rates.iter().sum::<f64>() / seed_rates.len() as f64;
    let inst = runs.iter().map(|r| r.reqs_per_sec).sum::<f64>() / runs.len() as f64;
    Some(Overhead {
        seed_reqs_per_sec: seed,
        instrumented_reqs_per_sec: inst,
        delta_pct: (inst - seed) / seed * 100.0,
    })
}

fn render_json(
    args: &Args,
    runs: &[Run],
    idle: &IdleRun,
    overhead: Option<&Overhead>,
    trace_ab: Option<&TraceAb>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"net_throughput\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"requests\": {},", args.requests);
    let _ = writeln!(out, "  \"entries\": {},", args.entries);
    let _ = writeln!(out, "  \"span\": {},", args.span);
    let _ = writeln!(out, "  \"scan_share\": {},", args.scan_share);
    let _ = writeln!(out, "  \"write_frac\": {},", args.write_frac);
    let _ = writeln!(out, "  \"theta\": {},", args.theta);
    let _ = writeln!(out, "  \"trace_sample\": {},", args.trace_sample);
    let reactors: Vec<String> = args.reactors.iter().map(usize::to_string).collect();
    let _ = writeln!(out, "  \"reactors_sweep\": [{}],", reactors.join(", "));
    // Reactor scaling is meaningless without knowing how many cores the
    // host could actually run them on.
    let _ = writeln!(
        out,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(0, std::num::NonZero::get)
    );
    let _ = writeln!(out, "  \"host\": {},", widx_bench::prof::host_json());
    let _ = writeln!(out, "  \"profile\": {},", args.profile);
    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let lat = &run.latency;
        out.push_str("    {");
        let _ = write!(
            out,
            "\"reactors\": {}, \"clients\": {}, \"depth\": {}, \"wall_ms\": {:.3}, \
             \"reqs_per_sec\": {:.0}, \"busy_replies\": {}, \"live_scrapes\": {}, \
             \"traces_recorded\": {}, \"write_ops\": {}, ",
            run.reactors,
            run.clients,
            run.depth,
            run.wall_ms,
            run.reqs_per_sec,
            run.busy_replies,
            run.scrapes,
            run.traces_recorded,
            run.write_ops
        );
        let _ = write!(
            out,
            "\"latency_ns\": {{\"count\": {}, \"mean\": {:.0}, \"p50\": {}, \
             \"p95\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}, ",
            lat.count, lat.mean_ns, lat.p50_ns, lat.p95_ns, lat.p99_ns, lat.p999_ns, lat.max_ns
        );
        if let Some(prof) = &run.prof {
            let _ = write!(out, "\"prof\": {}, ", prof.to_json());
        }
        let _ = write!(
            out,
            "\"net\": {{\"connections\": {}, \"frames_in\": {}, \"frames_out\": {}, \
             \"busy_rejects\": {}, \"decode_errors\": {}}}",
            run.net.connections,
            run.net.frames_in,
            run.net.frames_out,
            run.net.busy_rejects,
            run.net.decode_errors
        );
        out.push('}');
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let lat = &idle.latency;
    out.push_str("  \"idle\": {");
    let _ = write!(
        out,
        "\"reactors\": {}, \"idle_conns\": {}, \"active_clients\": {}, \"depth\": {}, \
         \"requests\": {}, ",
        idle.reactors, idle.idle_conns, idle.active_clients, idle.depth, idle.requests
    );
    let _ = write!(
        out,
        "\"latency_ns\": {{\"count\": {}, \"mean\": {:.0}, \"p50\": {}, \
         \"p95\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}, ",
        lat.count, lat.mean_ns, lat.p50_ns, lat.p95_ns, lat.p99_ns, lat.p999_ns, lat.max_ns
    );
    let _ = write!(
        out,
        "\"zero_load_window_ms\": {}, \"zero_load_cpu_pct\": {}",
        idle.zero_load_window.as_millis(),
        match idle.zero_load_cpu {
            Some(frac) => format!("{:.3}", frac * 100.0),
            None => "null".to_string(),
        }
    );
    out.push('}');
    if let Some(o) = overhead {
        out.push_str(",\n  \"telemetry_overhead\": {");
        let _ = write!(
            out,
            "\"seed_reqs_per_sec\": {:.0}, \"instrumented_reqs_per_sec\": {:.0}, \
             \"delta_pct\": {:.2}",
            o.seed_reqs_per_sec, o.instrumented_reqs_per_sec, o.delta_pct
        );
        out.push('}');
    }
    if let Some(ab) = trace_ab {
        // Distinct key names from the sweep rows, so baseline-comparison
        // scans over "reqs_per_sec" never pick up the A/B cells.
        out.push_str(",\n  \"trace_ab\": {");
        let _ = write!(
            out,
            "\"sample\": {}, \"off_rps\": {:.0}, \"on_rps\": {:.0}, \
             \"delta_pct\": {:.2}, \"recorded\": {}",
            ab.sample, ab.off_reqs_per_sec, ab.on_reqs_per_sec, ab.delta_pct, ab.recorded
        );
        out.push('}');
    }
    out.push_str("\n}\n");
    out
}

fn main() {
    let args = parse_args();
    let client_sweep = [1usize, 2, 4];
    let depth_sweep = [1usize, 8, 32];

    // Dense unique build side: key k → row id, so scans return ~span
    // entries and the Zipfian point stream mostly hits.
    let pairs: Vec<(u64, u64)> = datagen::unique_shuffled_keys(SEED, args.entries as usize)
        .into_iter()
        .enumerate()
        .map(|(row, key)| (key, row as u64))
        .collect();

    println!(
        "== net_throughput: {} entries, {} Zipf({}) requests ({}% range scans, span {}, \
         {}% writes), loopback TCP ==\n",
        args.entries,
        args.requests,
        args.theta,
        (args.scan_share * 100.0) as u32,
        args.span,
        (args.write_frac * 100.0) as u32,
    );
    println!("(seed {SEED:#x}; per-run net counters in --json output)\n");

    let mut runs = Vec::new();
    let mut t = Table::new(&[
        "reactors",
        "clients",
        "depth",
        "wall ms",
        "Kreq/s",
        "p50 µs",
        "p99 µs",
        "frames in",
        "busy",
        "write ops",
    ]);
    for &reactors in &args.reactors {
        for &clients in &client_sweep {
            for &depth in &depth_sweep {
                let run = run_once(&pairs, &args, reactors, clients, depth, args.trace_sample);
                t.row(&[
                    run.reactors.to_string(),
                    run.clients.to_string(),
                    run.depth.to_string(),
                    f2(run.wall_ms),
                    f2(run.reqs_per_sec / 1e3),
                    f1(run.latency.p50_ns as f64 / 1e3),
                    f1(run.latency.p99_ns as f64 / 1e3),
                    run.net.frames_in.to_string(),
                    run.busy_replies.to_string(),
                    run.write_ops.to_string(),
                ]);
                runs.push(run);
            }
        }
    }
    println!("{}", t.render());
    println!(
        "(each connection pipelines `depth` requests with explicit ids — replies \
         come back out of order across the point and range tiers — so one socket \
         carries the inter-key parallelism the per-shard batchers need, the \
         network-layer analogue of the paper's dispatcher keeping all four \
         walkers fed)"
    );
    if args.scrape_ms.is_some() {
        let total: u64 = runs.iter().map(|r| r.scrapes).sum();
        println!(
            "(Stats-opcode scraper: {total} mid-run wire scrapes, counters monotone throughout)"
        );
    }
    if args.profile {
        let (backend, hw, _) = widx_bench::prof::prof_backend();
        let windows: u64 = runs
            .iter()
            .filter_map(|r| r.prof.as_ref())
            .map(|p| p.total().windows)
            .sum();
        println!(
            "(per-worker profiling on: backend {backend}, hw counters {}, \
             {windows} counter windows across the sweep; Profile opcode \
             scraped once per run)",
            if hw { "on" } else { "off" }
        );
    }
    let overhead = args
        .seed_baseline
        .as_deref()
        .and_then(|path| telemetry_overhead(path, &runs));
    if let Some(o) = &overhead {
        println!(
            "(telemetry overhead vs. seed baseline: {:.0} → {:.0} reqs/s sweep mean, {:+.2}%)",
            o.seed_reqs_per_sec, o.instrumented_reqs_per_sec, o.delta_pct
        );
    }
    if args.trace_sample > 0 {
        let total: u64 = runs.iter().map(|r| r.traces_recorded).sum();
        println!(
            "(per-request tracing armed at 1-in-{}: {total} traces committed across the sweep)",
            args.trace_sample
        );
    }
    let trace_ab = args.trace_ab.then(|| {
        let ab = run_trace_ab(&pairs, &args);
        println!(
            "\n== trace A/B smoke: 2 clients × depth 8, tracing off vs. 1-in-{} ==\n",
            ab.sample
        );
        println!(
            "off: {:.0} reqs/s; armed: {:.0} reqs/s ({:+.2}%); {} traces recorded, \
             0 with tracing off",
            ab.off_reqs_per_sec, ab.on_reqs_per_sec, ab.delta_pct, ab.recorded
        );
        ab
    });

    // The idle population spreads across the largest configured reactor
    // count: zero-load CPU must stay ~zero per *reactor*, not just in
    // the single-loop shape.
    let idle_reactors = args.reactors.iter().copied().max().unwrap_or(1);
    println!(
        "\n== idle/tail phase: {} idle connections over {} reactor(s) + 2 active \
         clients (depth 8) ==\n",
        args.idle_conns, idle_reactors
    );
    let idle = run_idle_phase(&pairs, &args, idle_reactors);
    let mut t = Table::new(&[
        "reactors",
        "idle conns",
        "requests",
        "p50 µs",
        "p99 µs",
        "p999 µs",
        "max µs",
    ]);
    t.row(&[
        idle.reactors.to_string(),
        idle.idle_conns.to_string(),
        idle.requests.to_string(),
        f1(idle.latency.p50_ns as f64 / 1e3),
        f1(idle.latency.p99_ns as f64 / 1e3),
        f1(idle.latency.p999_ns as f64 / 1e3),
        f1(idle.latency.max_ns as f64 / 1e3),
    ]);
    println!("{}", t.render());
    match idle.zero_load_cpu {
        Some(frac) => println!(
            "zero-load CPU: {:.3}% of one core over a {} ms window with {} \
             connections registered (blocking poller: no sleep ticks to burn)",
            frac * 100.0,
            idle.zero_load_window.as_millis(),
            idle.idle_conns,
        ),
        None => println!(
            "SKIP: no idle-CPU sample — the metric reads /proc/self/stat \
             (Linux only); tail latencies above are still measured"
        ),
    }

    if let Some(path) = &args.json {
        let json = render_json(&args, &runs, &idle, overhead.as_ref(), trace_ab.as_ref());
        std::fs::write(path, json).expect("write json");
        println!("\nwrote {path}");
    }
}
