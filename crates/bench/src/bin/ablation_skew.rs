//! Ablation — probe-key skew.
//!
//! The paper's kernel probes are uniform. Real decision-support probe
//! streams are often Zipf-skewed (hot keys), which makes the hot part of
//! the index cache-resident and shifts the bottleneck from memory to the
//! dispatcher — moving a "Large" index's behaviour toward the paper's
//! "Small" regime. This sweep quantifies that shift.
//!
//! Usage: `ablation_skew [probes]`.

use widx_bench::runner::ProbeSetup;
use widx_bench::table::{f2, Table};
use widx_core::config::WidxConfig;
use widx_db::index::NodeLayout;
use widx_workloads::datagen::{self, Zipf};
use widx_workloads::kernel::{KernelConfig, KernelSize};

fn main() {
    let probes_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8192);
    let cfg = KernelConfig::new(KernelSize::Large);
    let (index, _) = cfg.build();
    let tuples = KernelSize::Large.tuples();

    println!("== Ablation: probe-key skew on the Large kernel (4 walkers) ==\n");
    let mut t = Table::new(&[
        "distribution",
        "widx cpt",
        "mem/t",
        "idle/t",
        "ooo cpt",
        "speedup",
    ]);
    for (name, theta) in [
        ("uniform", None),
        ("zipf 0.75", Some(0.75)),
        ("zipf 0.99", Some(0.99)),
    ] {
        let probes = match theta {
            None => datagen::uniform_keys(7, probes_n, tuples as u64),
            Some(theta) => {
                let z = Zipf::new(tuples, theta);
                let mut rng = datagen::rng(7);
                z.sample_n(&mut rng, probes_n)
            }
        };
        let setup = ProbeSetup::new(index.clone(), probes, NodeLayout::kernel4());
        let ooo = setup.run_ooo();
        let (r, _) = setup.run_widx(&WidxConfig::with_walkers(4));
        let per = r.stats.walker_cycles_per_tuple();
        t.row(&[
            name.into(),
            f2(r.stats.cycles_per_tuple()),
            f2(per.mem),
            f2(per.idle),
            f2(ooo.cpt),
            f2(ooo.cpt / r.stats.cycles_per_tuple()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(skew shrinks the hot working set: walker Mem cycles fall and Idle \
         rises as the dispatcher becomes the bottleneck — the DRAM-resident \
         index behaves like the paper's Small configuration)"
    );
}
