//! Section 6.3 area analysis, rendered as a table: the paper's
//! synthesized Widx area/power against the published comparison points.

use widx_bench::table::{f2, Table};
use widx_energy::{AreaParams, PowerParams};

fn main() {
    let a = AreaParams::default();
    let p = PowerParams::default();
    println!("== Section 6.3: area and power (40 nm, 2 GHz) ==\n");
    let mut t = Table::new(&["Block", "Area (mm^2)", "Power (W)"]);
    t.row(&[
        "Widx unit (incl. 2-entry queues)".into(),
        format!("{:.3}", a.widx_unit_mm2),
        format!("{:.3}", p.widx_unit_w),
    ]);
    t.row(&[
        "Widx x6 (dispatcher + 4 walkers + producer)".into(),
        f2(a.widx_total_mm2),
        f2(p.widx_total_w),
    ]);
    t.row(&[
        "ARM Cortex-A8-like in-order core (incl. L1)".into(),
        f2(a.a8_mm2),
        f2(p.inorder_w),
    ]);
    t.row(&[
        "ARM Cortex-M4 microcontroller".into(),
        f2(a.m4_mm2),
        "-".into(),
    ]);
    println!("{}", t.render());
    println!(
        "Widx occupies {:.0}% of the A8's area (paper: 18%) at comparable power; \
         one Widx unit is about one Cortex-M4.",
        a.widx_vs_a8() * 100.0
    );
}
