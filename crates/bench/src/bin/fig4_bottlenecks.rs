//! Figure 4 — accelerator bottleneck analysis (Section 3.2 model).
//!
//! * **4a**: L1-D accesses/cycle vs LLC miss ratio for 1–10 walkers,
//!   against the 1- and 2-port limits.
//! * **4b**: outstanding L1 misses vs walker count, against 8–10 MSHRs.
//! * **4c**: walkers one 9 GB/s memory controller sustains vs LLC miss
//!   ratio.

use widx_bench::table::{f2, Table};
use widx_model::{l1_bandwidth_series, mshr_series, walkers_per_mc_series, ModelParams};

fn main() {
    let p = ModelParams::default();

    println!("== Figure 4a: L1-D bandwidth constraint ==");
    println!("(mem ops/cycle; a value above the port count saturates the L1)\n");
    let walkers = [1u32, 2, 4, 8, 10];
    let series = l1_bandwidth_series(&p, &walkers, 10);
    let mut header = vec!["llc miss".to_string()];
    header.extend(walkers.iter().map(|w| format!("{w}w")));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for i in 0..=10 {
        let mut row = vec![f2(i as f64 / 10.0)];
        for (_, points) in &series {
            row.push(f2(points[i].y));
        }
        t.row(&row);
    }
    println!("{}", t.render());
    let at_low = |n: f64| widx_model::l1_pressure(&p, 0.0, n);
    let single_port_limit = (1..=16)
        .take_while(|n| at_low(f64::from(*n)) <= 1.0)
        .count();
    println!(
        "single-ported L1 saturates beyond {single_port_limit} walkers; two ports sustain 10 \
         (pressure at 10w, low miss: {:.2} <= 2)\n",
        at_low(10.0)
    );

    println!("== Figure 4b: MSHR constraint ==\n");
    let mut t = Table::new(&["walkers", "outstanding L1 misses"]);
    for pt in mshr_series(&p, 10) {
        t.row(&[format!("{}", pt.x as u32), f2(pt.y)]);
    }
    println!("{}", t.render());
    println!("8-10 MSHRs limit concurrent walkers to 4-5 (paper Section 3.2)\n");

    println!("== Figure 4c: off-chip bandwidth constraint ==\n");
    let mut t = Table::new(&["llc miss", "walkers per MC"]);
    for pt in walkers_per_mc_series(&p, 10) {
        t.row(&[f2(pt.x), f2(pt.y)]);
    }
    println!("{}", t.render());
    println!(
        "one MC serves ~{:.0} walkers at 10% LLC misses, ~{:.0} at 100% (paper: ~8 down to 4)",
        widx_model::walkers_per_mc(&p, 0.1),
        widx_model::walkers_per_mc(&p, 1.0),
    );
}
