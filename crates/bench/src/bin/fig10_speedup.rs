//! Figure 10 — indexing speedup of Widx over the OoO baseline on the
//! twelve DSS queries, plus the Section 6.2 whole-query projection.
//!
//! The paper reports 1.5x–5.5x indexing speedups (geomean 3.1x) for
//! four walkers — maximum on TPC-H q20 (large index, heavy hashing),
//! minimum on TPC-DS q37 (L1-resident index) — and, projecting onto the
//! Figure 2a indexing fractions, whole-query speedups of up to 3.1x
//! (q17) with a 1.5x geomean.
//!
//! Usage: `fig10_speedup [probes]` (default 12288).

use widx_bench::runner::{geomean, ProbeSetup};
use widx_bench::table::{f2, Table};
use widx_core::config::WidxConfig;
use widx_workloads::profiles::QueryProfile;

fn main() {
    let probes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(QueryProfile::DEFAULT_PROBES);

    println!("== Figure 10: indexing speedup over OoO ==\n");
    let mut t = Table::new(&[
        "suite",
        "query",
        "ooo cpt",
        "1w",
        "2w",
        "4w",
        "query-level (4w)",
    ]);
    let mut speedups_4w = Vec::new();
    let mut query_speedups = Vec::new();
    for q in QueryProfile::all() {
        let setup = ProbeSetup::profile(&q.clone().with_probes(probes));
        let ooo = setup.run_ooo();
        let mut s = Vec::new();
        for walkers in [1usize, 2, 4] {
            let (r, _) = setup.run_widx(&WidxConfig::with_walkers(walkers));
            s.push(ooo.cpt / r.stats.cycles_per_tuple());
        }
        // Section 6.2 projection: only the indexing fraction accelerates.
        let f = q.index_fraction;
        let query_level = 1.0 / ((1.0 - f) + f / s[2]);
        speedups_4w.push(s[2]);
        query_speedups.push(query_level);
        t.row(&[
            q.suite.name().into(),
            q.name.into(),
            f2(ooo.cpt),
            f2(s[0]),
            f2(s[1]),
            f2(s[2]),
            f2(query_level),
        ]);
    }
    println!("{}", t.render());
    println!(
        "4-walker indexing speedup: geomean {:.2}x, min {:.2}x, max {:.2}x \
         (paper: 3.1x geomean, 1.5x min on qry37, 5.5x max on qry20)",
        geomean(&speedups_4w),
        speedups_4w.iter().copied().fold(f64::INFINITY, f64::min),
        speedups_4w.iter().copied().fold(0.0f64, f64::max),
    );
    println!(
        "whole-query projection: geomean {:.2}x, max {:.2}x \
         (paper: 1.5x geomean, 3.1x max on qry17)",
        geomean(&query_speedups),
        query_speedups.iter().copied().fold(0.0f64, f64::max),
    );
}
