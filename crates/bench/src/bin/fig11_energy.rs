//! Figure 11 — indexing runtime, energy, and energy-delay product of
//! OoO vs in-order vs Widx (normalized to OoO, lower is better).
//!
//! Runtimes are measured on the DSS query profiles (summed
//! cycles-per-tuple across the mix, i.e. time-weighted); powers are the
//! published constants of `widx-energy`.
//!
//! Usage: `fig11_energy [probes]` (default 8192).

use widx_bench::runner::ProbeSetup;
use widx_bench::table::{f2, pct, Table};
use widx_core::config::WidxConfig;
use widx_energy::{figure11, PowerParams, Runtimes};
use widx_workloads::profiles::QueryProfile;

fn main() {
    let probes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8192);

    let mut ooo_cpts = Vec::new();
    let mut inorder_cpts = Vec::new();
    let mut widx_cpts = Vec::new();
    for q in QueryProfile::all() {
        let setup = ProbeSetup::profile(&q.with_probes(probes));
        ooo_cpts.push(setup.run_ooo().cpt);
        inorder_cpts.push(setup.run_inorder().cpt);
        let (r, _) = setup.run_widx(&WidxConfig::paper_default());
        widx_cpts.push(r.stats.cycles_per_tuple());
    }
    // Aggregate as *total indexing time* across the query mix (the
    // paper's Figure 11 is the runtime of the indexing portions, which
    // the memory-heavy queries dominate), i.e. arithmetic sums of
    // cycles-per-tuple at equal probe counts.
    let total = |v: &[f64]| v.iter().sum::<f64>();
    let runtimes = Runtimes {
        ooo: total(&ooo_cpts),
        inorder: total(&inorder_cpts),
        widx: total(&widx_cpts),
    };
    println!(
        "total indexing cycles across the 12-query mix (normalized): \
         OoO {:.0}, in-order {:.0} ({:.2}x slower; paper: 2.2x), \
         Widx-4 {:.0} ({:.2}x faster; paper: 3.1x)\n",
        runtimes.ooo,
        runtimes.inorder,
        runtimes.inorder / runtimes.ooo,
        runtimes.widx,
        runtimes.ooo / runtimes.widx,
    );

    let fig = figure11(runtimes, &PowerParams::default());
    println!("== Figure 11 (normalized to OoO; lower is better) ==\n");
    let mut t = Table::new(&["design", "Indexing Runtime", "Energy", "Energy-Delay"]);
    for p in [fig.ooo, fig.inorder, fig.widx] {
        t.row(&[p.name.into(), f2(p.runtime), f2(p.energy), f2(p.edp)]);
    }
    println!("{}", t.render());
    println!(
        "energy reduction: in-order {} (paper 86%), Widx {} (paper 83%)",
        pct(fig.inorder_energy_reduction()),
        pct(fig.widx_energy_reduction()),
    );
    println!(
        "EDP improvement of Widx: {:.1}x over OoO (paper 17.5x), {:.1}x over in-order (paper 5.5x)",
        fig.widx_edp_gain_vs_ooo(),
        fig.widx_edp_gain_vs_inorder(),
    );
}
