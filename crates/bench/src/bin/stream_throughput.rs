//! Streaming-reply sweep: chunk size × stream depth against a
//! `widx-net` server over loopback TCP, measuring what the chunked
//! reply path buys on long scans — **time to first chunk** versus the
//! buffered full-reply latency of the same scan.
//!
//! Each sweep point builds a fresh two-tier service (with the swept
//! `stream_chunk`) and server, then drives `scans` long range scans
//! from one connection, keeping `depth` streams in flight
//! (`send_range_stream` / `recv_chunk` — chunk frames for the waiting
//! streams stash per id). Alternating scans run descending, so the
//! reverse path is always exercised. The same scans are then replayed
//! buffered (`RangeScan` frames, same pipeline depth) as the baseline.
//! With `--json PATH`, the sweep is written for trend tracking
//! (`BENCH_stream.json` keeps the committed baseline).
//!
//! Usage: `stream_throughput [--scans N] [--entries N] [--span N]
//! [--json PATH] [--smoke]`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use widx_bench::table::{f1, f2, Table};
use widx_db::hash::HashRecipe;
use widx_net::{NetConfig, WidxClient, WidxServer};
use widx_serve::{LatencySummary, ProbeService, ServeConfig};

const SEED: u64 = 0x57E4;

struct Args {
    scans: usize,
    entries: u64,
    span: u64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scans: 64,
        entries: 1 << 18,
        span: 1 << 15,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scans" => args.scans = value().parse().expect("--scans"),
            "--entries" => args.entries = value().parse().expect("--entries"),
            "--span" => args.span = value().parse().expect("--span"),
            "--json" => args.json = Some(value()),
            // Quick CI tier: small workload, the sweep shape unchanged.
            "--smoke" => {
                args.scans = 16;
                args.entries = 1 << 14;
                args.span = 1 << 12;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.span <= args.entries, "span must fit the keyspace");
    args
}

/// One sweep point's results.
struct Run {
    chunk: usize,
    depth: usize,
    first_chunk: LatencySummary,
    stream_total: LatencySummary,
    buffered: LatencySummary,
    chunks_received: u64,
    entries_streamed: u64,
}

/// The swept scans: `span`-entry intervals marching through the
/// keyspace (all at 0 when the span covers it entirely), every other
/// one descending.
fn scan_plan(args: &Args) -> Vec<(u64, u64, bool)> {
    let slack = args.entries - args.span;
    (0..args.scans as u64)
        .map(|i| {
            let lo = if slack == 0 { 0 } else { (i * 7919) % slack };
            (lo, lo + args.span - 1, i % 2 == 1)
        })
        .collect()
}

/// Drives one sweep point: streams with `depth` in flight, then the
/// buffered baseline at the same depth.
fn run_once(pairs: &[(u64, u64)], args: &Args, chunk: usize, depth: usize) -> Run {
    let config = ServeConfig::default()
        .with_shards(4)
        .with_inflight(8)
        .with_stream_chunk(chunk);
    let service = Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        pairs.iter().copied(),
        &config,
    ));
    let server = WidxServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("bind loopback");
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");
    let plan = scan_plan(args);

    // Streaming pass: keep `depth` streams open, fully drain the
    // oldest, refill. Chunks for the waiting streams stash per id.
    let mut first_samples = Vec::with_capacity(plan.len());
    let mut total_samples = Vec::with_capacity(plan.len());
    let mut chunks_received = 0u64;
    let mut entries_streamed = 0u64;
    let mut window: std::collections::VecDeque<(u64, Instant)> =
        std::collections::VecDeque::with_capacity(depth);
    let mut next = 0usize;
    while next < plan.len() || !window.is_empty() {
        while window.len() < depth.max(1) && next < plan.len() {
            let (lo, hi, desc) = plan[next];
            next += 1;
            let id = client
                .send_range_stream(lo, hi, usize::MAX, desc)
                .expect("send stream");
            window.push_back((id, Instant::now()));
        }
        let (id, sent) = window.pop_front().expect("window non-empty");
        let mut first = true;
        while let Some(piece) = client.recv_chunk(id).expect("stream survives") {
            if first {
                first = false;
                let ns = sent.elapsed().as_nanos();
                first_samples.push(u64::try_from(ns).unwrap_or(u64::MAX));
            }
            chunks_received += 1;
            entries_streamed += piece.len() as u64;
        }
        let ns = sent.elapsed().as_nanos();
        total_samples.push(u64::try_from(ns).unwrap_or(u64::MAX));
    }

    // Buffered baseline: the same scans as single-frame replies, same
    // pipeline depth.
    let mut buffered_samples = Vec::with_capacity(plan.len());
    let mut window: std::collections::VecDeque<(u64, Instant)> =
        std::collections::VecDeque::with_capacity(depth);
    let mut next = 0usize;
    while next < plan.len() || !window.is_empty() {
        while window.len() < depth.max(1) && next < plan.len() {
            let (lo, hi, desc) = plan[next];
            next += 1;
            let id = client
                .send(&widx_serve::Request::RangeScan {
                    lo,
                    hi,
                    limit: usize::MAX,
                    desc,
                })
                .expect("send buffered");
            window.push_back((id, Instant::now()));
        }
        let (id, sent) = window.pop_front().expect("window non-empty");
        let _ = client.recv(id).expect("buffered reply");
        let ns = sent.elapsed().as_nanos();
        buffered_samples.push(u64::try_from(ns).unwrap_or(u64::MAX));
    }

    let _ = server.shutdown();
    drop(
        Arc::try_unwrap(service)
            .ok()
            .expect("sole owner")
            .shutdown(),
    );
    Run {
        chunk,
        depth,
        first_chunk: LatencySummary::from_samples(first_samples),
        stream_total: LatencySummary::from_samples(total_samples),
        buffered: LatencySummary::from_samples(buffered_samples),
        chunks_received,
        entries_streamed,
    }
}

fn render_json(args: &Args, runs: &[Run]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"stream_throughput\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"host\": {},", widx_bench::prof::host_json());
    let _ = writeln!(out, "  \"scans\": {},", args.scans);
    let _ = writeln!(out, "  \"entries\": {},", args.entries);
    let _ = writeln!(out, "  \"span\": {},", args.span);
    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"chunk\": {}, \"depth\": {}, \"chunks\": {}, \"entries_streamed\": {}, ",
            run.chunk, run.depth, run.chunks_received, run.entries_streamed
        );
        let _ = write!(
            out,
            "\"first_chunk_ns\": {{\"p50\": {}, \"p95\": {}, \"mean\": {:.0}}}, ",
            run.first_chunk.p50_ns, run.first_chunk.p95_ns, run.first_chunk.mean_ns
        );
        let _ = write!(
            out,
            "\"stream_total_ns\": {{\"p50\": {}, \"p95\": {}}}, ",
            run.stream_total.p50_ns, run.stream_total.p95_ns
        );
        let _ = write!(
            out,
            "\"buffered_ns\": {{\"p50\": {}, \"p95\": {}, \"mean\": {:.0}}}",
            run.buffered.p50_ns, run.buffered.p95_ns, run.buffered.mean_ns
        );
        out.push('}');
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = parse_args();
    let chunk_sweep = [64usize, 512, 4096];
    let depth_sweep = [1usize, 4, 16];

    // Dense build side: key k → row id, so every scan returns exactly
    // `span` entries — long scans by construction.
    let pairs: Vec<(u64, u64)> = (0..args.entries).map(|k| (k, k ^ SEED)).collect();

    println!(
        "== stream_throughput: {} entries, {} scans of {} entries each \
         (alternating asc/desc), loopback TCP ==\n",
        args.entries, args.scans, args.span,
    );

    let mut runs = Vec::new();
    let mut t = Table::new(&[
        "chunk",
        "depth",
        "first-chunk p50 µs",
        "stream p50 µs",
        "buffered p50 µs",
        "first/buffered",
    ]);
    for &chunk in &chunk_sweep {
        for &depth in &depth_sweep {
            let run = run_once(&pairs, &args, chunk, depth);
            let ratio = if run.buffered.p50_ns == 0 {
                0.0
            } else {
                run.first_chunk.p50_ns as f64 / run.buffered.p50_ns as f64
            };
            t.row(&[
                run.chunk.to_string(),
                run.depth.to_string(),
                f1(run.first_chunk.p50_ns as f64 / 1e3),
                f1(run.stream_total.p50_ns as f64 / 1e3),
                f1(run.buffered.p50_ns as f64 / 1e3),
                f2(ratio),
            ]);
            runs.push(run);
        }
    }
    println!("{}", t.render());
    println!(
        "(first-chunk latency is the streaming win: the gather seam forwards the \
         head shard's chunks while the other shards are still scanning, so the \
         first entries reach the client well before the buffered reply — which \
         must wait for the slowest shard — would even start; `first/buffered` \
         below 1.0 is that win, and smaller chunks push it lower at the cost of \
         more frames)"
    );

    if let Some(path) = &args.json {
        let json = render_json(&args, &runs);
        std::fs::write(path, json).expect("write json");
        println!("\nwrote {path}");
    }
}
