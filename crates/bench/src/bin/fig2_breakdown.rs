//! Figure 2 — query execution-time breakdown on the software engine.
//!
//! * **2a**: % of execution time in Index / Scan / Sort&Join / Other for
//!   16 TPC-H + 9 TPC-DS synthetic query plans, executed for real on the
//!   `widx-db` operators (wall-clock attribution).
//! * **2b**: index time split into Hash vs Walk, from the decoupled
//!   probe passes of the hash-join operator, for the 12 queries the
//!   paper simulates.
//!
//! Usage: `fig2_breakdown [scale]` — scale factor on operator row
//! counts (default 1.0; use 0.05 for a quick run).

use widx_bench::table::{pct, Table};
use widx_db::column::{Column, ColumnType};
use widx_db::exec::OpClass;
use widx_db::hash::HashRecipe;
use widx_db::ops::hash_join;
use widx_workloads::datagen;
use widx_workloads::dss::{tpcds_fig2_with, tpch_fig2_with, OperatorCosts};
use widx_workloads::profiles::QueryProfile;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let costs = OperatorCosts::measure();
    println!(
        "host-calibrated operator costs (ns/row): probe {:.1}, scan {:.2}, sort {:.1}, agg {:.1}",
        costs.probe_ns, costs.scan_ns, costs.sort_ns, costs.agg_ns
    );
    println!("== Figure 2a: execution-time breakdown (scale {scale}) ==\n");

    let mut t = Table::new(&["suite", "query", "Index", "Scan", "Sort&Join", "Other"]);
    let mut index_fracs_h = Vec::new();
    let mut index_fracs_ds = Vec::new();
    for spec in tpch_fig2_with(&costs)
        .into_iter()
        .chain(tpcds_fig2_with(&costs))
    {
        let suite = spec.suite;
        let name = spec.name;
        let run = spec.scaled(scale).run();
        let b = run.breakdown();
        match suite {
            widx_workloads::profiles::Suite::TpcH => index_fracs_h.push(b[0]),
            widx_workloads::profiles::Suite::TpcDs => index_fracs_ds.push(b[0]),
        }
        t.row(&[
            suite.name().into(),
            name.into(),
            pct(b[0]),
            pct(b[1]),
            pct(b[2]),
            pct(b[3]),
        ]);
    }
    println!("{}", t.render());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
    println!(
        "TPC-H: indexing mean {} / max {} (paper: 35% / 94%); \
         TPC-DS: mean {} / max {} (paper: 45% / 77%)\n",
        pct(mean(&index_fracs_h)),
        pct(max(&index_fracs_h)),
        pct(mean(&index_fracs_ds)),
        pct(max(&index_fracs_ds)),
    );

    println!("== Figure 2b: index time split (Hash vs Walk) ==\n");
    let mut t = Table::new(&["suite", "query", "Walk", "Hash"]);
    let mut hash_fracs = Vec::new();
    for q in QueryProfile::all() {
        // Execute the probe on the software engine with the profile's
        // own hash recipe and size; the decoupled hash/walk passes give
        // the split directly.
        // Index sizes x4 so the big queries exceed the *host* LLC and
        // the hash/walk split reflects real memory behaviour.
        let entries = ((q.entries as f64 * 4.0 * scale) as usize).max(512);
        let probes = ((q.probes as f64 * 16.0 * scale.max(0.2)) as usize).max(2048);
        let dim = Column::new(
            "dim",
            ColumnType::U64,
            datagen::unique_shuffled_keys(q.seed, entries),
        );
        let fact = Column::new(
            "fact",
            ColumnType::U64,
            datagen::uniform_keys(q.seed ^ 1, probes, entries as u64),
        );
        let recipe = match q.recipe {
            widx_workloads::profiles::RecipeKind::Robust => HashRecipe::robust64(),
            widx_workloads::profiles::RecipeKind::Heavy => HashRecipe::heavy128(),
        };
        let join = hash_join(&dim, &fact, recipe, entries);
        let hash_frac = join.hash_fraction();
        hash_fracs.push(hash_frac);
        t.row(&[
            q.suite.name().into(),
            q.name.into(),
            pct(1.0 - hash_frac),
            pct(hash_frac),
        ]);
    }
    println!("{}", t.render());
    println!(
        "mean hash fraction {} (paper: 30% mean, up to 68% for L1-resident indexes)",
        pct(hash_fracs.iter().sum::<f64>() / hash_fracs.len() as f64)
    );
    let _ = OpClass::ALL; // (class enumeration re-exported for plot scripts)
}
