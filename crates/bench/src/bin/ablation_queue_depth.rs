//! Ablation — inter-unit queue depth.
//!
//! The paper's Section 3.2 model assumes an "infinite queue" between
//! hashing units and walkers, then notes that real designs throttle the
//! dispatcher through finite buffers; the evaluated hardware uses
//! 2-entry queues. This sweep quantifies what depth buys.
//!
//! Usage: `ablation_queue_depth [probes]`.

use widx_bench::runner::ProbeSetup;
use widx_bench::table::{f2, Table};
use widx_core::config::WidxConfig;
use widx_workloads::kernel::{KernelConfig, KernelSize};

fn main() {
    let probes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8192);
    println!("== Ablation: walker input-queue depth (4 walkers) ==\n");
    let mut t = Table::new(&["size", "depth 1", "depth 2 (paper)", "depth 4", "depth 8"]);
    for size in KernelSize::ALL {
        let setup = ProbeSetup::kernel(&KernelConfig::new(size).with_probes(probes));
        let mut row = vec![size.name().to_string()];
        for depth in [1usize, 2, 4, 8] {
            let cfg = WidxConfig::with_walkers(4).with_queue_depth(depth);
            let (r, _) = setup.run_widx(&cfg);
            row.push(f2(r.stats.cycles_per_tuple()));
        }
        t.row(&row);
    }
    println!("{}", t.render());
    println!(
        "(cycles per tuple; deeper queues mainly help when walker service \
         times vary — diminishing returns past the paper's 2 entries)"
    );
}
