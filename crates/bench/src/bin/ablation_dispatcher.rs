//! Ablation — decoupled hashing (Figure 3d, the Widx design) vs the
//! coupled design (Figure 3b: walkers hash their own keys).
//!
//! The paper's Section 1 claim: "decoupling key hashing from list
//! traversal takes the hashing operation off the critical path, which
//! reduces the time per list traversal by 29% on average". The coupled
//! walkers also lose the dispatcher-only fused `XOR-SHF`/`AND-SHF`
//! instructions (Table 1), paying the unfused expansion.
//!
//! Usage: `ablation_dispatcher [probes]`.

use widx_bench::runner::ProbeSetup;
use widx_bench::table::{f2, pct, Table};
use widx_core::config::WidxConfig;
use widx_core::offload::offload_probe_coupled;
use widx_db::hash::HashRecipe;
use widx_db::index::NodeLayout;
use widx_workloads::datagen;

fn main() {
    let probes_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8192);
    println!(
        "== Ablation: shared decoupled dispatcher (Fig. 3d) vs coupled hashing (Fig. 3b) ==\n"
    );

    let mut t = Table::new(&["hash", "walkers", "decoupled cpt", "coupled cpt", "saving"]);
    for recipe in [HashRecipe::robust64(), HashRecipe::heavy128()] {
        // LLC-resident index so hashing is a meaningful share of time.
        let entries = 32 * 1024;
        let build = datagen::unique_shuffled_keys(7, entries);
        let index = widx_db::index::HashIndex::build(
            recipe.clone(),
            entries,
            build.iter().enumerate().map(|(r, k)| (*k, r as u64)),
        );
        let probes = datagen::uniform_keys(11, probes_n, entries as u64);
        let setup = ProbeSetup::new(index, probes, NodeLayout::direct8());
        for walkers in [1usize, 2, 4] {
            let cfg = WidxConfig::with_walkers(walkers);
            let (dec, _) = setup.run_widx(&cfg);
            let mut mem = setup.mem.clone();
            widx_workloads::memimg::warm(&mut mem, &setup.image);
            let cou =
                offload_probe_coupled(&mut mem, &setup.index, &setup.image, &setup.probes, &cfg);
            let d = dec.stats.cycles_per_tuple();
            let c = cou.stats.cycles_per_tuple();
            t.row(&[
                recipe.name().into(),
                walkers.to_string(),
                f2(d),
                f2(c),
                pct((c - d) / c),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "(paper: decoupling cuts time per traversal by ~29% on average — visible \
         at 1-2 walkers. At 4 walkers over an LLC-resident index the coupled \
         design wins because it has four private hash units while the shared \
         dispatcher saturates: exactly the Figure 3c vs 3d trade-off, and the \
         \"very shallow buckets with low LLC miss ratios\" exception the \
         paper's Equation 6 analysis calls out.)"
    );
}
