//! Table 2 — evaluation parameters, printed from the live
//! `SystemConfig` defaults (so the table can never drift from the
//! simulator's configuration).

use widx_bench::table::Table;
use widx_sim::config::SystemConfig;

fn main() {
    let c = SystemConfig::default();
    println!("== Table 2: evaluation parameters ==\n");
    let mut t = Table::new(&["Parameter", "Value"]);
    let mut row = |k: &str, v: String| {
        t.row(&[k.to_string(), v]);
    };
    row("Technology", format!("40nm, {} GHz", c.freq_ghz));
    row(
        "Core types",
        format!(
            "In-order (A8-like): {}-wide; OoO (Xeon-like): {}-wide, {}-entry ROB",
            c.inorder.width, c.ooo.width, c.ooo.rob
        ),
    );
    row(
        "L1-D cache",
        format!(
            "{} KB, {} ports, {} B blocks, {} MSHRs, {}-cycle load-to-use",
            c.l1d.size_bytes / 1024,
            c.l1d.ports,
            c.l1d.block_bytes,
            c.l1d.mshrs,
            c.l1d.hit_latency
        ),
    );
    row(
        "LLC",
        format!(
            "{} MB, {}-cycle hit latency",
            c.llc.size_bytes / (1024 * 1024),
            c.llc.hit_latency
        ),
    );
    row(
        "TLB",
        format!(
            "{} in-flight translations, {} entries, {} KB pages",
            c.tlb.in_flight,
            c.tlb.entries,
            c.tlb.page_bytes / 1024
        ),
    );
    row(
        "Interconnect",
        format!("crossbar, {}-cycle latency", c.xbar_latency),
    );
    row(
        "Main memory",
        format!(
            "{} MCs, {:.1} GB/s peak each ({}% effective), {} ns access latency",
            c.memory.controllers,
            c.memory.peak_bytes_per_cycle * c.freq_ghz,
            (c.memory.efficiency * 100.0) as u32,
            c.memory.access_latency as f64 / c.freq_ghz
        ),
    );
    println!("{}", t.render());
}
