//! Runs every experiment harness in sequence — the one-shot
//! reproduction driver behind `EXPERIMENTS.md`.
//!
//! Usage: `all_experiments [quick]` — `quick` shrinks workload sizes
//! for a fast smoke run.

use std::process::Command;

fn main() {
    let quick = std::env::args().nth(1).is_some_and(|a| a == "quick");
    let (kernel_probes, dss_probes, fig2_scale) = if quick {
        ("2048", "2048", "0.05")
    } else {
        ("16384", "12288", "1.0")
    };
    let (serve_probes, serve_entries) = if quick {
        ("20000", "65536")
    } else {
        ("100000", "262144")
    };
    let (range_scans, range_entries) = if quick {
        ("4000", "65536")
    } else {
        ("20000", "262144")
    };
    // The idle/tail phase (idle-CPU at zero load, p99/p999 with mostly
    // quiet connections) rides along on net_throughput; the idle-CPU
    // sample itself prints a SKIP line on hosts without /proc/self/stat.
    let (net_requests, net_entries, net_idle_conns) = if quick {
        ("4000", "16384", "64")
    } else {
        ("50000", "262144", "256")
    };
    let (stream_scans, stream_entries, stream_span) = if quick {
        ("16", "16384", "4096")
    } else {
        ("64", "262144", "32768")
    };

    let exe = std::env::current_exe().expect("current exe path");
    let bin_dir = exe.parent().expect("bin dir").to_path_buf();
    let run = |name: &str, args: &[&str]| {
        println!(
            "\n{}\n# {name} {}\n{}",
            "#".repeat(72),
            args.join(" "),
            "#".repeat(72)
        );
        let status = Command::new(bin_dir.join(name))
            .args(args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} failed with {status}");
    };
    // The serving sweeps each keep a committed baseline JSON at the repo
    // root. Say so out loud either way — a silently absent baseline
    // looks identical to a sweep nobody compares against. Baselines are
    // anchored to the source tree (like the sweep binaries are anchored
    // to the build dir), not the cwd, so running from anywhere judges
    // the same files.
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the workspace root")
        .to_path_buf();
    let baseline = move |name: &str, file: &str| {
        let path = repo_root.join(file);
        if path.exists() {
            println!(
                "(baseline: {} is committed — compare this run against it)",
                path.display()
            );
        } else {
            println!(
                "SKIP: no baseline {file} for {name} — from the repo root, \
                 run `cargo run --release --bin {name} -- --json {file}` to create it"
            );
        }
    };

    run("table1_isa", &[]);
    run("table2_params", &[]);
    run("fig2_breakdown", &[fig2_scale]);
    run("fig4_bottlenecks", &[]);
    run("fig5_utilization", &[]);
    run("fig8_hashjoin", &[kernel_probes]);
    run("fig9_dss", &[dss_probes]);
    run("fig10_speedup", &[dss_probes]);
    run("fig11_energy", &[dss_probes]);
    run("table3_area", &[]);
    run("ablation_dispatcher", &[kernel_probes]);
    run("ablation_queue_depth", &[kernel_probes]);
    run("ablation_llc_widx", &[kernel_probes]);
    run("ablation_touch", &[kernel_probes]);
    run("ablation_btree", &[dss_probes]);
    run("ablation_skew", &[kernel_probes]);
    run(
        "serve_throughput",
        &[
            "--probes",
            serve_probes,
            "--entries",
            serve_entries,
            "--profile",
        ],
    );
    baseline("serve_throughput", "BENCH_serve.json");
    // Mixed read/write sweeps through the mutable serving tier: the
    // YCSB-B 95/5 shape and the YCSB-A 50/50 shape, one shard point
    // each — write barriers and epoch reclamation on the hot path.
    for write_frac in ["0.05", "0.5"] {
        run(
            "serve_throughput",
            &[
                "--probes",
                serve_probes,
                "--entries",
                serve_entries,
                "--shards",
                "4",
                "--write-frac",
                write_frac,
            ],
        );
    }
    run(
        "range_throughput",
        &["--scans", range_scans, "--entries", range_entries],
    );
    baseline("range_throughput", "BENCH_range.json");
    run(
        "net_throughput",
        &[
            "--requests",
            net_requests,
            "--entries",
            net_entries,
            "--idle-conns",
            net_idle_conns,
        ],
    );
    baseline("net_throughput", "BENCH_net.json");
    // The same two mixed shapes over loopback TCP: write opcodes on the
    // wire, acks pipelined with reads.
    for write_frac in ["0.05", "0.5"] {
        run(
            "net_throughput",
            &[
                "--requests",
                net_requests,
                "--entries",
                net_entries,
                "--idle-conns",
                "0",
                "--write-frac",
                write_frac,
            ],
        );
    }
    run(
        "stream_throughput",
        &[
            "--scans",
            stream_scans,
            "--entries",
            stream_entries,
            "--span",
            stream_span,
        ],
    );
    baseline("stream_throughput", "BENCH_stream.json");
    println!("\nall experiments completed");
}
