//! Figure 9 — Widx walker cycles-per-tuple breakdown on the DSS query
//! profiles (9a: TPC-H, 9b: TPC-DS), for 1/2/4 walkers.
//!
//! Usage: `fig9_dss [probes]` (default 12288).

use widx_bench::runner::ProbeSetup;
use widx_bench::table::{f2, Table};
use widx_core::config::WidxConfig;
use widx_workloads::profiles::{QueryProfile, Suite};

fn main() {
    let probes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(QueryProfile::DEFAULT_PROBES);

    for (fig, suite) in [("9a", Suite::TpcH), ("9b", Suite::TpcDs)] {
        println!(
            "== Figure {fig}: {} walker cycle breakdown (cycles/tuple) ==\n",
            suite.name()
        );
        let mut t = Table::new(&["query", "walkers", "comp", "mem", "tlb", "idle", "total"]);
        for q in QueryProfile::all().into_iter().filter(|q| q.suite == suite) {
            let setup = ProbeSetup::profile(&q.clone().with_probes(probes));
            for walkers in [1usize, 2, 4] {
                let (r, _) = setup.run_widx(&WidxConfig::with_walkers(walkers));
                let per = r.stats.walker_cycles_per_tuple();
                t.row(&[
                    q.name.into(),
                    walkers.to_string(),
                    f2(per.comp),
                    f2(per.mem),
                    f2(per.tlb),
                    f2(per.idle),
                    f2(per.total()),
                ]);
            }
        }
        println!("{}", t.render());
    }
    println!(
        "expected shape (paper Sec. 6.2): linear cycles-per-tuple reduction with \
         walker count; TPC-DS totals far below TPC-H (note the paper's y-axis change); \
         idle cycles on L1-resident TPC-DS queries (5, 37, 64, 82); TLB cycles only \
         on the memory-intensive TPC-H queries (19, 20, 22)."
    );
}
