//! Ablation — dispatcher `TOUCH`-ahead prefetching.
//!
//! Table 1 gives every unit the `TOUCH` instruction "to reduce memory
//! time ... by demanding data blocks in advance of their use". This
//! sweep has the dispatcher touch each bucket header right after
//! hashing, so the line is (ideally) in flight before a walker pops the
//! key — trading L1/MSHR pressure for walker stall time.
//!
//! Usage: `ablation_touch [probes]`.

use widx_bench::runner::ProbeSetup;
use widx_bench::table::{f2, pct, Table};
use widx_core::config::WidxConfig;
use widx_workloads::kernel::{KernelConfig, KernelSize};

fn main() {
    let probes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8192);
    println!("== Ablation: dispatcher TOUCH-ahead of bucket headers (4 walkers) ==\n");
    let mut t = Table::new(&["size", "no touch cpt", "touch cpt", "change"]);
    for size in KernelSize::ALL {
        let setup = ProbeSetup::kernel(&KernelConfig::new(size).with_probes(probes));
        let (plain, _) = setup.run_widx(&WidxConfig::with_walkers(4));
        let (touch, _) = setup.run_widx(&WidxConfig::with_walkers(4).with_touch_ahead());
        let p = plain.stats.cycles_per_tuple();
        let q = touch.stats.cycles_per_tuple();
        t.row(&[size.name().into(), f2(p), f2(q), pct((p - q) / p)]);
    }
    println!("{}", t.render());
    println!(
        "(touch-ahead helps when walkers are memory-bound and queues give \
         the prefetch time to fly; it wastes L1 ports/MSHRs when the \
         index is cache-resident)"
    );
}
