//! Ordered-serving throughput sweep: shard count × in-flight scan
//! cursors × batch size on a Zipfian range-scan stream — the
//! `widx-serve` range tier measured as a front-end.
//!
//! Four client threads pipeline `RangeScan` requests against a service
//! built with `build_with_range`; per-run output reports wall-clock
//! scan and entry throughput, request-latency percentiles, and
//! per-range-worker occupancy/batch shape. With `--json PATH`, the full
//! sweep (including per-worker rows) is written as JSON for trend
//! tracking (`BENCH_range.json` keeps the committed baseline).
//!
//! Usage: `range_throughput [--shards N] [--scans N] [--entries N]
//! [--span N] [--limit N] [--theta T] [--json PATH] [--smoke]`.

use std::fmt::Write as _;
use std::time::Instant;

use widx_bench::table::{f1, f2, pct, Table};
use widx_db::hash::HashRecipe;
use widx_serve::{ProbeService, Request, ServeConfig, ServiceStats};
use widx_workloads::datagen;

const SEED: u64 = 0x5CA7;
const CLIENTS: usize = 4;

struct Args {
    shards: Option<usize>,
    scans: usize,
    entries: u64,
    span: u64,
    limit: usize,
    theta: f64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: None,
        scans: 20_000,
        entries: 1 << 18,
        span: 256,
        limit: 128,
        theta: 0.99,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--shards" => args.shards = Some(value().parse().expect("--shards")),
            "--scans" => args.scans = value().parse().expect("--scans"),
            "--entries" => args.entries = value().parse().expect("--entries"),
            "--span" => args.span = value().parse().expect("--span"),
            "--limit" => args.limit = value().parse().expect("--limit"),
            "--theta" => args.theta = value().parse().expect("--theta"),
            "--json" => args.json = Some(value()),
            // Quick CI tier: small workload, one sweep point per axis.
            "--smoke" => {
                args.scans = 2_000;
                args.entries = 1 << 14;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// One sweep point's results.
struct Run {
    shards: usize,
    inflight: usize,
    batch_size: usize,
    wall_ms: f64,
    scans_per_sec: f64,
    entries_per_sec: f64,
    stats: ServiceStats,
}

/// Drives `ranges` through a freshly built range-serving tier with
/// `CLIENTS` pipelining client threads.
fn run_once(
    pairs: &[(u64, u64)],
    ranges: &[(u64, u64)],
    shards: usize,
    inflight: usize,
    batch_size: usize,
    limit: usize,
) -> Run {
    let config = ServeConfig::default()
        .with_shards(shards)
        .with_inflight(inflight)
        .with_batch_size(batch_size);
    let service =
        ProbeService::build_with_range(HashRecipe::robust64(), pairs.iter().copied(), &config);

    let started = Instant::now();
    std::thread::scope(|scope| {
        let per_client = ranges.len().div_ceil(CLIENTS);
        for slice in ranges.chunks(per_client.max(1)) {
            let service = &service;
            scope.spawn(move || {
                // Pipeline up to 32 requests per client before reaping.
                let mut window = Vec::with_capacity(32);
                for (lo, hi) in slice {
                    let pending = service
                        .submit(Request::RangeScan {
                            lo: *lo,
                            hi: *hi,
                            limit,
                            desc: false,
                        })
                        .expect("service running");
                    window.push(pending);
                    if window.len() == 32 {
                        for p in window.drain(..) {
                            let _ = p.wait();
                        }
                    }
                }
                for p in window {
                    let _ = p.wait();
                }
            });
        }
    });
    let wall = started.elapsed();
    let stats = service.shutdown();
    Run {
        shards,
        inflight,
        batch_size,
        wall_ms: wall.as_secs_f64() * 1e3,
        scans_per_sec: ranges.len() as f64 / wall.as_secs_f64(),
        entries_per_sec: stats.total_scan_entries() as f64 / wall.as_secs_f64(),
        stats,
    }
}

fn render_json(args: &Args, runs: &[Run]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"range_throughput\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"host\": {},", widx_bench::prof::host_json());
    let _ = writeln!(out, "  \"entries\": {},", args.entries);
    let _ = writeln!(out, "  \"scans\": {},", args.scans);
    let _ = writeln!(out, "  \"span\": {},", args.span);
    let _ = writeln!(out, "  \"limit\": {},", args.limit);
    let _ = writeln!(out, "  \"theta\": {},", args.theta);
    let _ = writeln!(out, "  \"clients\": {CLIENTS},");
    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let lat = &run.stats.latency;
        out.push_str("    {");
        let _ = write!(
            out,
            "\"shards\": {}, \"inflight\": {}, \"batch_size\": {}, \
             \"wall_ms\": {:.3}, \"scans_per_sec\": {:.0}, \"entries_per_sec\": {:.0}, ",
            run.shards,
            run.inflight,
            run.batch_size,
            run.wall_ms,
            run.scans_per_sec,
            run.entries_per_sec
        );
        let _ = write!(
            out,
            "\"latency_ns\": {{\"count\": {}, \"mean\": {:.0}, \"p50\": {}, \
             \"p95\": {}, \"p99\": {}, \"max\": {}}}, ",
            lat.count, lat.mean_ns, lat.p50_ns, lat.p95_ns, lat.p99_ns, lat.max_ns
        );
        out.push_str("\"range_workers\": [");
        for (j, w) in run.stats.range_workers.iter().enumerate() {
            let _ = write!(
                out,
                "{{\"shard\": {}, \"cursors\": {}, \"entries\": {}, \"batches\": {}, \
                 \"mean_batch\": {:.2}, \"size_flushes\": {}, \"deadline_flushes\": {}, \
                 \"occupancy\": {:.4}, \"busy_cursors_per_sec\": {:.0}}}",
                w.shard,
                w.keys,
                w.matches,
                w.batches,
                w.mean_batch(),
                w.size_flushes,
                w.deadline_flushes,
                w.occupancy(),
                w.busy_throughput(),
            );
            if j + 1 < run.stats.range_workers.len() {
                out.push_str(", ");
            }
        }
        out.push_str("]}");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = parse_args();
    let shard_sweep: Vec<usize> = match args.shards {
        Some(s) => vec![s],
        None => vec![1, 2, 4],
    };
    let inflight_sweep = [1usize, 4, 8];
    let batch_sweep = [16usize, 64];

    // Dense unique build side: key k → row id. Scans over [lo, hi]
    // therefore return ~span entries each (capped by --limit).
    let pairs: Vec<(u64, u64)> = datagen::unique_shuffled_keys(SEED, args.entries as usize)
        .into_iter()
        .enumerate()
        .map(|(row, key)| (key, row as u64))
        .collect();
    let ranges = datagen::range_queries(SEED ^ 1, args.scans, args.entries, args.span, args.theta);

    println!(
        "== range_throughput: {} entries, {} Zipf({}) scans (span ≤ {}, limit {}), {} clients ==\n",
        args.entries, args.scans, args.theta, args.span, args.limit, CLIENTS
    );
    println!("(seed {SEED:#x}; per-worker detail in --json output)\n");

    let mut runs = Vec::new();
    let mut t = Table::new(&[
        "shards",
        "inflight",
        "batch",
        "wall ms",
        "Kscans/s",
        "Mentries/s",
        "p50 µs",
        "p99 µs",
        "occupancy",
        "mean batch",
    ]);
    for &shards in &shard_sweep {
        for &inflight in &inflight_sweep {
            for &batch_size in &batch_sweep {
                let run = run_once(&pairs, &ranges, shards, inflight, batch_size, args.limit);
                let occ = run
                    .stats
                    .range_workers
                    .iter()
                    .map(widx_serve::WorkerStats::occupancy)
                    .sum::<f64>()
                    / run.stats.range_workers.len() as f64;
                let mean_batch = run
                    .stats
                    .range_workers
                    .iter()
                    .map(widx_serve::WorkerStats::mean_batch)
                    .sum::<f64>()
                    / run.stats.range_workers.len() as f64;
                t.row(&[
                    run.shards.to_string(),
                    run.inflight.to_string(),
                    run.batch_size.to_string(),
                    f2(run.wall_ms),
                    f2(run.scans_per_sec / 1e3),
                    f2(run.entries_per_sec / 1e6),
                    f1(run.stats.latency.p50_ns as f64 / 1e3),
                    f1(run.stats.latency.p99_ns as f64 / 1e3),
                    pct(occ),
                    f1(mean_batch),
                ]);
                runs.push(run);
            }
        }
    }
    println!("{}", t.render());
    println!(
        "(each scan scatters to the shards its interval overlaps and gathers \
         back in key order; batching across concurrent scans fills the \
         per-shard cursor ring, the ordered-tier analogue of the paper's \
         dispatcher keeping all four walkers busy)"
    );

    if let Some(path) = &args.json {
        let json = render_json(&args, &runs);
        std::fs::write(path, json).expect("write json");
        println!("\nwrote {path}");
    }
}
