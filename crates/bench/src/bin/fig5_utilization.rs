//! Figure 5 — walkers a single dispatcher can feed (Equation 6), as a
//! function of LLC miss ratio and bucket depth.

use widx_bench::table::{f2, Table};
use widx_model::{walker_utilization_series, ModelParams};

fn main() {
    let p = ModelParams::default();
    let walkers = [8u32, 4, 2];

    for nodes_per_bucket in [1.0, 2.0, 3.0] {
        println!(
            "== Figure 5{}: walker utilization, {} node(s) per bucket ==\n",
            match nodes_per_bucket as u32 {
                1 => "a",
                2 => "b",
                _ => "c",
            },
            nodes_per_bucket
        );
        let series = walker_utilization_series(&p, nodes_per_bucket, &walkers, 10);
        let mut header = vec!["llc miss".to_string()];
        header.extend(walkers.iter().map(|w| format!("{w} walkers")));
        let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
        for i in 0..=10 {
            let mut row = vec![f2(i as f64 / 10.0)];
            for (_, points) in &series {
                row.push(f2(points[i].1));
            }
            t.row(&row);
        }
        println!("{}", t.render());
    }
    println!(
        "conclusion (paper): one dispatcher feeds up to 4 walkers except for \
         very shallow buckets (1 node/bucket) at low LLC miss ratios"
    );
}
