//! Shared experiment runners: set up a workload once, then measure the
//! OoO baseline, the in-order core, and Widx design points on clones of
//! the same warmed memory image.

use widx_core::config::WidxConfig;
use widx_core::offload::{self, OffloadResult};
use widx_db::index::HashIndex;
use widx_sim::config::SystemConfig;
use widx_sim::core::{run_inorder, run_ooo, CoreRunResult};
use widx_sim::mem::{MemorySystem, RegionAllocator};
use widx_sim::stats::MemStats;
use widx_workloads::kernel::KernelConfig;
use widx_workloads::memimg::{self, IndexImage};
use widx_workloads::profiles::QueryProfile;
use widx_workloads::trace::probe_trace;

/// A fully materialized probe workload, ready to measure on any engine.
pub struct ProbeSetup {
    /// System parameters (Table 2).
    pub sys: SystemConfig,
    /// Cold memory with the workload image materialized (cloned and
    /// warmed per measurement).
    pub mem: MemorySystem,
    /// The logical index (walk oracle).
    pub index: HashIndex,
    /// The materialized image.
    pub image: IndexImage,
    /// The probe stream.
    pub probes: Vec<u64>,
}

/// Measurement of one engine on a [`ProbeSetup`].
#[derive(Clone, Debug)]
pub struct Measured {
    /// Total cycles for the probe stream.
    pub cycles: u64,
    /// Cycles per tuple.
    pub cpt: f64,
    /// Memory-system counters for the run.
    pub mem_stats: MemStats,
}

impl ProbeSetup {
    /// Materializes `index` + `probes` into a cold memory system.
    #[must_use]
    pub fn new(
        index: HashIndex,
        probes: Vec<u64>,
        layout: widx_db::index::NodeLayout,
    ) -> ProbeSetup {
        let sys = SystemConfig::default();
        let mut mem = MemorySystem::new(sys.clone());
        let mut alloc = RegionAllocator::new();
        let expected: u64 = probes
            .iter()
            .map(|p| index.lookup_all(*p).len() as u64)
            .sum();
        let image = memimg::materialize(&mut mem, &mut alloc, &index, &probes, layout, expected);
        ProbeSetup {
            sys,
            mem,
            index,
            image,
            probes,
        }
    }

    /// Builds the setup for a hash-join kernel configuration.
    #[must_use]
    pub fn kernel(cfg: &KernelConfig) -> ProbeSetup {
        let (index, probes) = cfg.build();
        ProbeSetup::new(index, probes, cfg.layout())
    }

    /// Builds the setup for a DSS query profile.
    #[must_use]
    pub fn profile(q: &QueryProfile) -> ProbeSetup {
        let (index, probes) = q.build();
        ProbeSetup::new(index, probes, q.layout)
    }

    fn warmed_mem(&self) -> MemorySystem {
        let mut mem = self.mem.clone();
        memimg::warm(&mut mem, &self.image);
        mem.reset_stats();
        mem
    }

    /// Runs Widx with `config`, returning the offload result and the
    /// memory counters.
    #[must_use]
    pub fn run_widx(&self, config: &WidxConfig) -> (OffloadResult, MemStats) {
        let mut mem = self.warmed_mem();
        let r = offload::offload_probe(&mut mem, &self.index, &self.image, &self.probes, config);
        let stats = mem.stats();
        (r, stats)
    }

    /// Runs the OoO baseline core over the software probe trace.
    #[must_use]
    pub fn run_ooo(&self) -> Measured {
        let trace = probe_trace(&self.index, &self.image, &self.probes);
        let mut mem = self.warmed_mem();
        let r = run_ooo(&self.sys.ooo, &trace, &mut mem, 0);
        measured(r, mem.stats())
    }

    /// Runs the in-order comparison core over the software probe trace.
    #[must_use]
    pub fn run_inorder(&self) -> Measured {
        let trace = probe_trace(&self.index, &self.image, &self.probes);
        let mut mem = self.warmed_mem();
        let r = run_inorder(&self.sys.inorder, &trace, &mut mem, 0);
        measured(r, mem.stats())
    }
}

fn measured(r: CoreRunResult, mem_stats: MemStats) -> Measured {
    Measured {
        cycles: r.cycles,
        cpt: r.cycles_per_tuple(),
        mem_stats,
    }
}

/// Geometric mean of a series (1.0 for an empty series).
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use widx_workloads::kernel::KernelSize;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn small_kernel_round_trip() {
        let cfg = KernelConfig::new(KernelSize::Small).with_probes(256);
        let setup = ProbeSetup::kernel(&cfg);
        let (widx, _) = setup.run_widx(&WidxConfig::with_walkers(2));
        assert_eq!(widx.stats.tuples, 256);
        // Every kernel probe matches exactly once.
        assert_eq!(widx.stats.matches, 256);
        let ooo = setup.run_ooo();
        assert!(ooo.cycles > 0);
    }
}
