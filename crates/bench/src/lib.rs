//! # widx-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see `src/bin/`), built on
//! the shared runners here. Every harness prints the same rows/series
//! the paper reports, plus the workload seeds for reproducibility.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod prof;
pub mod runner;
pub mod table;
