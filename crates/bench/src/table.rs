//! Minimal aligned-column table printing for harness output.

/// A simple text table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header's.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimals.
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 1 decimal.
#[must_use]
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a percentage with no decimals.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(pct(0.831), "83%");
    }
}
