//! Shared profiling plumbing for the bench harnesses: host metadata
//! every JSON emitter records (CPU count, counter-shim backend, poller
//! backend), and the per-engine profiled sweep behind `--profile` —
//! the paper's Figure 2 measured live, with scalar / group-prefetch /
//! AMAC walkers each run under a [`ThreadProfiler`] over the same
//! probe stream so their cycle breakdowns (IPC, LLC MPKI, stall
//! fraction, effective MLP) are directly comparable.

use std::sync::Arc;

use perf_event::CounterGroup;
use widx_db::index::{BTreeIndex, HashIndex};
use widx_obs::{ProfCell, ProfSnapshot, Stage, ThreadProfiler, WalkCounters};
use widx_soft::{
    probe_amac, probe_group_prefetch, probe_scalar, scan_btree_amac, scan_btree_group,
    scan_btree_scalar, Match, ScanRange,
};

use crate::table::{f2, Table};

/// Logical CPUs visible to this process — recorded in every bench JSON
/// so baselines from differently-sized hosts are never compared as
/// like-for-like.
#[must_use]
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The readiness-poller backend the net tier would use right now
/// (`WIDX_POLLER` override, or the platform default).
#[must_use]
pub fn poller_backend() -> String {
    std::env::var("WIDX_POLLER").unwrap_or_else(|_| poller::DEFAULT_BACKEND.to_string())
}

/// Probes the counter shim once: `(backend, hw, fallback_reason)` as a
/// fresh [`CounterGroup`] on this thread reports them.
#[must_use]
pub fn prof_backend() -> (&'static str, bool, Option<String>) {
    let group = CounterGroup::new();
    (
        group.backend(),
        group.has_hw_counters(),
        group.fallback_reason().map(str::to_owned),
    )
}

/// The host-metadata JSON object (`"host": {...}`) shared by every
/// bench emitter: CPU count plus the shim backends in use.
#[must_use]
pub fn host_json() -> String {
    let (backend, hw, _) = prof_backend();
    format!(
        "{{\"cpus\": {}, \"prof_backend\": \"{}\", \"prof_hw\": {}, \"poller_backend\": \"{}\"}}",
        host_cpus(),
        backend,
        hw,
        poller_backend()
    )
}

/// One engine's profiled run: its walk window snapshot plus wall-clock
/// throughput over the shared probe stream.
pub struct EngineProfile {
    /// Engine name: `"scalar"`, `"group_prefetch"`, or `"amac"`.
    pub engine: &'static str,
    /// Counter snapshot; the walk window is the entire probe loop.
    pub snap: ProfSnapshot,
    /// Matches produced (result-parity check across engines).
    pub matches: usize,
    /// Probe throughput over the profiled loop.
    pub keys_per_sec: f64,
}

impl EngineProfile {
    /// The walk-stage breakdown this engine recorded.
    #[must_use]
    pub fn walk(&self) -> &widx_obs::ProfStageSnapshot {
        // Index 2 is `Stage::Walk` in `Stage::ALL` order.
        &self.snap.stages[2]
    }

    /// One JSON object for the bench emitters.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"engine\": \"{}\", \"matches\": {}, \"keys_per_sec\": {:.0}, \"prof\": {}}}",
            self.engine,
            self.matches,
            self.keys_per_sec,
            self.snap.to_json()
        )
    }
}

/// Runs the three walker engines over the same probe stream, each
/// under its own freshly attached [`ThreadProfiler`], and returns the
/// per-engine cycle breakdowns. `inflight` sizes the AMAC ring;
/// `group` the group-prefetch stage width.
#[must_use]
pub fn profile_engines(
    index: &HashIndex,
    probes: &[u64],
    inflight: usize,
    group: usize,
) -> Vec<EngineProfile> {
    type Runner<'a> = Box<dyn Fn(&mut Vec<Match>) -> WalkCounters + 'a>;
    let engines: [(&'static str, Runner<'_>); 3] = [
        (
            "scalar",
            Box::new(|out: &mut Vec<Match>| probe_scalar(index, probes, out)),
        ),
        (
            "group_prefetch",
            Box::new(|out: &mut Vec<Match>| probe_group_prefetch(index, probes, group, out)),
        ),
        (
            "amac",
            Box::new(|out: &mut Vec<Match>| probe_amac(index, probes, inflight, out)),
        ),
    ];
    engines
        .into_iter()
        .map(|(engine, run)| {
            let cell = Arc::new(ProfCell::new());
            let mut prof = ThreadProfiler::attach(Arc::clone(&cell));
            let mut out = Vec::with_capacity(probes.len());
            // One warm-up pass outside the window so all three engines
            // see a hot cache hierarchy and page tables.
            let _ = run(&mut out);
            out.clear();
            let started = std::time::Instant::now();
            let mark = prof.mark();
            let counters = run(&mut out);
            prof.record(Stage::Walk, mark);
            let wall = started.elapsed();
            prof.add_walk(&counters);
            EngineProfile {
                engine,
                snap: cell.snapshot(),
                matches: out.len(),
                keys_per_sec: probes.len() as f64 / wall.as_secs_f64(),
            }
        })
        .collect()
}

/// The ordered-index analogue of [`profile_engines`]: the three
/// B+-tree scan engines over the same scan set, each under its own
/// counter group. `matches` counts emitted entries; `keys_per_sec` is
/// entries emitted per second.
#[must_use]
pub fn profile_btree_engines(
    tree: &BTreeIndex,
    scans: &[ScanRange],
    inflight: usize,
    group: usize,
) -> Vec<EngineProfile> {
    type Runner<'a> = Box<dyn Fn(&mut usize) -> WalkCounters + 'a>;
    let engines: [(&'static str, Runner<'_>); 3] = [
        (
            "scalar",
            Box::new(|n: &mut usize| scan_btree_scalar(tree, scans, &mut |_, _, _| *n += 1)),
        ),
        (
            "group_prefetch",
            Box::new(|n: &mut usize| scan_btree_group(tree, scans, group, &mut |_, _, _| *n += 1)),
        ),
        (
            "amac",
            Box::new(|n: &mut usize| {
                scan_btree_amac(tree, scans, inflight, &mut |_, _, _| *n += 1)
            }),
        ),
    ];
    engines
        .into_iter()
        .map(|(engine, run)| {
            let cell = Arc::new(ProfCell::new());
            let mut prof = ThreadProfiler::attach(Arc::clone(&cell));
            let mut emitted = 0usize;
            let _ = run(&mut emitted); // warm-up pass
            emitted = 0;
            let started = std::time::Instant::now();
            let mark = prof.mark();
            let counters = run(&mut emitted);
            prof.record(Stage::Walk, mark);
            let wall = started.elapsed();
            prof.add_walk(&counters);
            EngineProfile {
                engine,
                snap: cell.snapshot(),
                matches: emitted,
                keys_per_sec: emitted as f64 / wall.as_secs_f64(),
            }
        })
        .collect()
}

/// Renders the per-engine breakdown as the bench table (`-` for
/// metrics the software backend cannot derive).
#[must_use]
pub fn render_engine_table(profiles: &[EngineProfile]) -> String {
    let opt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), f2);
    let mut t = Table::new(&[
        "engine",
        "Mkeys/s",
        "IPC",
        "LLC MPKI",
        "stall frac",
        "eff. MLP",
        "soft MLP",
    ]);
    for p in profiles {
        let w = p.walk();
        t.row(&[
            p.engine.to_string(),
            f2(p.keys_per_sec / 1e6),
            opt(w.ipc()),
            opt(w.llc_mpki()),
            opt(w.stall_fraction()),
            opt(w.effective_mlp()),
            opt(p.snap.soft_mlp()),
        ]);
    }
    t.render()
}

/// The `"engine_profiles"` JSON array plus its backend header, shared
/// by the emitters that run the profiled sweep.
#[must_use]
pub fn engines_json(profiles: &[EngineProfile]) -> String {
    let rows: Vec<String> = profiles.iter().map(EngineProfile::to_json).collect();
    format!("[{}]", rows.join(", "))
}
