//! Property tests: the hash index and the joins agree with standard
//! library oracles for arbitrary key multisets.

use std::collections::HashMap;

use proptest::prelude::*;
use widx_db::column::{Column, ColumnType};
use widx_db::hash::HashRecipe;
use widx_db::index::{BTreeIndex, HashIndex};
use widx_db::ops::{hash_join, sort_merge_join};

fn oracle(pairs: &[(u64, u64)]) -> HashMap<u64, Vec<u64>> {
    let mut m: HashMap<u64, Vec<u64>> = HashMap::new();
    for (k, v) in pairs {
        m.entry(*k).or_default().push(*v);
    }
    m
}

proptest! {
    #[test]
    fn hash_index_agrees_with_map(
        pairs in prop::collection::vec((any::<u64>(), any::<u64>()), 0..300),
        probes in prop::collection::vec(any::<u64>(), 0..100),
        buckets in 1usize..128,
    ) {
        let idx = HashIndex::build(HashRecipe::robust64(), buckets, pairs.iter().copied());
        let oracle = oracle(&pairs);
        // Every inserted key is found with all payloads.
        for (k, expected) in &oracle {
            let mut got = idx.lookup_all(*k);
            got.sort_unstable();
            let mut want = expected.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
        // Random probes agree on membership.
        for p in probes {
            prop_assert_eq!(idx.lookup(p).is_some(), oracle.contains_key(&p));
        }
        prop_assert_eq!(idx.len(), pairs.len());
    }

    #[test]
    fn trivial_hash_also_correct(
        pairs in prop::collection::vec((0u64..1000, any::<u64>()), 0..200),
    ) {
        // Correctness must not depend on hash quality.
        let idx = HashIndex::build(HashRecipe::trivial(), 8, pairs.iter().copied());
        let oracle = oracle(&pairs);
        for (k, expected) in &oracle {
            prop_assert_eq!(idx.lookup_all(*k).len(), expected.len());
        }
    }

    #[test]
    fn btree_agrees_with_map(
        pairs in prop::collection::vec((any::<u64>(), any::<u64>()), 0..300),
        probes in prop::collection::vec(any::<u64>(), 0..100),
        fanout in 2usize..16,
    ) {
        let tree = BTreeIndex::build(fanout, pairs.iter().copied());
        let oracle = oracle(&pairs);
        for p in pairs.iter().map(|(k, _)| *k).chain(probes) {
            let got = tree.lookup(p);
            match oracle.get(&p) {
                Some(values) => prop_assert!(values.contains(&got.expect("present key found"))),
                None => prop_assert!(got.is_none()),
            }
        }
    }

    #[test]
    fn joins_agree(
        build in prop::collection::vec(0u64..64, 0..120),
        probe in prop::collection::vec(0u64..64, 0..120),
    ) {
        let b = Column::new("b", ColumnType::U64, build);
        let p = Column::new("p", ColumnType::U64, probe);
        let mut hj = hash_join(&b, &p, HashRecipe::robust64(), 32).pairs;
        let mut sm = sort_merge_join(&b, &p).pairs;
        hj.sort_unstable();
        sm.sort_unstable();
        prop_assert_eq!(hj, sm);
    }

    #[test]
    fn probe_visits_at_least_chain_on_hit(
        keys in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let idx = HashIndex::build(
            HashRecipe::robust64(),
            16,
            keys.iter().map(|k| (*k, 0u64)),
        );
        for k in &keys {
            prop_assert!(idx.probe_visits(*k) >= 1);
        }
    }
}
