//! Epoch-based reclamation for the mutable indexes.
//!
//! The serving tier's walkers hold *indices* into node arenas (bucket
//! overflow nodes, B+-tree leaves) across yields — and, for resumable
//! range cursors, across whole batches. A writer that freed a node's
//! slot and reused it for unrelated data would hand such a cursor a
//! torn view: the index it saved now names a different node. Classic
//! epoch-based reclamation (Fraser; crossbeam-epoch is the Rust
//! archetype) solves this without per-node locks:
//!
//! * every participant (one per shard worker) owns an [`EpochCell`];
//!   while it works on a batch it *pins* the cell to the global epoch,
//!   and clears it to quiescent when the batch closes;
//! * a writer never frees a replaced node — it *retires* the slot,
//!   stamped with the epoch current at retirement;
//! * a retired slot is *reclaimed* (returned to the arena's free list)
//!   only once every pinned epoch is newer than the stamp, i.e. no
//!   walker that could still hold the old index remains in flight.
//!
//! The domain is deliberately small and `unsafe`-free: the indexes own
//! their retire/free lists (slots are plain `u32`s, not pointers), and
//! the domain only answers "which epochs are still visible?". Two
//! gauges — [`retired`](EpochDomain::retired) and
//! [`reclaimed`](EpochDomain::reclaimed) — feed the `widx_epoch_*`
//! metrics the observability layer exports, so a stress run can assert
//! the retired count returns to ~0 at quiescence.
//!
//! # Example
//!
//! ```
//! use widx_db::epoch::EpochDomain;
//!
//! let domain = EpochDomain::new();
//! let worker = domain.register();
//! let pin = worker.pin();            // batch opens
//! let stamp = domain.current();      // writer retires a slot at `stamp`
//! assert!(!domain.is_safe(stamp));   // the pin predates the advance
//! drop(pin);                         // batch closes
//! domain.advance();
//! assert!(domain.is_safe(stamp));    // nobody can still see the slot
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A cell is quiescent (not inside any batch) at this sentinel.
const QUIESCENT: u64 = u64::MAX;

/// One participant's published epoch: the global epoch it pinned at
/// batch open, or [`QUIESCENT`]. Padded to its own cache line so pin
/// and unpin (one store each, every batch) never false-share.
#[derive(Debug)]
#[repr(align(128))]
struct EpochCell {
    active: AtomicU64,
}

/// A registered participant — one per shard worker (or per stress-test
/// actor). Pin at batch open, drop the [`EpochPin`] at batch close.
#[derive(Clone, Debug)]
pub struct EpochHandle {
    domain: Arc<EpochDomain>,
    cell: Arc<EpochCell>,
}

impl EpochHandle {
    /// Publishes the current global epoch as this participant's active
    /// epoch until the returned pin is dropped. Slots retired at or
    /// after this epoch will not be reclaimed while the pin lives.
    #[must_use]
    pub fn pin(&self) -> EpochPin<'_> {
        // SeqCst keeps the pin publication and the writer's later
        // `min_active` scan in one total order: either the scan sees
        // this pin, or the pin sees an epoch >= the writer's stamp.
        self.cell
            .active
            .store(self.domain.global.load(Ordering::SeqCst), Ordering::SeqCst);
        EpochPin { cell: &self.cell }
    }

    /// The domain this handle participates in.
    #[must_use]
    pub fn domain(&self) -> &Arc<EpochDomain> {
        &self.domain
    }
}

/// RAII pin: while alive, the participant's cell publishes its epoch;
/// dropping it returns the cell to quiescence.
#[derive(Debug)]
pub struct EpochPin<'h> {
    cell: &'h EpochCell,
}

impl Drop for EpochPin<'_> {
    fn drop(&mut self) {
        self.cell.active.store(QUIESCENT, Ordering::SeqCst);
    }
}

/// The shared epoch clock plus the registry of participant cells and
/// the two reclamation gauges.
#[derive(Debug)]
pub struct EpochDomain {
    /// The global epoch; advanced after every write batch.
    global: AtomicU64,
    /// Registered participant cells (registration is rare: one per
    /// worker thread at service start).
    cells: Mutex<Vec<Arc<EpochCell>>>,
    /// Slots currently retired and awaiting reclamation, across every
    /// index attached to this domain (`widx_epoch_retired`).
    retired: AtomicU64,
    /// Slots returned to free lists over the domain's lifetime
    /// (`widx_epoch_reclaimed`).
    reclaimed: AtomicU64,
}

impl EpochDomain {
    /// A fresh domain at epoch 1 with no participants.
    #[must_use]
    pub fn new() -> Arc<EpochDomain> {
        Arc::new(EpochDomain {
            global: AtomicU64::new(1),
            cells: Mutex::new(Vec::new()),
            retired: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
        })
    }

    /// Registers a new participant and returns its handle.
    #[must_use]
    pub fn register(self: &Arc<Self>) -> EpochHandle {
        let cell = Arc::new(EpochCell {
            active: AtomicU64::new(QUIESCENT),
        });
        self.cells
            .lock()
            .expect("epoch registry")
            .push(cell.clone());
        EpochHandle {
            domain: Arc::clone(self),
            cell,
        }
    }

    /// The current global epoch — the stamp a writer puts on slots it
    /// retires now.
    #[must_use]
    pub fn current(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// Advances the global epoch (call after a write batch) and returns
    /// the new value. Later pins publish the new epoch, so stamps taken
    /// before the advance become reclaimable once current pins drop.
    pub fn advance(&self) -> u64 {
        self.global.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// The oldest epoch any participant still has pinned, or the
    /// current global epoch when every cell is quiescent.
    #[must_use]
    pub fn min_active(&self) -> u64 {
        let cells = self.cells.lock().expect("epoch registry");
        cells
            .iter()
            .map(|c| c.active.load(Ordering::SeqCst))
            .min()
            .unwrap_or(QUIESCENT)
            .min(self.global.load(Ordering::SeqCst))
    }

    /// Whether a slot retired at `stamp` can be reclaimed: no pinned
    /// epoch is old enough to still reach it.
    #[must_use]
    pub fn is_safe(&self, stamp: u64) -> bool {
        stamp < self.min_active()
    }

    /// Records `n` newly retired slots (called by the indexes).
    pub fn note_retired(&self, n: u64) {
        self.retired.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` slots moved from retired to free (called by the
    /// indexes at reclaim time).
    pub fn note_reclaimed(&self, n: u64) {
        self.retired.fetch_sub(n, Ordering::Relaxed);
        self.reclaimed.fetch_add(n, Ordering::Relaxed);
    }

    /// Slots currently retired and not yet reclaimed, domain-wide —
    /// the `widx_epoch_retired` gauge. Returns to ~0 at quiescence
    /// (after `advance` + per-index `reclaim` with no pins held).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// Total slots ever reclaimed, domain-wide — the
    /// `widx_epoch_reclaimed` counter.
    #[must_use]
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::Relaxed)
    }
}

/// A retire list owned by one arena: `(slot, stamp)` pairs awaiting
/// reclamation, plus the free list reclaimed slots return to. The
/// indexes embed one per node arena (hash overflow pool, B+-tree
/// leaves, each inner level).
#[derive(Clone, Debug, Default)]
pub(crate) struct RetireList {
    /// Retired slots, oldest first (stamps are non-decreasing because
    /// retirement takes the then-current epoch).
    retired: Vec<(u32, u64)>,
    /// Slots free for reuse.
    free: Vec<u32>,
}

impl RetireList {
    /// Retires `slot` at `stamp` and bumps the domain gauge.
    pub(crate) fn retire(&mut self, slot: u32, stamp: u64, domain: &EpochDomain) {
        self.retired.push((slot, stamp));
        domain.note_retired(1);
    }

    /// Moves every retired slot whose stamp the domain declares safe to
    /// the free list; returns how many moved.
    pub(crate) fn reclaim(&mut self, domain: &EpochDomain) -> usize {
        let safe = domain.min_active();
        // Stamps are non-decreasing, so the reclaimable slots are a
        // prefix.
        let take = self.retired.partition_point(|(_, stamp)| *stamp < safe);
        if take == 0 {
            return 0;
        }
        self.free.extend(self.retired.drain(..take).map(|(s, _)| s));
        domain.note_reclaimed(take as u64);
        take
    }

    /// Pops a reusable slot, if any.
    pub(crate) fn alloc(&mut self) -> Option<u32> {
        self.free.pop()
    }

    /// Slots awaiting reclamation in this arena.
    pub(crate) fn retired_len(&self) -> usize {
        self.retired.len()
    }

    /// Slots ready for reuse in this arena.
    pub(crate) fn free_len(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_hold_back_reclamation() {
        let d = EpochDomain::new();
        let w = d.register();
        let pin = w.pin();
        let stamp = d.current();
        d.advance();
        assert!(!d.is_safe(stamp), "pin predates the stamp's advance");
        drop(pin);
        assert!(d.is_safe(stamp), "quiescent cells do not hold epochs");
    }

    #[test]
    fn quiescent_domain_reclaims_up_to_current() {
        let d = EpochDomain::new();
        let _w = d.register();
        let stamp = d.current();
        assert!(!d.is_safe(stamp), "current epoch is never safe");
        d.advance();
        assert!(d.is_safe(stamp));
    }

    #[test]
    fn min_active_is_oldest_pin() {
        let d = EpochDomain::new();
        let a = d.register();
        let b = d.register();
        let pin_a = a.pin(); // epoch 1
        d.advance();
        let _pin_b = b.pin(); // epoch 2
        assert_eq!(d.min_active(), 1);
        drop(pin_a);
        assert_eq!(d.min_active(), 2);
    }

    #[test]
    fn retire_list_reclaims_prefix_and_reuses_slots() {
        let d = EpochDomain::new();
        let w = d.register();
        let mut list = RetireList::default();
        list.retire(7, d.current(), &d);
        d.advance();
        let pin = w.pin();
        list.retire(9, d.current(), &d);
        assert_eq!(d.retired(), 2);
        // The pin (epoch 2) blocks slot 9 but not slot 7 (stamp 1).
        assert_eq!(list.reclaim(&d), 1);
        assert_eq!(list.alloc(), Some(7));
        assert_eq!((d.retired(), d.reclaimed()), (1, 1));
        drop(pin);
        d.advance();
        assert_eq!(list.reclaim(&d), 1);
        assert_eq!(list.alloc(), Some(9));
        assert_eq!(list.alloc(), None);
        assert_eq!((d.retired(), d.reclaimed()), (0, 2));
    }

    #[test]
    fn gauges_reach_zero_at_quiescence() {
        let d = EpochDomain::new();
        let workers: Vec<EpochHandle> = (0..4).map(|_| d.register()).collect();
        let mut list = RetireList::default();
        for round in 0..10u64 {
            let pins: Vec<EpochPin> = workers.iter().map(EpochHandle::pin).collect();
            list.retire(round as u32, d.current(), &d);
            drop(pins);
            d.advance();
            list.reclaim(&d);
        }
        assert_eq!(d.retired(), 0, "all retirements reclaimed at quiescence");
        assert_eq!(d.reclaimed(), 10);
    }

    #[test]
    fn handles_are_cloneable_and_share_the_cell() {
        let d = EpochDomain::new();
        let w = d.register();
        let w2 = w.clone();
        let pin = w.pin();
        let stamp = d.current();
        d.advance();
        assert!(!d.is_safe(stamp));
        drop(pin);
        let _pin2 = w2.pin();
        assert_eq!(d.min_active(), d.current());
    }
}
