//! # widx-db — in-memory column-store substrate
//!
//! The paper evaluates Widx on MonetDB, an in-memory column-oriented
//! DBMS. This crate is the reproduction's stand-in engine: typed columns
//! and tables, the bucket-chained hash index of Section 2.2 (header node
//! inline in the bucket array, optional key indirection), a family of
//! hash functions expressible in the Widx ISA, and the physical operators
//! the paper's Figure 2a breaks query time into — scan, hash join
//! (the "no partitioning" algorithm), sort-merge join, sort, and
//! aggregation — under a small instrumented executor.
//!
//! Everything here is plain software running on the host; the simulation
//! layers (`widx-sim`, `widx-core`) reuse these structures by
//! materializing them into simulated memory (see `widx-workloads`).
//!
//! # Example: build an index and probe it
//!
//! ```
//! use widx_db::hash::HashRecipe;
//! use widx_db::index::HashIndex;
//!
//! let pairs = (0..1000u64).map(|k| (k * 7, k));
//! let index = HashIndex::build(HashRecipe::robust64(), 1024, pairs);
//! assert_eq!(index.lookup(7 * 41), Some(41));
//! assert_eq!(index.lookup(3), None);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod column;
pub mod epoch;
pub mod exec;
pub mod hash;
pub mod index;
pub mod ops;
pub mod table;
