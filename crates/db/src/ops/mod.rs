//! Physical operators: scan, hash join ("no partitioning"), sort-merge
//! join, sort, and aggregation — the operator classes of the paper's
//! Figure 2a breakdown.

mod aggregate;
mod hash_join;
mod scan;
mod sort;
mod sort_merge_join;

pub use aggregate::{group_sum, GroupSum};
pub use hash_join::{hash_join, HashJoinResult};
pub use scan::{scan_filter, ScanResult};
pub use sort::{sort_column, SortResult};
pub use sort_merge_join::{sort_merge_join, SortMergeResult};

/// A matched pair of row ids `(build_row, probe_row)` produced by a join.
pub type JoinPair = (u32, u32);
