//! Sort-merge join — the classic competitor the paper discusses in
//! Section 7 ("prior work has shown that hash join clearly outperforms
//! the sort-merge join"); implemented as a comparison baseline.

use std::time::Instant;

use crate::column::Column;

use super::JoinPair;

/// Result and instrumentation of a sort-merge join.
#[derive(Clone, Debug)]
pub struct SortMergeResult {
    /// Matched `(build_row, probe_row)` pairs (`build` = first input).
    pub pairs: Vec<JoinPair>,
    /// Wall time of the sort phase, in nanoseconds.
    pub sort_nanos: u64,
    /// Wall time of the merge phase, in nanoseconds.
    pub merge_nanos: u64,
}

/// Joins two columns on equality by sorting row-id/key pairs and merging.
pub fn sort_merge_join(left: &Column, right: &Column) -> SortMergeResult {
    let t0 = Instant::now();
    let mut l: Vec<(u64, u32)> = left.iter().zip(0u32..).collect();
    let mut r: Vec<(u64, u32)> = right.iter().zip(0u32..).collect();
    l.sort_unstable();
    r.sort_unstable();
    let sort_nanos = t0.elapsed().as_nanos() as u64;

    let t1 = Instant::now();
    let mut pairs: Vec<JoinPair> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() && j < r.len() {
        match l[i].0.cmp(&r[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let key = l[i].0;
                let i_end = l[i..].iter().take_while(|(k, _)| *k == key).count() + i;
                let j_end = r[j..].iter().take_while(|(k, _)| *k == key).count() + j;
                for (_, lv) in &l[i..i_end] {
                    for (_, rv) in &r[j..j_end] {
                        pairs.push((*lv, *rv));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    let merge_nanos = t1.elapsed().as_nanos() as u64;

    SortMergeResult {
        pairs,
        sort_nanos,
        merge_nanos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnType;
    use crate::hash::HashRecipe;
    use crate::ops::hash_join;

    fn col(data: Vec<u64>) -> Column {
        Column::new("k", ColumnType::U64, data)
    }

    #[test]
    fn agrees_with_hash_join() {
        let a = col(vec![9, 1, 4, 4, 7, 2]);
        let b = col(vec![4, 9, 9, 3]);
        let mut sm = sort_merge_join(&a, &b).pairs;
        let mut hj = hash_join(&a, &b, HashRecipe::robust64(), 8).pairs;
        sm.sort_unstable();
        hj.sort_unstable();
        assert_eq!(sm, hj);
    }

    #[test]
    fn empty_inputs() {
        assert!(sort_merge_join(&col(vec![]), &col(vec![1]))
            .pairs
            .is_empty());
        assert!(sort_merge_join(&col(vec![1]), &col(vec![]))
            .pairs
            .is_empty());
    }

    #[test]
    fn duplicates_cross_product() {
        let a = col(vec![5, 5]);
        let b = col(vec![5, 5, 5]);
        assert_eq!(sort_merge_join(&a, &b).pairs.len(), 6);
    }
}
