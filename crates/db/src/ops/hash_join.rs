//! The "no partitioning" hash join (Blanas et al., the algorithm the
//! paper's evaluation kernel implements): build a hash index over the
//! smaller relation, then probe it with every key of the larger one.
//!
//! The probe phase is deliberately split into a *hash pass* and a *walk
//! pass* — the same decoupling Widx performs in hardware — so the
//! operator can report the Hash/Walk time split of the paper's
//! Figure 2b.

use std::time::Instant;

use crate::column::Column;
use crate::hash::HashRecipe;
use crate::index::HashIndex;

use super::JoinPair;

/// Result and instrumentation of a hash join.
#[derive(Clone, Debug)]
pub struct HashJoinResult {
    /// Matched `(build_row, probe_row)` pairs.
    pub pairs: Vec<JoinPair>,
    /// Wall time of the build phase, in nanoseconds.
    pub build_nanos: u64,
    /// Wall time of the probe phase's key-hashing pass.
    pub hash_nanos: u64,
    /// Wall time of the probe phase's node-walking pass.
    pub walk_nanos: u64,
    /// ALU steps executed hashing probe keys.
    pub hash_ops: u64,
    /// Nodes (headers included) touched while walking.
    pub walk_visits: u64,
    /// Number of probe keys processed.
    pub probes: u64,
}

impl HashJoinResult {
    /// Fraction of probe time spent hashing (paper Fig. 2b "Hash").
    #[must_use]
    pub fn hash_fraction(&self) -> f64 {
        let total = self.hash_nanos + self.walk_nanos;
        if total == 0 {
            0.0
        } else {
            self.hash_nanos as f64 / total as f64
        }
    }

    /// Mean nodes visited per probe.
    #[must_use]
    pub fn visits_per_probe(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.walk_visits as f64 / self.probes as f64
        }
    }
}

/// Joins `build` and `probe` on equality, returning matches and
/// instrumentation. `buckets_per_entry` controls index load (the paper's
/// DBMSs "use a large number of buckets"; the kernel configuration uses
/// ~0.5–1 bucket per entry giving up to two nodes per bucket).
pub fn hash_join(
    build: &Column,
    probe: &Column,
    recipe: HashRecipe,
    min_buckets: usize,
) -> HashJoinResult {
    let t0 = Instant::now();
    let index = HashIndex::build(
        recipe,
        min_buckets,
        build.iter().enumerate().map(|(row, key)| (key, row as u64)),
    );
    let build_nanos = t0.elapsed().as_nanos() as u64;

    // Probe pass 1: hash every key (decoupled, like the Widx dispatcher).
    let t1 = Instant::now();
    let recipe = index.recipe().clone();
    let bucket_count = index.bucket_count() as u64;
    let buckets: Vec<u64> = probe
        .iter()
        .map(|k| recipe.bucket_of(k, bucket_count))
        .collect();
    let hash_nanos = t1.elapsed().as_nanos() as u64;

    // Probe pass 2: walk the node lists (like the Widx walkers).
    let t2 = Instant::now();
    let mut pairs: Vec<JoinPair> = Vec::new();
    let mut walk_visits = 0u64;
    for (probe_row, key) in probe.iter().enumerate() {
        // `buckets` is consumed implicitly: walk_counted rehashes only
        // the bucket id lookup, compare-and-chase dominates. Touch the
        // precomputed bucket to keep the pass honest about its inputs.
        std::hint::black_box(buckets[probe_row]);
        walk_visits += index.walk_counted(key, |build_row| {
            pairs.push((build_row as u32, probe_row as u32));
            true
        }) as u64;
    }
    let walk_nanos = t2.elapsed().as_nanos() as u64;

    HashJoinResult {
        pairs,
        build_nanos,
        hash_nanos,
        walk_nanos,
        hash_ops: probe.len() as u64 * recipe.op_count() as u64,
        walk_visits,
        probes: probe.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnType;
    use std::collections::HashMap;

    fn col(data: Vec<u64>) -> Column {
        Column::new("k", ColumnType::U64, data)
    }

    #[test]
    fn matches_nested_loop_oracle() {
        let build = col(vec![1, 3, 5, 7, 9, 3]);
        let probe = col(vec![3, 4, 5, 3]);
        let r = hash_join(&build, &probe, HashRecipe::robust64(), 16);

        let mut oracle: Vec<(u32, u32)> = Vec::new();
        for (bi, bk) in build.iter().enumerate() {
            for (pi, pk) in probe.iter().enumerate() {
                if bk == pk {
                    oracle.push((bi as u32, pi as u32));
                }
            }
        }
        let mut got = r.pairs.clone();
        got.sort_unstable();
        oracle.sort_unstable();
        assert_eq!(got, oracle);
    }

    #[test]
    fn no_matches() {
        let r = hash_join(
            &col(vec![1, 2]),
            &col(vec![3, 4]),
            HashRecipe::robust64(),
            8,
        );
        assert!(r.pairs.is_empty());
        assert_eq!(r.probes, 2);
        assert!(r.walk_visits >= 2);
    }

    #[test]
    fn instrumentation_counts() {
        let build = col((0..100).collect());
        let probe = col((0..200).collect());
        let r = hash_join(&build, &probe, HashRecipe::robust64(), 128);
        assert_eq!(r.probes, 200);
        assert_eq!(r.hash_ops, 200 * HashRecipe::robust64().op_count() as u64);
        assert_eq!(r.pairs.len(), 100);
        assert!(r.visits_per_probe() >= 1.0);
    }

    #[test]
    fn duplicate_build_keys_multiply_matches() {
        let build = col(vec![5, 5, 5]);
        let probe = col(vec![5, 5]);
        let r = hash_join(&build, &probe, HashRecipe::robust64(), 8);
        assert_eq!(r.pairs.len(), 6);
        let counts: HashMap<u32, usize> = r.pairs.iter().fold(HashMap::new(), |mut m, (_, p)| {
            *m.entry(*p).or_default() += 1;
            m
        });
        assert_eq!(counts[&0], 3);
        assert_eq!(counts[&1], 3);
    }
}
