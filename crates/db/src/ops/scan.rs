//! The scan operator: select row ids satisfying a predicate.

use crate::column::Column;

/// Result of a predicate scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanResult {
    /// Row ids whose values satisfied the predicate, in row order.
    pub rows: Vec<u32>,
    /// Rows examined (= column length).
    pub examined: usize,
}

impl ScanResult {
    /// Selectivity of the scan (`matched / examined`, 0 for empty input).
    #[must_use]
    pub fn selectivity(&self) -> f64 {
        if self.examined == 0 {
            0.0
        } else {
            self.rows.len() as f64 / self.examined as f64
        }
    }
}

/// Scans `column`, returning the rows for which `pred` holds.
pub fn scan_filter(column: &Column, pred: impl Fn(u64) -> bool) -> ScanResult {
    let mut rows = Vec::new();
    for (i, v) in column.iter().enumerate() {
        if pred(v) {
            rows.push(i as u32);
        }
    }
    ScanResult {
        rows,
        examined: column.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnType;

    #[test]
    fn filters_by_predicate() {
        let c = Column::new("v", ColumnType::U64, (0..10).collect());
        let r = scan_filter(&c, |v| v % 3 == 0);
        assert_eq!(r.rows, vec![0, 3, 6, 9]);
        assert_eq!(r.examined, 10);
        assert!((r.selectivity() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_column() {
        let c = Column::new("v", ColumnType::U64, vec![]);
        let r = scan_filter(&c, |_| true);
        assert!(r.rows.is_empty());
        assert_eq!(r.selectivity(), 0.0);
    }

    #[test]
    fn all_and_none() {
        let c = Column::new("v", ColumnType::U64, vec![1, 2, 3]);
        assert_eq!(scan_filter(&c, |_| true).rows.len(), 3);
        assert_eq!(scan_filter(&c, |_| false).rows.len(), 0);
    }
}
