//! The sort operator: produce an ordering permutation over a column.

use std::time::Instant;

use crate::column::Column;

/// Result of sorting a column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SortResult {
    /// Row ids in ascending key order.
    pub permutation: Vec<u32>,
    /// Wall time in nanoseconds.
    pub nanos: u64,
}

/// Sorts `column` ascending, returning the row permutation.
pub fn sort_column(column: &Column) -> SortResult {
    let t0 = Instant::now();
    let mut perm: Vec<u32> = (0..column.len() as u32).collect();
    perm.sort_by_key(|row| column.get(*row as usize));
    SortResult {
        permutation: perm,
        nanos: t0.elapsed().as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnType;

    #[test]
    fn permutation_orders_values() {
        let c = Column::new("v", ColumnType::U64, vec![30, 10, 20]);
        let r = sort_column(&c);
        assert_eq!(r.permutation, vec![1, 2, 0]);
    }

    #[test]
    fn stable_for_duplicates() {
        let c = Column::new("v", ColumnType::U64, vec![5, 5, 1]);
        let r = sort_column(&c);
        assert_eq!(r.permutation, vec![2, 0, 1]);
    }

    #[test]
    fn empty() {
        let c = Column::new("v", ColumnType::U64, vec![]);
        assert!(sort_column(&c).permutation.is_empty());
    }
}
