//! Group-by aggregation — part of the paper's "Other" operator class
//! ("aggregation operators (e.g., sum, max)").

use std::collections::HashMap;
use std::time::Instant;

use crate::column::Column;

/// Result of a grouped sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSum {
    /// `(group key, sum of values)` in ascending group order.
    pub groups: Vec<(u64, u64)>,
    /// Wall time in nanoseconds.
    pub nanos: u64,
}

/// Computes `SELECT key, SUM(value) GROUP BY key` over two parallel
/// columns.
///
/// # Panics
///
/// Panics if the columns have different lengths.
pub fn group_sum(keys: &Column, values: &Column) -> GroupSum {
    assert_eq!(keys.len(), values.len(), "group_sum inputs must align");
    let t0 = Instant::now();
    let mut map: HashMap<u64, u64> = HashMap::new();
    for (k, v) in keys.iter().zip(values.iter()) {
        *map.entry(k).or_default() += v;
    }
    let mut groups: Vec<(u64, u64)> = map.into_iter().collect();
    groups.sort_unstable();
    GroupSum {
        groups,
        nanos: t0.elapsed().as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnType;

    fn col(data: Vec<u64>) -> Column {
        Column::new("c", ColumnType::U64, data)
    }

    #[test]
    fn sums_per_group() {
        let g = group_sum(&col(vec![1, 2, 1, 2, 3]), &col(vec![10, 20, 30, 40, 50]));
        assert_eq!(g.groups, vec![(1, 40), (2, 60), (3, 50)]);
    }

    #[test]
    fn empty() {
        let g = group_sum(&col(vec![]), &col(vec![]));
        assert!(g.groups.is_empty());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = group_sum(&col(vec![1]), &col(vec![]));
    }
}
