//! Hash functions as *recipes* — sequences of ALU steps.
//!
//! The paper stresses that real DBMS hash functions are "more robust than
//! what is shown [in Listing 1], employing a sequence of arithmetic
//! operations with multiple constants", and that key hashing is
//! ALU-intensive (up to 68 % of lookup time). Crucially, the Widx ISA of
//! Table 1 has **no multiply** — its fused `ADD-SHF`/`AND-SHF`/`XOR-SHF`
//! instructions exist precisely to build robust mixers out of shift +
//! logic steps.
//!
//! To keep one source of truth between (a) the software engine, (b) the
//! Widx program generator, and (c) the µop trace generator for the
//! baseline cores, a hash function is represented as a [`HashRecipe`]:
//! a list of [`HashStep`]s, each trivially mappable to 1–2 Widx
//! instructions. [`HashRecipe::eval`] interprets the steps in software;
//! the other layers compile them.

use std::fmt;

/// One ALU step of a hash recipe, operating on a 64-bit running value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HashStep {
    /// `x ^= constant`
    XorConst(u64),
    /// `x = x.wrapping_add(constant)`
    AddConst(u64),
    /// `x &= constant`
    AndConst(u64),
    /// `x ^= x >> amount` (maps to one fused `XOR-SHF`)
    XorShr(u8),
    /// `x ^= x << amount` (maps to one fused `XOR-SHF`)
    XorShl(u8),
    /// `x = x.wrapping_add(x << amount)` (maps to one fused `ADD-SHF`)
    AddShl(u8),
    /// `x = x.wrapping_add(x >> amount)` (maps to one fused `ADD-SHF`)
    AddShr(u8),
}

impl HashStep {
    /// Applies the step to `x`.
    #[must_use]
    pub fn apply(self, x: u64) -> u64 {
        match self {
            HashStep::XorConst(c) => x ^ c,
            HashStep::AddConst(c) => x.wrapping_add(c),
            HashStep::AndConst(c) => x & c,
            HashStep::XorShr(a) => x ^ (x >> a),
            HashStep::XorShl(a) => x ^ (x << a),
            HashStep::AddShl(a) => x.wrapping_add(x << a),
            HashStep::AddShr(a) => x.wrapping_add(x >> a),
        }
    }

    /// Number of Widx instructions the step compiles to (constants live
    /// in pre-loaded registers, so every step is a single instruction).
    #[must_use]
    pub fn widx_ops(self) -> usize {
        1
    }
}

impl fmt::Display for HashStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HashStep::XorConst(c) => write!(f, "x ^= {c:#x}"),
            HashStep::AddConst(c) => write!(f, "x += {c:#x}"),
            HashStep::AndConst(c) => write!(f, "x &= {c:#x}"),
            HashStep::XorShr(a) => write!(f, "x ^= x >> {a}"),
            HashStep::XorShl(a) => write!(f, "x ^= x << {a}"),
            HashStep::AddShl(a) => write!(f, "x += x << {a}"),
            HashStep::AddShr(a) => write!(f, "x += x >> {a}"),
        }
    }
}

/// A named hash function expressed as a sequence of [`HashStep`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashRecipe {
    name: &'static str,
    steps: Vec<HashStep>,
}

impl HashRecipe {
    /// Builds a recipe from raw steps.
    #[must_use]
    pub fn new(name: &'static str, steps: Vec<HashStep>) -> HashRecipe {
        HashRecipe { name, steps }
    }

    /// The trivial masked-XOR hash of the paper's Listing 1:
    /// `HASH(X) = ((X) & MASK) ^ HPRIME`. Used by the optimized hash-join
    /// kernel, which the paper notes "implements an oversimplified hash
    /// function".
    #[must_use]
    pub fn trivial() -> HashRecipe {
        HashRecipe::new(
            "trivial",
            vec![HashStep::AndConst(0xFFFF_FFFF), HashStep::XorConst(0xB1C9)],
        )
    }

    /// A robust 64-bit finalizer-style mixer (xorshift chains in the
    /// spirit of SplitMix/Murmur finalizers, but multiply-free so it maps
    /// 1:1 onto the fused Widx instructions). This is the "robust hashing
    /// function ... to distribute the keys uniformly" the paper ascribes
    /// to production DBMS indexes.
    #[must_use]
    pub fn robust64() -> HashRecipe {
        HashRecipe::new(
            "robust64",
            vec![
                HashStep::XorShr(33),
                HashStep::AddConst(0xff51_afd7_ed55_8ccd),
                HashStep::XorShl(21),
                HashStep::AddShl(3),
                HashStep::XorShr(29),
                HashStep::AddConst(0xc4ce_b9fe_1a85_ec53),
                HashStep::XorShl(17),
                HashStep::AddShr(7),
                HashStep::XorShr(32),
            ],
        )
    }

    /// A computation-heavy hash for wide/double-integer keys, modelled on
    /// the paper's TPC-H query 20 discussion ("a large index with double
    /// integers that require computationally intensive hashing"): two
    /// chained robust rounds.
    #[must_use]
    pub fn heavy128() -> HashRecipe {
        let mut steps = HashRecipe::robust64().steps;
        steps.extend_from_slice(&[
            HashStep::AddConst(0x9e37_79b9_7f4a_7c15),
            HashStep::XorShr(30),
            HashStep::AddShl(13),
            HashStep::XorShl(27),
            HashStep::AddShr(11),
            HashStep::XorShr(31),
            HashStep::AddConst(0xbf58_476d_1ce4_e5b9),
            HashStep::XorShl(19),
            HashStep::AddShl(5),
            HashStep::XorShr(28),
        ]);
        HashRecipe::new("heavy128", steps)
    }

    /// The recipe's name (for reports).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The steps in evaluation order.
    #[must_use]
    pub fn steps(&self) -> &[HashStep] {
        &self.steps
    }

    /// Number of ALU steps (= Widx instructions = baseline ALU µops).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.steps.iter().map(|s| s.widx_ops()).sum()
    }

    /// Evaluates the hash of `key` in software.
    #[must_use]
    pub fn eval(&self, key: u64) -> u64 {
        self.steps.iter().fold(key, |x, s| s.apply(x))
    }

    /// Hashes `key` and reduces it to a bucket index below
    /// `bucket_count` (which must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` is not a power of two.
    #[must_use]
    pub fn bucket_of(&self, key: u64, bucket_count: u64) -> u64 {
        assert!(
            bucket_count.is_power_of_two(),
            "bucket count must be a power of two"
        );
        self.eval(key) & (bucket_count - 1)
    }

    /// Hashes `key` and reduces it to a shard index below `shard_count`.
    ///
    /// The recipe's hash is remixed with a Fibonacci multiply and the
    /// *upper* 32 bits of the product select the shard, while
    /// [`bucket_of`](HashRecipe::bucket_of) masks the hash's raw lower
    /// bits — so shard and bucket selection stay effectively
    /// independent even for recipes whose output fits in 32 bits (e.g.
    /// [`trivial`](HashRecipe::trivial), whose raw upper word is always
    /// zero). The multiply is fine here: shard routing runs on the
    /// serving host, not on the multiply-free Widx units, so the ISA
    /// constraint on recipe *steps* does not apply. Any shard count ≥ 1
    /// is accepted (shards are thread-level, not layout-level, so there
    /// is no power-of-two requirement).
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    #[must_use]
    pub fn shard_of(&self, key: u64, shard_count: u64) -> u64 {
        assert!(shard_count > 0, "need at least one shard");
        let mixed = self.eval(key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed >> 32) % shard_count
    }
}

impl fmt::Display for HashRecipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} ops)", self.name, self.op_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_matches_listing_1() {
        let h = HashRecipe::trivial();
        assert_eq!(h.eval(0x1234_5678_9abc_def0), (0x9abc_def0u64) ^ 0xB1C9);
        assert_eq!(h.op_count(), 2);
    }

    #[test]
    fn recipes_are_deterministic() {
        let h = HashRecipe::robust64();
        assert_eq!(h.eval(42), h.eval(42));
        assert_ne!(h.eval(42), h.eval(43));
    }

    #[test]
    fn robust_spreads_sequential_keys() {
        // Sequential keys must spread across buckets — the whole point of
        // a robust mixer. Require every one of 256 buckets hit and no
        // bucket to exceed 3x the mean for 64k sequential keys.
        let h = HashRecipe::robust64();
        let buckets = 256u64;
        let mut counts = vec![0u32; buckets as usize];
        let n = 65_536u64;
        for k in 0..n {
            counts[h.bucket_of(k, buckets) as usize] += 1;
        }
        let mean = (n / buckets) as u32;
        assert!(counts.iter().all(|c| *c > 0), "empty bucket");
        assert!(
            counts.iter().all(|c| *c < mean * 3),
            "overloaded bucket: max {}",
            counts.iter().max().unwrap()
        );
    }

    #[test]
    fn trivial_does_not_spread_high_bits() {
        // The trivial hash keeps low-bit structure: keys differing only
        // above bit 32 collide. This is what makes it "oversimplified".
        let h = HashRecipe::trivial();
        assert_eq!(h.bucket_of(5, 256), h.bucket_of(5 | (1 << 40), 256));
    }

    #[test]
    fn heavy_has_more_ops_than_robust() {
        assert!(HashRecipe::heavy128().op_count() > HashRecipe::robust64().op_count());
        assert!(HashRecipe::robust64().op_count() > HashRecipe::trivial().op_count());
    }

    #[test]
    fn avalanche_single_bit_flip() {
        // Flipping one input bit should flip a substantial number of
        // output bits on average (weak avalanche test).
        let h = HashRecipe::robust64();
        let mut total_flips = 0u32;
        let samples = 200u64;
        for k in 0..samples {
            let a = h.eval(k * 0x9e37_79b9);
            let b = h.eval((k * 0x9e37_79b9) ^ 1);
            total_flips += (a ^ b).count_ones();
        }
        let avg = f64::from(total_flips) / samples as f64;
        assert!(avg > 20.0, "average bit flips {avg} too low");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bucket_of_requires_power_of_two() {
        let _ = HashRecipe::trivial().bucket_of(1, 100);
    }

    #[test]
    fn shard_of_spreads_and_stays_in_range() {
        let h = HashRecipe::robust64();
        for shards in [1u64, 2, 3, 4, 7, 16] {
            let mut counts = vec![0u32; shards as usize];
            for k in 0..8192u64 {
                counts[h.shard_of(k, shards) as usize] += 1;
            }
            let mean = 8192 / shards as u32;
            assert!(
                counts.iter().all(|c| *c > mean / 2 && *c < mean * 2),
                "imbalanced shards for count {shards}: {counts:?}"
            );
        }
    }

    #[test]
    fn shard_of_independent_of_bucket_of() {
        // Keys co-located in one shard must still spread over buckets:
        // within any shard, no single bucket of 64 captures more than a
        // small multiple of its fair share.
        let h = HashRecipe::robust64();
        let shards = 4u64;
        let buckets = 64u64;
        let mut per_bucket = vec![vec![0u32; buckets as usize]; shards as usize];
        let n = 32_768u64;
        for k in 0..n {
            let s = h.shard_of(k, shards) as usize;
            per_bucket[s][h.bucket_of(k, buckets) as usize] += 1;
        }
        let fair = (n / shards / buckets) as u32;
        for (s, counts) in per_bucket.iter().enumerate() {
            assert!(counts.iter().all(|c| *c > 0), "empty bucket in shard {s}");
            assert!(
                counts.iter().all(|c| *c < fair * 3),
                "bucket aliasing in shard {s}: max {}",
                counts.iter().max().unwrap()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_of_rejects_zero() {
        let _ = HashRecipe::robust64().shard_of(1, 0);
    }

    #[test]
    fn shard_of_spreads_32bit_recipes_too() {
        // `trivial` outputs fit in 32 bits (its upper hash word is
        // always zero): shard selection must still use all of them
        // rather than collapsing every key onto shard 0.
        let h = HashRecipe::trivial();
        for shards in [2u64, 3, 4, 8] {
            let mut counts = vec![0u32; shards as usize];
            for k in 0..8192u64 {
                counts[h.shard_of(k, shards) as usize] += 1;
            }
            let mean = 8192 / shards as u32;
            assert!(
                counts.iter().all(|c| *c > mean / 2 && *c < mean * 2),
                "trivial recipe imbalanced for {shards} shards: {counts:?}"
            );
        }
    }

    #[test]
    fn step_display() {
        assert_eq!(HashStep::XorShr(33).to_string(), "x ^= x >> 33");
        assert_eq!(HashStep::AddConst(0x10).to_string(), "x += 0x10");
    }
}
