//! A static B+-tree index — the paper's Section 7 notes Widx "can easily
//! be extended to accelerate other index structures, such as balanced
//! trees, which are also common in DBMSs"; this is the tree that
//! extension targets.
//!
//! The tree is built bottom-up over sorted entries into flat node
//! arrays, which both keeps lookups allocation-free and makes the
//! structure directly materializable into simulated memory.

/// Sentinel child index.
const NONE: u32 = u32::MAX;

/// An inner node: separator keys and child indices.
#[derive(Clone, Debug)]
struct Inner {
    /// `keys[i]` is the smallest key reachable through `children[i+1]`.
    keys: Vec<u64>,
    /// Child node indices (into the next level down).
    children: Vec<u32>,
}

/// A leaf node: sorted keys with payloads.
#[derive(Clone, Debug)]
struct Leaf {
    keys: Vec<u64>,
    payloads: Vec<u64>,
}

/// A static B+-tree over `u64` keys (duplicates allowed).
#[derive(Clone, Debug)]
pub struct BTreeIndex {
    fanout: usize,
    /// Levels of inner nodes, root level last. Empty when the tree is a
    /// single leaf.
    levels: Vec<Vec<Inner>>,
    leaves: Vec<Leaf>,
}

impl BTreeIndex {
    /// Builds a tree with the given `fanout` from `pairs` (sorted
    /// internally).
    ///
    /// # Panics
    ///
    /// Panics if `fanout < 2`.
    #[must_use]
    pub fn build(fanout: usize, pairs: impl IntoIterator<Item = (u64, u64)>) -> BTreeIndex {
        assert!(fanout >= 2, "fanout must be at least 2");
        let mut entries: Vec<(u64, u64)> = pairs.into_iter().collect();
        // Stable sort: duplicate keys keep their input payload order, so
        // a range-partitioned build (each shard sorting its own slice)
        // scans in exactly the same order as one tree over everything —
        // the property the ordered-serving oracle tests rely on.
        entries.sort_by_key(|(k, _)| *k);

        let mut leaves = Vec::new();
        for chunk in entries.chunks(fanout.max(1)) {
            leaves.push(Leaf {
                keys: chunk.iter().map(|(k, _)| *k).collect(),
                payloads: chunk.iter().map(|(_, p)| *p).collect(),
            });
        }
        if leaves.is_empty() {
            leaves.push(Leaf {
                keys: Vec::new(),
                payloads: Vec::new(),
            });
        }

        // Build inner levels bottom-up until one root remains.
        let mut levels: Vec<Vec<Inner>> = Vec::new();
        let mut level_first_keys: Vec<u64> = leaves
            .iter()
            .map(|l| l.keys.first().copied().unwrap_or(0))
            .collect();
        let mut width = leaves.len();
        while width > 1 {
            let mut inners = Vec::new();
            let mut next_first_keys = Vec::new();
            let mut child = 0u32;
            while (child as usize) < width {
                let end = (child as usize + fanout).min(width);
                let children: Vec<u32> = (child..end as u32).collect();
                let keys = children[1..]
                    .iter()
                    .map(|c| level_first_keys[*c as usize])
                    .collect();
                next_first_keys.push(level_first_keys[child as usize]);
                inners.push(Inner { keys, children });
                child = end as u32;
            }
            width = inners.len();
            levels.push(inners);
            level_first_keys = next_first_keys;
        }

        BTreeIndex {
            fanout,
            levels,
            leaves,
        }
    }

    /// The tree's fanout.
    #[must_use]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Tree height in node visits per lookup (1 for a lone leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        self.levels.len() + 1
    }

    /// Total entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.leaves.iter().map(|l| l.keys.len()).sum()
    }

    /// Whether the tree holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the first payload under `key`, also reporting the number
    /// of nodes visited (the traversal length Widx would walk).
    #[must_use]
    pub fn lookup_counted(&self, key: u64) -> (Option<u64>, usize) {
        let mut visits = 0usize;
        let mut idx = 0u32;
        // Descend inner levels from the root (last level) downwards.
        for level in self.levels.iter().rev() {
            visits += 1;
            let node = &level[idx as usize];
            let slot = node.keys.partition_point(|k| *k <= key);
            idx = node.children[slot];
            debug_assert_ne!(idx, NONE);
        }
        visits += 1;
        let leaf = &self.leaves[idx as usize];
        let slot = leaf.keys.partition_point(|k| *k < key);
        let hit = leaf
            .keys
            .get(slot)
            .filter(|k| **k == key)
            .map(|_| leaf.payloads[slot]);
        (hit, visits)
    }

    /// Looks up the first payload under `key`.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<u64> {
        self.lookup_counted(key).0
    }

    /// All `(key, payload)` entries with `lo <= key <= hi`, in key order
    /// (duplicates in build order), truncated to the first `limit` —
    /// the serial range-scan oracle the walker engines are checked
    /// against. Empty when `lo > hi` or `limit == 0`.
    #[must_use]
    pub fn range_scan(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if lo > hi || limit == 0 {
            return out;
        }
        // Descend toward the *leftmost* leaf that can hold a key >= lo:
        // strict comparison, unlike `lookup`'s `<=`, because duplicates
        // of one key may span several leaves.
        let mut idx = 0u32;
        for level in self.levels.iter().rev() {
            let node = &level[idx as usize];
            idx = node.children[node.keys.partition_point(|k| *k < lo)];
        }
        let mut leaf = idx as usize;
        let mut slot = self.leaves[leaf].keys.partition_point(|k| *k < lo);
        // Walk the leaf chain (leaves are stored in key order).
        loop {
            let l = &self.leaves[leaf];
            while slot < l.keys.len() {
                let key = l.keys[slot];
                if key > hi {
                    return out;
                }
                out.push((key, l.payloads[slot]));
                if out.len() == limit {
                    return out;
                }
                slot += 1;
            }
            leaf += 1;
            if leaf == self.leaves.len() {
                return out;
            }
            slot = 0;
        }
    }

    /// All `(key, payload)` entries with `lo <= key <= hi`, in
    /// *descending* key order (duplicates in reverse build order),
    /// truncated to the first `limit` — the serial oracle for
    /// `ORDER BY key DESC` scans and the reverse walker engines. Empty
    /// when `lo > hi` or `limit == 0`.
    #[must_use]
    pub fn range_scan_desc(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if lo > hi || limit == 0 {
            return out;
        }
        // Descend toward the *rightmost* leaf that can hold a key <= hi:
        // `<=` comparison (like `lookup`), because duplicates of `hi`
        // may span several leaves and the last one is wanted.
        let mut idx = 0u32;
        for level in self.levels.iter().rev() {
            let node = &level[idx as usize];
            idx = node.children[node.keys.partition_point(|k| *k <= hi)];
        }
        let mut leaf = idx as usize;
        // Everything below this slot is <= hi; walk it downward.
        let mut slot = self.leaves[leaf].keys.partition_point(|k| *k <= hi);
        // Walk the leaf chain backwards (leaves are stored in key order).
        loop {
            let l = &self.leaves[leaf];
            while slot > 0 {
                slot -= 1;
                let key = l.keys[slot];
                if key < lo {
                    return out;
                }
                out.push((key, l.payloads[slot]));
                if out.len() == limit {
                    return out;
                }
            }
            if leaf == 0 {
                return out;
            }
            leaf -= 1;
            slot = self.leaves[leaf].keys.len();
        }
    }

    /// Number of inner levels above the leaves (0 for a lone leaf).
    #[must_use]
    pub fn inner_level_count(&self) -> usize {
        self.levels.len()
    }

    /// Separator keys of inner node `node`, `depth` levels below the
    /// root (depth 0 is the root). `keys()[i]` is the smallest key
    /// reachable through child `i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `node` is out of range.
    #[must_use]
    pub fn inner_keys(&self, depth: usize, node: u32) -> &[u64] {
        let level = &self.levels[self.levels.len() - 1 - depth];
        &level[node as usize].keys
    }

    /// Child index `slot` of inner node `node` at `depth` below the
    /// root. The result indexes the next inner level down, or the leaf
    /// array when `depth == inner_level_count() - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `depth`, `node`, or `slot` is out of range.
    #[must_use]
    pub fn inner_child(&self, depth: usize, node: u32, slot: usize) -> u32 {
        let level = &self.levels[self.levels.len() - 1 - depth];
        level[node as usize].children[slot]
    }

    /// Number of leaves (always at least 1; an empty tree has one empty
    /// leaf).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Keys and payloads of `leaf`, in key order. Leaf `i + 1` is the
    /// in-order successor of leaf `i` (the chain a range scan follows).
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    #[must_use]
    pub fn leaf_entries(&self, leaf: u32) -> (&[u64], &[u64]) {
        let l = &self.leaves[leaf as usize];
        (&l.keys, &l.payloads)
    }

    /// Exports the tree's structure as plain data, for materialization
    /// into simulated memory.
    #[must_use]
    pub fn export(&self) -> BTreeExport {
        BTreeExport {
            fanout: self.fanout,
            levels: self
                .levels
                .iter()
                .map(|level| {
                    level
                        .iter()
                        .map(|n| (n.keys.clone(), n.children.clone()))
                        .collect()
                })
                .collect(),
            leaves: self
                .leaves
                .iter()
                .map(|l| (l.keys.clone(), l.payloads.clone()))
                .collect(),
        }
    }
}

/// Plain-data view of a [`BTreeIndex`]'s structure.
///
/// `levels` are bottom-up (level 0's children index into `leaves`, the
/// last level holds the single root); each inner node is its separator
/// keys plus child indices into the level below.
#[derive(Clone, Debug)]
pub struct BTreeExport {
    /// Tree fanout.
    pub fanout: usize,
    /// Inner levels, bottom-up; `(separator keys, child indices)`.
    pub levels: Vec<Vec<(Vec<u64>, Vec<u32>)>>,
    /// Leaves as `(keys, payloads)`.
    pub leaves: Vec<(Vec<u64>, Vec<u64>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = BTreeIndex::build(4, std::iter::empty());
        assert!(t.is_empty());
        assert_eq!(t.lookup(5), None);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn single_leaf() {
        let t = BTreeIndex::build(8, (0..5u64).map(|k| (k, k * 10)));
        assert_eq!(t.height(), 1);
        assert_eq!(t.lookup(3), Some(30));
        assert_eq!(t.lookup(9), None);
    }

    #[test]
    fn multi_level_lookups() {
        let t = BTreeIndex::build(4, (0..1000u64).map(|k| (k * 2, k)));
        assert!(t.height() >= 4, "height {}", t.height());
        for k in 0..1000u64 {
            assert_eq!(t.lookup(k * 2), Some(k), "key {}", k * 2);
            assert_eq!(t.lookup(k * 2 + 1), None);
        }
    }

    #[test]
    fn visits_equal_height() {
        let t = BTreeIndex::build(4, (0..256u64).map(|k| (k, k)));
        let (_, visits) = t.lookup_counted(17);
        assert_eq!(visits, t.height());
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let t = BTreeIndex::build(4, [(5u64, 50u64), (1, 10), (3, 30), (2, 20), (4, 40)]);
        for k in 1..=5u64 {
            assert_eq!(t.lookup(k), Some(k * 10));
        }
    }

    #[test]
    fn range_scan_matches_filtered_entries() {
        let t = BTreeIndex::build(4, (0..500u64).map(|k| (k * 2, k)));
        let got = t.range_scan(100, 200, usize::MAX);
        let want: Vec<(u64, u64)> = (50..=100u64).map(|k| (k * 2, k)).collect();
        assert_eq!(got, want);
        // Bounds that fall between keys.
        assert_eq!(t.range_scan(101, 103, usize::MAX), vec![(102, 51)]);
        // Empty and inverted ranges.
        assert_eq!(t.range_scan(300, 100, usize::MAX), vec![]);
        assert_eq!(t.range_scan(1001, 1001, usize::MAX), vec![]);
        assert_eq!(t.range_scan(0, 10, 0), vec![]);
    }

    #[test]
    fn range_scan_truncates_at_limit() {
        let t = BTreeIndex::build(8, (0..1000u64).map(|k| (k, k + 1)));
        let got = t.range_scan(10, 900, 5);
        assert_eq!(got, (10..15u64).map(|k| (k, k + 1)).collect::<Vec<_>>());
        assert_eq!(t.range_scan(10, 900, usize::MAX).len(), 891);
    }

    #[test]
    fn range_scan_crosses_duplicate_leaf_spans() {
        // 20 duplicates of one key with fanout 4: the run spans several
        // leaves, so the descent must land on the *first* one.
        let mut pairs: Vec<(u64, u64)> = (0..20u64).map(|i| (50, i)).collect();
        pairs.push((10, 100));
        pairs.push((90, 200));
        let t = BTreeIndex::build(4, pairs);
        let got = t.range_scan(50, 50, usize::MAX);
        assert_eq!(got, (0..20u64).map(|i| (50, i)).collect::<Vec<_>>());
        assert_eq!(t.range_scan(0, 100, usize::MAX).len(), 22);
    }

    #[test]
    fn stable_build_keeps_duplicate_payload_order() {
        let pairs = vec![(5u64, 3u64), (5, 1), (2, 0), (5, 2)];
        let t = BTreeIndex::build(2, pairs);
        assert_eq!(
            t.range_scan(5, 5, usize::MAX),
            vec![(5, 3), (5, 1), (5, 2)],
            "input order preserved among equal keys"
        );
    }

    #[test]
    fn range_scan_desc_is_the_reverse_of_forward() {
        let t = BTreeIndex::build(4, (0..500u64).map(|k| (k * 2, k)));
        for (lo, hi) in [
            (100, 200),
            (0, u64::MAX),
            (101, 103),
            (999, 999),
            (300, 100),
        ] {
            let mut want = t.range_scan(lo, hi, usize::MAX);
            want.reverse();
            assert_eq!(
                t.range_scan_desc(lo, hi, usize::MAX),
                want,
                "desc [{lo}, {hi}]"
            );
        }
        // A desc limit keeps the *largest* keys.
        assert_eq!(
            t.range_scan_desc(10, 900, 3),
            vec![(900, 450), (898, 449), (896, 448)]
        );
        assert_eq!(t.range_scan_desc(0, 10, 0), vec![]);
    }

    #[test]
    fn range_scan_desc_reverses_duplicate_build_order() {
        // Duplicates spanning leaves: the descent must land on the
        // *last* leaf holding the key, and payloads come back in
        // reverse build order.
        let mut pairs: Vec<(u64, u64)> = (0..20u64).map(|i| (50, i)).collect();
        pairs.push((10, 100));
        pairs.push((90, 200));
        let t = BTreeIndex::build(4, pairs);
        let got = t.range_scan_desc(50, 50, usize::MAX);
        assert_eq!(got, (0..20u64).rev().map(|i| (50, i)).collect::<Vec<_>>());
        assert_eq!(t.range_scan_desc(0, 100, usize::MAX).len(), 22);
        assert_eq!(t.range_scan_desc(0, 100, 1), vec![(90, 200)]);
    }

    #[test]
    fn accessors_describe_the_tree() {
        let t = BTreeIndex::build(4, (0..64u64).map(|k| (k, k)));
        assert_eq!(t.inner_level_count() + 1, t.height());
        // Manual descent through the accessors agrees with lookup.
        let key = 37u64;
        let mut node = 0u32;
        for depth in 0..t.inner_level_count() {
            let slot = t.inner_keys(depth, node).partition_point(|k| *k <= key);
            node = t.inner_child(depth, node, slot);
        }
        let (keys, payloads) = t.leaf_entries(node);
        let slot = keys.partition_point(|k| *k < key);
        assert_eq!(keys[slot], key);
        assert_eq!(payloads[slot], t.lookup(key).unwrap());
        assert!(t.leaf_count() >= 16);
    }

    #[test]
    fn height_grows_logarithmically() {
        let small = BTreeIndex::build(8, (0..64u64).map(|k| (k, k)));
        let large = BTreeIndex::build(8, (0..4096u64).map(|k| (k, k)));
        assert!(large.height() > small.height());
        assert!(large.height() <= 5);
    }
}
