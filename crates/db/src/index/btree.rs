//! A static B+-tree index — the paper's Section 7 notes Widx "can easily
//! be extended to accelerate other index structures, such as balanced
//! trees, which are also common in DBMSs"; this is the tree that
//! extension targets.
//!
//! The tree is built bottom-up over sorted entries into flat node
//! arrays, which both keeps lookups allocation-free and makes the
//! structure directly materializable into simulated memory.

/// Sentinel child index.
const NONE: u32 = u32::MAX;

/// An inner node: separator keys and child indices.
#[derive(Clone, Debug)]
struct Inner {
    /// `keys[i]` is the smallest key reachable through `children[i+1]`.
    keys: Vec<u64>,
    /// Child node indices (into the next level down).
    children: Vec<u32>,
}

/// A leaf node: sorted keys with payloads.
#[derive(Clone, Debug)]
struct Leaf {
    keys: Vec<u64>,
    payloads: Vec<u64>,
}

/// A static B+-tree over `u64` keys (duplicates allowed).
#[derive(Clone, Debug)]
pub struct BTreeIndex {
    fanout: usize,
    /// Levels of inner nodes, root level last. Empty when the tree is a
    /// single leaf.
    levels: Vec<Vec<Inner>>,
    leaves: Vec<Leaf>,
}

impl BTreeIndex {
    /// Builds a tree with the given `fanout` from `pairs` (sorted
    /// internally).
    ///
    /// # Panics
    ///
    /// Panics if `fanout < 2`.
    #[must_use]
    pub fn build(fanout: usize, pairs: impl IntoIterator<Item = (u64, u64)>) -> BTreeIndex {
        assert!(fanout >= 2, "fanout must be at least 2");
        let mut entries: Vec<(u64, u64)> = pairs.into_iter().collect();
        entries.sort_unstable_by_key(|(k, _)| *k);

        let mut leaves = Vec::new();
        for chunk in entries.chunks(fanout.max(1)) {
            leaves.push(Leaf {
                keys: chunk.iter().map(|(k, _)| *k).collect(),
                payloads: chunk.iter().map(|(_, p)| *p).collect(),
            });
        }
        if leaves.is_empty() {
            leaves.push(Leaf {
                keys: Vec::new(),
                payloads: Vec::new(),
            });
        }

        // Build inner levels bottom-up until one root remains.
        let mut levels: Vec<Vec<Inner>> = Vec::new();
        let mut level_first_keys: Vec<u64> = leaves
            .iter()
            .map(|l| l.keys.first().copied().unwrap_or(0))
            .collect();
        let mut width = leaves.len();
        while width > 1 {
            let mut inners = Vec::new();
            let mut next_first_keys = Vec::new();
            let mut child = 0u32;
            while (child as usize) < width {
                let end = (child as usize + fanout).min(width);
                let children: Vec<u32> = (child..end as u32).collect();
                let keys = children[1..]
                    .iter()
                    .map(|c| level_first_keys[*c as usize])
                    .collect();
                next_first_keys.push(level_first_keys[child as usize]);
                inners.push(Inner { keys, children });
                child = end as u32;
            }
            width = inners.len();
            levels.push(inners);
            level_first_keys = next_first_keys;
        }

        BTreeIndex {
            fanout,
            levels,
            leaves,
        }
    }

    /// The tree's fanout.
    #[must_use]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Tree height in node visits per lookup (1 for a lone leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        self.levels.len() + 1
    }

    /// Total entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.leaves.iter().map(|l| l.keys.len()).sum()
    }

    /// Whether the tree holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the first payload under `key`, also reporting the number
    /// of nodes visited (the traversal length Widx would walk).
    #[must_use]
    pub fn lookup_counted(&self, key: u64) -> (Option<u64>, usize) {
        let mut visits = 0usize;
        let mut idx = 0u32;
        // Descend inner levels from the root (last level) downwards.
        for level in self.levels.iter().rev() {
            visits += 1;
            let node = &level[idx as usize];
            let slot = node.keys.partition_point(|k| *k <= key);
            idx = node.children[slot];
            debug_assert_ne!(idx, NONE);
        }
        visits += 1;
        let leaf = &self.leaves[idx as usize];
        let slot = leaf.keys.partition_point(|k| *k < key);
        let hit = leaf
            .keys
            .get(slot)
            .filter(|k| **k == key)
            .map(|_| leaf.payloads[slot]);
        (hit, visits)
    }

    /// Looks up the first payload under `key`.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<u64> {
        self.lookup_counted(key).0
    }

    /// Exports the tree's structure as plain data, for materialization
    /// into simulated memory.
    #[must_use]
    pub fn export(&self) -> BTreeExport {
        BTreeExport {
            fanout: self.fanout,
            levels: self
                .levels
                .iter()
                .map(|level| {
                    level
                        .iter()
                        .map(|n| (n.keys.clone(), n.children.clone()))
                        .collect()
                })
                .collect(),
            leaves: self
                .leaves
                .iter()
                .map(|l| (l.keys.clone(), l.payloads.clone()))
                .collect(),
        }
    }
}

/// Plain-data view of a [`BTreeIndex`]'s structure.
///
/// `levels` are bottom-up (level 0's children index into `leaves`, the
/// last level holds the single root); each inner node is its separator
/// keys plus child indices into the level below.
#[derive(Clone, Debug)]
pub struct BTreeExport {
    /// Tree fanout.
    pub fanout: usize,
    /// Inner levels, bottom-up; `(separator keys, child indices)`.
    pub levels: Vec<Vec<(Vec<u64>, Vec<u32>)>>,
    /// Leaves as `(keys, payloads)`.
    pub leaves: Vec<(Vec<u64>, Vec<u64>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = BTreeIndex::build(4, std::iter::empty());
        assert!(t.is_empty());
        assert_eq!(t.lookup(5), None);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn single_leaf() {
        let t = BTreeIndex::build(8, (0..5u64).map(|k| (k, k * 10)));
        assert_eq!(t.height(), 1);
        assert_eq!(t.lookup(3), Some(30));
        assert_eq!(t.lookup(9), None);
    }

    #[test]
    fn multi_level_lookups() {
        let t = BTreeIndex::build(4, (0..1000u64).map(|k| (k * 2, k)));
        assert!(t.height() >= 4, "height {}", t.height());
        for k in 0..1000u64 {
            assert_eq!(t.lookup(k * 2), Some(k), "key {}", k * 2);
            assert_eq!(t.lookup(k * 2 + 1), None);
        }
    }

    #[test]
    fn visits_equal_height() {
        let t = BTreeIndex::build(4, (0..256u64).map(|k| (k, k)));
        let (_, visits) = t.lookup_counted(17);
        assert_eq!(visits, t.height());
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let t = BTreeIndex::build(4, [(5u64, 50u64), (1, 10), (3, 30), (2, 20), (4, 40)]);
        for k in 1..=5u64 {
            assert_eq!(t.lookup(k), Some(k * 10));
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let small = BTreeIndex::build(8, (0..64u64).map(|k| (k, k)));
        let large = BTreeIndex::build(8, (0..4096u64).map(|k| (k, k)));
        assert!(large.height() > small.height());
        assert!(large.height() <= 5);
    }
}
