//! A B+-tree index — the paper's Section 7 notes Widx "can easily be
//! extended to accelerate other index structures, such as balanced
//! trees, which are also common in DBMSs"; this is the tree that
//! extension targets.
//!
//! The tree is built bottom-up over sorted entries into flat node
//! *arenas* (one per level, plus the leaf arena), which keeps lookups
//! allocation-free and makes the structure directly materializable into
//! simulated memory. Unlike the original frozen build, the arenas are
//! **mutable**: [`insert`](BTreeIndex::insert) splits full leaves (and
//! full inner nodes, growing a new root level when the root itself
//! splits), [`delete`](BTreeIndex::delete) merges underfull leaves into
//! a same-parent sibling and unlinks emptied nodes, and freed slots are
//! *retired* into an epoch list (see [`crate::epoch`]) instead of being
//! reused immediately — a resumable range cursor holding a leaf index
//! across batches can never find the slot silently repurposed.
//!
//! Concurrency-relevant structure for the walkers upstairs:
//!
//! * leaves form a doubly linked chain ([`leaf_next`](
//!   BTreeIndex::leaf_next) / [`leaf_prev`](BTreeIndex::leaf_prev)) in
//!   key order — range scans step links, never adjacent array slots;
//! * every leaf slot carries a monotonically increasing
//!   [`version`](BTreeIndex::leaf_version), bumped on any content or
//!   link change, on retirement, and on reuse — a saved `(leaf, slot,
//!   version)` cursor position is valid iff the version still matches
//!   (Wormhole-style leaf validation);
//! * the tree height never shrinks: emptied inner nodes are unlinked,
//!   but surviving single-child ancestors simply pass descents through.
//!   Separator keys may go stale (they remain correct lower bounds),
//!   which is why scans land by separator and then follow the chain.

use std::sync::Arc;

use crate::epoch::{EpochDomain, RetireList};

/// Sentinel node index ("no node").
const NONE: u32 = u32::MAX;

/// An inner node: separator keys and child indices.
#[derive(Clone, Debug)]
struct Inner {
    /// `keys[i]` is the smallest key reachable through `children[i+1]`
    /// at the time the separator was created (a lower bound; deletions
    /// may leave it stale, insertions keep it exact).
    keys: Vec<u64>,
    /// Child node indices (into the next level down, or the leaf arena
    /// for level 0).
    children: Vec<u32>,
    /// Owning inner node one level up, or [`NONE`] for the root.
    parent: u32,
}

/// A leaf node: sorted keys with payloads, chain links, and a version.
#[derive(Clone, Debug)]
struct Leaf {
    keys: Vec<u64>,
    payloads: Vec<u64>,
    /// In-order successor leaf, or [`NONE`].
    next: u32,
    /// In-order predecessor leaf, or [`NONE`].
    prev: u32,
    /// Owning inner node at level 0, or [`NONE`] when the tree is a
    /// single leaf.
    parent: u32,
    /// Bumped on every content/link change, retirement, and reuse.
    /// Never reset — a slot's version is monotone over its lifetime.
    version: u64,
}

/// A B+-tree over `u64` keys (duplicates allowed) supporting online
/// mutation with epoch-based node reclamation.
#[derive(Clone, Debug)]
pub struct BTreeIndex {
    fanout: usize,
    /// Levels of inner nodes, root level last; the root is always node
    /// 0 of the top level. Empty when the tree is a single leaf.
    levels: Vec<Vec<Inner>>,
    /// Leaf arena; may contain retired/free slots after mutation.
    leaves: Vec<Leaf>,
    /// First live leaf in key order.
    head: u32,
    /// Last live leaf in key order.
    tail: u32,
    /// Live (chained) leaves.
    live_leaves: usize,
    /// Total entries.
    len: usize,
    /// Retired/free leaf slots awaiting epoch-safe reuse.
    leaf_retire: RetireList,
    /// Retired/free inner slots, one list per level (parallel to
    /// `levels`).
    inner_retire: Vec<RetireList>,
    /// The reclamation domain mutations stamp retirements against.
    domain: Arc<EpochDomain>,
}

impl BTreeIndex {
    /// Builds a tree with the given `fanout` from `pairs` (sorted
    /// internally).
    ///
    /// # Panics
    ///
    /// Panics if `fanout < 2`.
    #[must_use]
    pub fn build(fanout: usize, pairs: impl IntoIterator<Item = (u64, u64)>) -> BTreeIndex {
        assert!(fanout >= 2, "fanout must be at least 2");
        let mut entries: Vec<(u64, u64)> = pairs.into_iter().collect();
        // Stable sort: duplicate keys keep their input payload order, so
        // a range-partitioned build (each shard sorting its own slice)
        // scans in exactly the same order as one tree over everything —
        // the property the ordered-serving oracle tests rely on.
        entries.sort_by_key(|(k, _)| *k);
        let len = entries.len();

        let mut leaves = Vec::new();
        for chunk in entries.chunks(fanout.max(1)) {
            leaves.push(Leaf {
                keys: chunk.iter().map(|(k, _)| *k).collect(),
                payloads: chunk.iter().map(|(_, p)| *p).collect(),
                next: NONE,
                prev: NONE,
                parent: NONE,
                version: 1,
            });
        }
        if leaves.is_empty() {
            leaves.push(Leaf {
                keys: Vec::new(),
                payloads: Vec::new(),
                next: NONE,
                prev: NONE,
                parent: NONE,
                version: 1,
            });
        }
        let leaf_count = leaves.len() as u32;
        for (i, leaf) in leaves.iter_mut().enumerate() {
            let i = i as u32;
            leaf.prev = if i == 0 { NONE } else { i - 1 };
            leaf.next = if i + 1 == leaf_count { NONE } else { i + 1 };
        }

        // Build inner levels bottom-up until one root remains.
        let mut levels: Vec<Vec<Inner>> = Vec::new();
        let mut level_first_keys: Vec<u64> = leaves
            .iter()
            .map(|l| l.keys.first().copied().unwrap_or(0))
            .collect();
        let mut width = leaves.len();
        while width > 1 {
            let mut inners = Vec::new();
            let mut next_first_keys = Vec::new();
            let mut child = 0u32;
            while (child as usize) < width {
                let end = (child as usize + fanout).min(width);
                let children: Vec<u32> = (child..end as u32).collect();
                let keys = children[1..]
                    .iter()
                    .map(|c| level_first_keys[*c as usize])
                    .collect();
                next_first_keys.push(level_first_keys[child as usize]);
                let me = inners.len() as u32;
                for c in &children {
                    if let Some(level_below) = levels.last_mut() {
                        level_below[*c as usize].parent = me;
                    } else {
                        leaves[*c as usize].parent = me;
                    }
                }
                inners.push(Inner {
                    keys,
                    children,
                    parent: NONE,
                });
                child = end as u32;
            }
            width = inners.len();
            levels.push(inners);
            level_first_keys = next_first_keys;
        }

        let inner_retire = levels.iter().map(|_| RetireList::default()).collect();
        BTreeIndex {
            fanout,
            head: 0,
            tail: leaf_count - 1,
            live_leaves: leaves.len(),
            len,
            levels,
            leaves,
            leaf_retire: RetireList::default(),
            inner_retire,
            domain: EpochDomain::new(),
        }
    }

    /// Attaches the epoch domain mutations stamp retirements against —
    /// call once, before serving, so all of a service's indexes share
    /// one domain (and its `widx_epoch_*` gauges).
    pub fn set_domain(&mut self, domain: Arc<EpochDomain>) {
        self.domain = domain;
    }

    /// The epoch domain this index retires into.
    #[must_use]
    pub fn domain(&self) -> &Arc<EpochDomain> {
        &self.domain
    }

    /// The tree's fanout.
    #[must_use]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Tree height in node visits per lookup (1 for a lone leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        self.levels.len() + 1
    }

    /// Total entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Descends from the root to a leaf. `upper` picks the rightmost
    /// leaf whose range can hold `key` (`<=` separators — insert and
    /// descending-scan entry); otherwise the leftmost (`<` — ascending
    /// scans, deletes). Callers follow the leaf chain from there.
    fn descend_leaf(&self, key: u64, upper: bool) -> u32 {
        if self.levels.is_empty() {
            return self.head;
        }
        let mut node = 0u32;
        for level in self.levels.iter().rev() {
            let n = &level[node as usize];
            let slot = if upper {
                n.keys.partition_point(|k| *k <= key)
            } else {
                n.keys.partition_point(|k| *k < key)
            };
            node = n.children[slot];
        }
        node
    }

    /// Inserts one `(key, payload)` entry. Duplicates are allowed and
    /// keep insertion order (the new entry lands after every existing
    /// entry of the same key, matching the stable build order).
    pub fn insert(&mut self, key: u64, payload: u64) {
        let leaf = self.descend_leaf(key, true);
        let l = &mut self.leaves[leaf as usize];
        let slot = l.keys.partition_point(|k| *k <= key);
        l.keys.insert(slot, key);
        l.payloads.insert(slot, payload);
        l.version += 1;
        self.len += 1;
        if self.leaves[leaf as usize].keys.len() > self.fanout {
            self.split_leaf(leaf);
        }
    }

    /// Removes **every** entry stored under `key`, returning how many
    /// were removed. Emptied leaves are unlinked and retired; underfull
    /// leaves merge into a same-parent sibling when the result fits.
    pub fn delete(&mut self, key: u64) -> usize {
        let mut removed = 0usize;
        loop {
            // Land on the leftmost leaf whose range covers `key`, then
            // follow the chain — separators may be stale lower bounds,
            // so the landing leaf can sit one or more links early.
            let mut leaf = self.descend_leaf(key, false);
            let target = loop {
                let l = &self.leaves[leaf as usize];
                let start = l.keys.partition_point(|k| *k < key);
                let end = l.keys.partition_point(|k| *k <= key);
                if start < end {
                    break Some((leaf, start, end));
                }
                if l.keys.last().is_some_and(|k| *k > key) || l.next == NONE {
                    break None;
                }
                leaf = l.next;
            };
            let Some((leaf, start, end)) = target else {
                return removed;
            };
            let l = &mut self.leaves[leaf as usize];
            l.keys.drain(start..end);
            l.payloads.drain(start..end);
            l.version += 1;
            self.len -= end - start;
            removed += end - start;
            self.rebalance_leaf(leaf);
            // Duplicates may span further leaves; re-descend (the
            // rebalance may have restructured links and parents).
        }
    }

    /// Replaces every entry under `key` with the single entry `(key,
    /// payload)`. Returns `true` if at least one entry existed (the
    /// update applied); `false` leaves the tree unchanged — an update
    /// never inserts a missing key.
    pub fn update(&mut self, key: u64, payload: u64) -> bool {
        if self.delete(key) == 0 {
            return false;
        }
        self.insert(key, payload);
        true
    }

    /// Splits `leaf` (over fanout) into itself (lower half) and a new
    /// right sibling, promoting the sibling's first key to the parent.
    fn split_leaf(&mut self, leaf: u32) {
        let mid = self.leaves[leaf as usize].keys.len() / 2;
        let right_keys = self.leaves[leaf as usize].keys.split_off(mid);
        let right_payloads = self.leaves[leaf as usize].payloads.split_off(mid);
        let sep = right_keys[0];
        let old_next = self.leaves[leaf as usize].next;
        let parent = self.leaves[leaf as usize].parent;
        let right = self.alloc_leaf(right_keys, right_payloads, old_next, leaf, parent);
        let l = &mut self.leaves[leaf as usize];
        l.next = right;
        l.version += 1;
        if old_next == NONE {
            self.tail = right;
        } else {
            let n = &mut self.leaves[old_next as usize];
            n.prev = right;
            n.version += 1;
        }
        self.live_leaves += 1;
        self.promote(0, parent, sep, leaf, right);
    }

    /// Inserts separator `sep` and child `right` after child `left`
    /// into the parent at level `li` (the level the *parent* lives at),
    /// splitting upward as needed. `parent == NONE` grows a new root
    /// level with children `[left, right]`.
    fn promote(&mut self, li: usize, parent: u32, sep: u64, left: u32, right: u32) {
        if parent == NONE {
            debug_assert_eq!(li, self.levels.len(), "only the root has no parent");
            self.levels.push(vec![Inner {
                keys: vec![sep],
                children: vec![left, right],
                parent: NONE,
            }]);
            self.inner_retire.push(RetireList::default());
            self.set_parent(li, left, 0);
            self.set_parent(li, right, 0);
            return;
        }
        let p = &mut self.levels[li][parent as usize];
        let slot = p
            .children
            .iter()
            .position(|c| *c == left)
            .expect("split child under its parent");
        p.keys.insert(slot, sep);
        p.children.insert(slot + 1, right);
        self.set_parent(li, right, parent);
        if self.levels[li][parent as usize].children.len() <= self.fanout {
            return;
        }
        // Split the parent: left half stays in place, the right half
        // moves to a fresh node, and the middle separator is promoted.
        let mid = self.levels[li][parent as usize].children.len() / 2;
        let right_children = self.levels[li][parent as usize].children.split_off(mid);
        let mut right_keys = self.levels[li][parent as usize].keys.split_off(mid - 1);
        let promoted = right_keys.remove(0);
        let grand = self.levels[li][parent as usize].parent;
        let rnode = self.alloc_inner(li, right_keys, right_children.clone(), grand);
        for c in right_children {
            self.set_parent(li, c, rnode);
        }
        self.promote(li + 1, grand, promoted, parent, rnode);
    }

    /// Sets the parent pointer of a child of an inner node at level
    /// `li` (the child is a leaf when `li == 0`).
    fn set_parent(&mut self, li: usize, child: u32, parent: u32) {
        if li == 0 {
            self.leaves[child as usize].parent = parent;
        } else {
            self.levels[li - 1][child as usize].parent = parent;
        }
    }

    /// Allocates a leaf slot (reusing a reclaimed one when available).
    fn alloc_leaf(
        &mut self,
        keys: Vec<u64>,
        payloads: Vec<u64>,
        next: u32,
        prev: u32,
        parent: u32,
    ) -> u32 {
        self.leaf_retire.reclaim(&self.domain);
        match self.leaf_retire.alloc() {
            Some(slot) => {
                let l = &mut self.leaves[slot as usize];
                l.keys = keys;
                l.payloads = payloads;
                l.next = next;
                l.prev = prev;
                l.parent = parent;
                l.version += 1;
                slot
            }
            None => {
                self.leaves.push(Leaf {
                    keys,
                    payloads,
                    next,
                    prev,
                    parent,
                    version: 1,
                });
                (self.leaves.len() - 1) as u32
            }
        }
    }

    /// Allocates an inner slot at level `li`.
    fn alloc_inner(&mut self, li: usize, keys: Vec<u64>, children: Vec<u32>, parent: u32) -> u32 {
        self.inner_retire[li].reclaim(&self.domain);
        match self.inner_retire[li].alloc() {
            Some(slot) => {
                self.levels[li][slot as usize] = Inner {
                    keys,
                    children,
                    parent,
                };
                slot
            }
            None => {
                self.levels[li].push(Inner {
                    keys,
                    children,
                    parent,
                });
                (self.levels[li].len() - 1) as u32
            }
        }
    }

    /// After a removal from `leaf`: retire it if it emptied, or merge
    /// it with a same-parent sibling if it underflowed and the merge
    /// fits in one leaf.
    fn rebalance_leaf(&mut self, leaf: u32) {
        if self.leaves[leaf as usize].keys.is_empty() {
            if self.live_leaves == 1 {
                return; // the last leaf stays (an empty tree keeps one leaf)
            }
            self.unlink_and_retire_leaf(leaf);
            return;
        }
        if self.leaves[leaf as usize].keys.len() * 2 >= self.fanout {
            return; // no underflow
        }
        let parent = self.leaves[leaf as usize].parent;
        if parent == NONE {
            return; // root leaf: nothing to merge with
        }
        let slot = self.levels[0][parent as usize]
            .children
            .iter()
            .position(|c| *c == leaf)
            .expect("leaf under its parent");
        let siblings = &self.levels[0][parent as usize].children;
        // Prefer absorbing the right sibling; fall back to merging into
        // the left one. Only same-parent merges, so the parent loses
        // exactly one child and one separator.
        let right = siblings.get(slot + 1).copied();
        let left = if slot > 0 {
            Some(siblings[slot - 1])
        } else {
            None
        };
        if let Some(right) = right {
            let fits = self.leaves[leaf as usize].keys.len()
                + self.leaves[right as usize].keys.len()
                <= self.fanout;
            if fits {
                self.absorb_right_leaf(leaf, right);
                return;
            }
        }
        if let Some(left) = left {
            let fits = self.leaves[left as usize].keys.len()
                + self.leaves[leaf as usize].keys.len()
                <= self.fanout;
            if fits {
                self.absorb_right_leaf(left, leaf);
            }
        }
    }

    /// Moves every entry of `right` into `left` (its chain
    /// predecessor under the same parent), then unlinks and retires
    /// `right`.
    fn absorb_right_leaf(&mut self, left: u32, right: u32) {
        let mut keys = std::mem::take(&mut self.leaves[right as usize].keys);
        let mut payloads = std::mem::take(&mut self.leaves[right as usize].payloads);
        let l = &mut self.leaves[left as usize];
        l.keys.append(&mut keys);
        l.payloads.append(&mut payloads);
        l.version += 1;
        self.unlink_and_retire_leaf(right);
    }

    /// Unlinks `leaf` from the chain, removes it from its parent, and
    /// retires its slot at the current epoch.
    fn unlink_and_retire_leaf(&mut self, leaf: u32) {
        let (next, prev, parent) = {
            let l = &self.leaves[leaf as usize];
            (l.next, l.prev, l.parent)
        };
        if prev == NONE {
            self.head = next;
        } else {
            let p = &mut self.leaves[prev as usize];
            p.next = next;
            p.version += 1;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            let n = &mut self.leaves[next as usize];
            n.prev = prev;
            n.version += 1;
        }
        let l = &mut self.leaves[leaf as usize];
        l.keys = Vec::new();
        l.payloads = Vec::new();
        l.next = NONE;
        l.prev = NONE;
        l.parent = NONE;
        l.version += 1;
        self.live_leaves -= 1;
        let stamp = self.domain.current();
        self.leaf_retire.retire(leaf, stamp, &self.domain);
        if parent != NONE {
            self.remove_child(0, parent, leaf);
        }
    }

    /// Removes `child` from the inner node `parent` at level `li`,
    /// retiring emptied inner nodes up the tree. The root inner node is
    /// never retired (the tree keeps its height).
    fn remove_child(&mut self, li: usize, parent: u32, child: u32) {
        let p = &mut self.levels[li][parent as usize];
        let slot = p
            .children
            .iter()
            .position(|c| *c == child)
            .expect("child under its parent");
        p.children.remove(slot);
        if slot == 0 {
            if !p.keys.is_empty() {
                p.keys.remove(0);
            }
        } else {
            p.keys.remove(slot - 1);
        }
        if p.children.is_empty() {
            let grand = p.parent;
            debug_assert!(grand != NONE, "the root cannot empty while a leaf lives");
            p.parent = NONE;
            let stamp = self.domain.current();
            self.inner_retire[li].retire(parent, stamp, &self.domain);
            if grand != NONE {
                self.remove_child(li + 1, grand, parent);
            }
        }
    }

    /// Moves every retired slot (leaves and inner nodes) whose epoch
    /// stamp is older than all pinned epochs to the free lists; returns
    /// how many moved.
    pub fn reclaim(&mut self) -> usize {
        let mut n = self.leaf_retire.reclaim(&self.domain);
        for list in &mut self.inner_retire {
            n += list.reclaim(&self.domain);
        }
        n
    }

    /// Slots (leaves + inner nodes) retired and not yet reclaimed.
    #[must_use]
    pub fn retired_nodes(&self) -> usize {
        self.leaf_retire.retired_len()
            + self
                .inner_retire
                .iter()
                .map(RetireList::retired_len)
                .sum::<usize>()
    }

    /// Slots reclaimed and ready for reuse.
    #[must_use]
    pub fn free_nodes(&self) -> usize {
        self.leaf_retire.free_len()
            + self
                .inner_retire
                .iter()
                .map(RetireList::free_len)
                .sum::<usize>()
    }

    /// Looks up the first payload under `key` (in the rightmost leaf
    /// holding it), also reporting the number of nodes visited (the
    /// traversal length Widx would walk).
    #[must_use]
    pub fn lookup_counted(&self, key: u64) -> (Option<u64>, usize) {
        let mut visits = 0usize;
        let mut idx = 0u32;
        // Descend inner levels from the root (last level) downwards.
        for level in self.levels.iter().rev() {
            visits += 1;
            let node = &level[idx as usize];
            let slot = node.keys.partition_point(|k| *k <= key);
            idx = node.children[slot];
            debug_assert_ne!(idx, NONE);
        }
        if self.levels.is_empty() {
            idx = self.head;
        }
        visits += 1;
        let leaf = &self.leaves[idx as usize];
        let slot = leaf.keys.partition_point(|k| *k < key);
        let hit = leaf
            .keys
            .get(slot)
            .filter(|k| **k == key)
            .map(|_| leaf.payloads[slot]);
        (hit, visits)
    }

    /// Looks up the first payload under `key`.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<u64> {
        self.lookup_counted(key).0
    }

    /// All `(key, payload)` entries with `lo <= key <= hi`, in key order
    /// (duplicates in insertion order), truncated to the first `limit` —
    /// the serial range-scan oracle the walker engines are checked
    /// against. Empty when `lo > hi` or `limit == 0`.
    #[must_use]
    pub fn range_scan(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if lo > hi || limit == 0 {
            return out;
        }
        // Land on the leftmost leaf whose range can reach `lo`, then
        // walk the chain.
        let mut leaf = self.descend_leaf(lo, false);
        let mut slot = self.leaves[leaf as usize].keys.partition_point(|k| *k < lo);
        loop {
            let l = &self.leaves[leaf as usize];
            while slot < l.keys.len() {
                let key = l.keys[slot];
                if key > hi {
                    return out;
                }
                out.push((key, l.payloads[slot]));
                if out.len() == limit {
                    return out;
                }
                slot += 1;
            }
            if l.next == NONE {
                return out;
            }
            leaf = l.next;
            slot = 0;
        }
    }

    /// All `(key, payload)` entries with `lo <= key <= hi`, in
    /// *descending* key order (duplicates in reverse insertion order),
    /// truncated to the first `limit` — the serial oracle for
    /// `ORDER BY key DESC` scans and the reverse walker engines. Empty
    /// when `lo > hi` or `limit == 0`.
    #[must_use]
    pub fn range_scan_desc(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if lo > hi || limit == 0 {
            return out;
        }
        // Land on the rightmost leaf whose range can reach `hi`, then
        // walk the chain backwards.
        let mut leaf = self.descend_leaf(hi, true);
        // Everything below this slot is <= hi; walk it downward.
        let mut slot = self.leaves[leaf as usize]
            .keys
            .partition_point(|k| *k <= hi);
        loop {
            let l = &self.leaves[leaf as usize];
            while slot > 0 {
                slot -= 1;
                let key = l.keys[slot];
                if key < lo {
                    return out;
                }
                out.push((key, l.payloads[slot]));
                if out.len() == limit {
                    return out;
                }
            }
            if l.prev == NONE {
                return out;
            }
            leaf = l.prev;
            slot = self.leaves[leaf as usize].keys.len();
        }
    }

    /// Number of inner levels above the leaves (0 for a lone leaf).
    #[must_use]
    pub fn inner_level_count(&self) -> usize {
        self.levels.len()
    }

    /// Separator keys of inner node `node`, `depth` levels below the
    /// root (depth 0 is the root). `keys()[i]` is the smallest key
    /// reachable through child `i + 1` (a lower bound after deletions).
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `node` is out of range.
    #[must_use]
    pub fn inner_keys(&self, depth: usize, node: u32) -> &[u64] {
        let level = &self.levels[self.levels.len() - 1 - depth];
        &level[node as usize].keys
    }

    /// Child index `slot` of inner node `node` at `depth` below the
    /// root. The result indexes the next inner level down, or the leaf
    /// arena when `depth == inner_level_count() - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `depth`, `node`, or `slot` is out of range.
    #[must_use]
    pub fn inner_child(&self, depth: usize, node: u32, slot: usize) -> u32 {
        let level = &self.levels[self.levels.len() - 1 - depth];
        level[node as usize].children[slot]
    }

    /// Size of the leaf arena (equal to the live leaf count for a
    /// freshly built tree; after mutation the arena may contain retired
    /// slots — use [`live_leaf_count`](Self::live_leaf_count) and the
    /// chain accessors for traversal).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Leaves currently linked into the chain (always at least 1; an
    /// empty tree keeps one empty leaf).
    #[must_use]
    pub fn live_leaf_count(&self) -> usize {
        self.live_leaves
    }

    /// The first live leaf in key order.
    #[must_use]
    pub fn first_leaf(&self) -> u32 {
        self.head
    }

    /// The last live leaf in key order.
    #[must_use]
    pub fn last_leaf(&self) -> u32 {
        self.tail
    }

    /// The in-order successor of `leaf`, if any.
    #[must_use]
    pub fn leaf_next(&self, leaf: u32) -> Option<u32> {
        let next = self.leaves[leaf as usize].next;
        (next != NONE).then_some(next)
    }

    /// The in-order predecessor of `leaf`, if any.
    #[must_use]
    pub fn leaf_prev(&self, leaf: u32) -> Option<u32> {
        let prev = self.leaves[leaf as usize].prev;
        (prev != NONE).then_some(prev)
    }

    /// The version of `leaf`'s slot: monotone over the slot's lifetime,
    /// bumped on every content or link change, retirement, and reuse. A
    /// saved cursor position `(leaf, slot, version)` is still exact iff
    /// the version matches.
    #[must_use]
    pub fn leaf_version(&self, leaf: u32) -> u64 {
        self.leaves[leaf as usize].version
    }

    /// Keys and payloads of `leaf`, in key order. Follow
    /// [`leaf_next`](Self::leaf_next) for the in-order successor.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    #[must_use]
    pub fn leaf_entries(&self, leaf: u32) -> (&[u64], &[u64]) {
        let l = &self.leaves[leaf as usize];
        (&l.keys, &l.payloads)
    }

    /// Every entry in key order (duplicates in insertion order) — a
    /// full chain walk.
    #[must_use]
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len);
        let mut leaf = self.head;
        loop {
            let l = &self.leaves[leaf as usize];
            out.extend(l.keys.iter().copied().zip(l.payloads.iter().copied()));
            if l.next == NONE {
                return out;
            }
            leaf = l.next;
        }
    }

    /// Exports the tree's structure as plain data, for materialization
    /// into simulated memory. The export is *compacted*: a mutated
    /// tree is re-packed into dense arrays (leaf `i + 1` is the
    /// in-order successor of leaf `i`), so retired arena slots never
    /// leak into simulated memory.
    #[must_use]
    pub fn export(&self) -> BTreeExport {
        // Rebuilding from the (already sorted) entry stream reproduces
        // the canonical bottom-up packing; the stable sort inside
        // `build` keeps duplicate order intact.
        let packed = BTreeIndex::build(self.fanout, self.entries());
        BTreeExport {
            fanout: packed.fanout,
            levels: packed
                .levels
                .iter()
                .map(|level| {
                    level
                        .iter()
                        .map(|n| (n.keys.clone(), n.children.clone()))
                        .collect()
                })
                .collect(),
            leaves: packed
                .leaves
                .iter()
                .map(|l| (l.keys.clone(), l.payloads.clone()))
                .collect(),
        }
    }
}

/// Plain-data view of a [`BTreeIndex`]'s structure.
///
/// `levels` are bottom-up (level 0's children index into `leaves`, the
/// last level holds the single root); each inner node is its separator
/// keys plus child indices into the level below.
#[derive(Clone, Debug)]
pub struct BTreeExport {
    /// Tree fanout.
    pub fanout: usize,
    /// Inner levels, bottom-up; `(separator keys, child indices)`.
    pub levels: Vec<Vec<(Vec<u64>, Vec<u32>)>>,
    /// Leaves as `(keys, payloads)`.
    pub leaves: Vec<(Vec<u64>, Vec<u64>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = BTreeIndex::build(4, std::iter::empty());
        assert!(t.is_empty());
        assert_eq!(t.lookup(5), None);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn single_leaf() {
        let t = BTreeIndex::build(8, (0..5u64).map(|k| (k, k * 10)));
        assert_eq!(t.height(), 1);
        assert_eq!(t.lookup(3), Some(30));
        assert_eq!(t.lookup(9), None);
    }

    #[test]
    fn multi_level_lookups() {
        let t = BTreeIndex::build(4, (0..1000u64).map(|k| (k * 2, k)));
        assert!(t.height() >= 4, "height {}", t.height());
        for k in 0..1000u64 {
            assert_eq!(t.lookup(k * 2), Some(k), "key {}", k * 2);
            assert_eq!(t.lookup(k * 2 + 1), None);
        }
    }

    #[test]
    fn visits_equal_height() {
        let t = BTreeIndex::build(4, (0..256u64).map(|k| (k, k)));
        let (_, visits) = t.lookup_counted(17);
        assert_eq!(visits, t.height());
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let t = BTreeIndex::build(4, [(5u64, 50u64), (1, 10), (3, 30), (2, 20), (4, 40)]);
        for k in 1..=5u64 {
            assert_eq!(t.lookup(k), Some(k * 10));
        }
    }

    #[test]
    fn range_scan_matches_filtered_entries() {
        let t = BTreeIndex::build(4, (0..500u64).map(|k| (k * 2, k)));
        let got = t.range_scan(100, 200, usize::MAX);
        let want: Vec<(u64, u64)> = (50..=100u64).map(|k| (k * 2, k)).collect();
        assert_eq!(got, want);
        // Bounds that fall between keys.
        assert_eq!(t.range_scan(101, 103, usize::MAX), vec![(102, 51)]);
        // Empty and inverted ranges.
        assert_eq!(t.range_scan(300, 100, usize::MAX), vec![]);
        assert_eq!(t.range_scan(1001, 1001, usize::MAX), vec![]);
        assert_eq!(t.range_scan(0, 10, 0), vec![]);
    }

    #[test]
    fn range_scan_truncates_at_limit() {
        let t = BTreeIndex::build(8, (0..1000u64).map(|k| (k, k + 1)));
        let got = t.range_scan(10, 900, 5);
        assert_eq!(got, (10..15u64).map(|k| (k, k + 1)).collect::<Vec<_>>());
        assert_eq!(t.range_scan(10, 900, usize::MAX).len(), 891);
    }

    #[test]
    fn range_scan_crosses_duplicate_leaf_spans() {
        // 20 duplicates of one key with fanout 4: the run spans several
        // leaves, so the descent must land on the *first* one.
        let mut pairs: Vec<(u64, u64)> = (0..20u64).map(|i| (50, i)).collect();
        pairs.push((10, 100));
        pairs.push((90, 200));
        let t = BTreeIndex::build(4, pairs);
        let got = t.range_scan(50, 50, usize::MAX);
        assert_eq!(got, (0..20u64).map(|i| (50, i)).collect::<Vec<_>>());
        assert_eq!(t.range_scan(0, 100, usize::MAX).len(), 22);
    }

    #[test]
    fn stable_build_keeps_duplicate_payload_order() {
        let pairs = vec![(5u64, 3u64), (5, 1), (2, 0), (5, 2)];
        let t = BTreeIndex::build(2, pairs);
        assert_eq!(
            t.range_scan(5, 5, usize::MAX),
            vec![(5, 3), (5, 1), (5, 2)],
            "input order preserved among equal keys"
        );
    }

    #[test]
    fn range_scan_desc_is_the_reverse_of_forward() {
        let t = BTreeIndex::build(4, (0..500u64).map(|k| (k * 2, k)));
        for (lo, hi) in [
            (100, 200),
            (0, u64::MAX),
            (101, 103),
            (999, 999),
            (300, 100),
        ] {
            let mut want = t.range_scan(lo, hi, usize::MAX);
            want.reverse();
            assert_eq!(
                t.range_scan_desc(lo, hi, usize::MAX),
                want,
                "desc [{lo}, {hi}]"
            );
        }
        // A desc limit keeps the *largest* keys.
        assert_eq!(
            t.range_scan_desc(10, 900, 3),
            vec![(900, 450), (898, 449), (896, 448)]
        );
        assert_eq!(t.range_scan_desc(0, 10, 0), vec![]);
    }

    #[test]
    fn range_scan_desc_reverses_duplicate_build_order() {
        // Duplicates spanning leaves: the descent must land on the
        // *last* leaf holding the key, and payloads come back in
        // reverse build order.
        let mut pairs: Vec<(u64, u64)> = (0..20u64).map(|i| (50, i)).collect();
        pairs.push((10, 100));
        pairs.push((90, 200));
        let t = BTreeIndex::build(4, pairs);
        let got = t.range_scan_desc(50, 50, usize::MAX);
        assert_eq!(got, (0..20u64).rev().map(|i| (50, i)).collect::<Vec<_>>());
        assert_eq!(t.range_scan_desc(0, 100, usize::MAX).len(), 22);
        assert_eq!(t.range_scan_desc(0, 100, 1), vec![(90, 200)]);
    }

    #[test]
    fn accessors_describe_the_tree() {
        let t = BTreeIndex::build(4, (0..64u64).map(|k| (k, k)));
        assert_eq!(t.inner_level_count() + 1, t.height());
        // Manual descent through the accessors agrees with lookup.
        let key = 37u64;
        let mut node = 0u32;
        for depth in 0..t.inner_level_count() {
            let slot = t.inner_keys(depth, node).partition_point(|k| *k <= key);
            node = t.inner_child(depth, node, slot);
        }
        let (keys, payloads) = t.leaf_entries(node);
        let slot = keys.partition_point(|k| *k < key);
        assert_eq!(keys[slot], key);
        assert_eq!(payloads[slot], t.lookup(key).unwrap());
        assert!(t.leaf_count() >= 16);
    }

    #[test]
    fn height_grows_logarithmically() {
        let small = BTreeIndex::build(8, (0..64u64).map(|k| (k, k)));
        let large = BTreeIndex::build(8, (0..4096u64).map(|k| (k, k)));
        assert!(large.height() > small.height());
        assert!(large.height() <= 5);
    }

    // ---- mutation ----

    /// Checks the full structural invariant set after a mutation storm:
    /// chain order, link symmetry, live-leaf count, length, and scan
    /// agreement with a fresh build over the same entries.
    fn check_invariants(t: &BTreeIndex) {
        let entries = t.entries();
        assert_eq!(entries.len(), t.len(), "len matches chain walk");
        assert!(
            entries.windows(2).all(|w| w[0].0 <= w[1].0),
            "chain is key-ordered"
        );
        // Chain link symmetry + live count.
        let mut live = 0usize;
        let mut leaf = t.first_leaf();
        let mut prev = None;
        loop {
            live += 1;
            assert_eq!(t.leaf_prev(leaf), prev, "prev link of {leaf}");
            prev = Some(leaf);
            match t.leaf_next(leaf) {
                Some(next) => leaf = next,
                None => break,
            }
        }
        assert_eq!(leaf, t.last_leaf());
        assert_eq!(live, t.live_leaf_count());
        // Every entry findable by descent; scans agree with a rebuild.
        let fresh = BTreeIndex::build(t.fanout(), entries.clone());
        assert_eq!(
            t.range_scan(0, u64::MAX, usize::MAX),
            fresh.range_scan(0, u64::MAX, usize::MAX)
        );
        assert_eq!(
            t.range_scan_desc(0, u64::MAX, usize::MAX),
            fresh.range_scan_desc(0, u64::MAX, usize::MAX)
        );
    }

    #[test]
    fn insert_grows_from_empty_through_root_splits() {
        let mut t = BTreeIndex::build(4, std::iter::empty());
        for k in 0..500u64 {
            t.insert(k * 2, k);
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 4, "root split grew levels: {}", t.height());
        for k in 0..500u64 {
            assert_eq!(t.lookup(k * 2), Some(k), "key {}", k * 2);
            assert_eq!(t.lookup(k * 2 + 1), None);
        }
        check_invariants(&t);
    }

    #[test]
    fn interleaved_inserts_keep_scan_order() {
        let mut t = BTreeIndex::build(4, (0..200u64).map(|k| (k * 4, k)));
        // Insert between, before, and after existing keys, plus dups.
        for k in 0..200u64 {
            t.insert(k * 4 + 2, 1000 + k);
        }
        t.insert(0, 7777);
        t.insert(u64::MAX, 8888);
        check_invariants(&t);
        let got = t.range_scan(0, 10, usize::MAX);
        assert_eq!(
            got,
            vec![
                (0, 0),
                (0, 7777),
                (2, 1000),
                (4, 1),
                (6, 1001),
                (8, 2),
                (10, 1002)
            ]
        );
    }

    #[test]
    fn inserted_duplicates_follow_existing_ones() {
        let mut t = BTreeIndex::build(4, (0..10u64).map(|_| (5, 0)));
        t.insert(5, 1);
        t.insert(5, 2);
        let payloads: Vec<u64> = t
            .range_scan(5, 5, usize::MAX)
            .iter()
            .map(|(_, p)| *p)
            .collect();
        assert_eq!(&payloads[10..], &[1, 2], "new dups land after old ones");
    }

    #[test]
    fn delete_removes_runs_spanning_leaves() {
        let mut pairs: Vec<(u64, u64)> = (0..40u64).map(|i| (77, i)).collect();
        pairs.extend((0..100u64).map(|k| (k * 2, k)));
        let mut t = BTreeIndex::build(4, pairs);
        assert_eq!(t.delete(77), 40);
        assert_eq!(t.range_scan(77, 77, usize::MAX), vec![]);
        assert_eq!(t.len(), 100);
        assert_eq!(t.delete(77), 0, "second delete misses");
        check_invariants(&t);
    }

    #[test]
    fn delete_everything_leaves_a_valid_empty_tree() {
        let mut t = BTreeIndex::build(4, (0..300u64).map(|k| (k, k)));
        for k in 0..300u64 {
            assert_eq!(t.delete(k), 1, "key {k}");
        }
        assert!(t.is_empty());
        assert_eq!(t.live_leaf_count(), 1, "one (empty) leaf survives");
        assert_eq!(t.range_scan(0, u64::MAX, usize::MAX), vec![]);
        assert!(t.retired_nodes() + t.free_nodes() > 0, "nodes were retired");
        // The tree remains usable.
        t.insert(42, 1);
        assert_eq!(t.lookup(42), Some(1));
        check_invariants(&t);
    }

    #[test]
    fn underfull_leaves_merge_into_siblings() {
        let mut t = BTreeIndex::build(8, (0..256u64).map(|k| (k, k)));
        let before = t.live_leaf_count();
        // Thin the tree out: delete three of every four keys.
        for k in 0..256u64 {
            if k % 4 != 0 {
                t.delete(k);
            }
        }
        assert!(
            t.live_leaf_count() < before,
            "merges shrank the chain: {} -> {}",
            before,
            t.live_leaf_count()
        );
        check_invariants(&t);
    }

    #[test]
    fn update_replaces_all_or_misses() {
        let mut t = BTreeIndex::build(4, [(5u64, 1u64), (5, 2), (6, 3)]);
        assert!(t.update(5, 99));
        assert_eq!(t.range_scan(5, 5, usize::MAX), vec![(5, 99)]);
        assert!(!t.update(42, 7), "update never inserts");
        assert_eq!(t.lookup(42), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn retired_leaf_slots_reused_only_after_reclaim() {
        let mut t = BTreeIndex::build(2, (0..16u64).map(|k| (k, k)));
        let domain = t.domain().clone();
        let worker = domain.register();
        let pin = worker.pin();
        for k in 0..8u64 {
            t.delete(k);
        }
        let retired = t.retired_nodes();
        assert!(retired > 0, "deletions retired nodes");
        assert_eq!(t.reclaim(), 0, "pin blocks reclamation");
        drop(pin);
        domain.advance();
        assert_eq!(t.reclaim(), retired);
        assert_eq!(t.retired_nodes(), 0);
        let arena = t.leaf_count();
        for k in 100..140u64 {
            t.insert(k, k);
        }
        assert!(t.leaf_count() <= arena + 40, "free slots were reused");
        check_invariants(&t);
    }

    #[test]
    fn versions_bump_on_every_touch() {
        let mut t = BTreeIndex::build(4, (0..8u64).map(|k| (k, k)));
        let leaf = t.descend_leaf(0, false);
        let v0 = t.leaf_version(leaf);
        t.insert(0, 99);
        assert!(t.leaf_version(leaf) > v0, "insert bumps");
        let v1 = t.leaf_version(leaf);
        t.delete(0);
        assert!(t.leaf_version(leaf) > v1, "delete bumps");
    }

    #[test]
    fn mutation_oracle_against_std_btreemap() {
        use std::collections::BTreeMap;
        let mut t = BTreeIndex::build(4, std::iter::empty());
        let mut oracle: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        for step in 0..6000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) % 128;
            match state % 5 {
                0..=2 => {
                    t.insert(key, step);
                    oracle.entry(key).or_default().push(step);
                }
                3 => {
                    let removed = t.delete(key);
                    let want = oracle.remove(&key).map_or(0, |v| v.len());
                    assert_eq!(removed, want, "delete {key} at step {step}");
                }
                _ => {
                    let applied = t.update(key, step);
                    match oracle.get_mut(&key) {
                        Some(v) if !v.is_empty() => {
                            assert!(applied);
                            v.clear();
                            v.push(step);
                        }
                        _ => assert!(!applied),
                    }
                }
            }
            if step % 700 == 0 {
                t.domain().advance();
                t.reclaim();
            }
        }
        let want: Vec<(u64, u64)> = oracle
            .iter()
            .flat_map(|(k, vs)| vs.iter().map(move |v| (*k, *v)))
            .collect();
        assert_eq!(t.range_scan(0, u64::MAX, usize::MAX), want);
        let mut rev = want.clone();
        rev.reverse();
        assert_eq!(t.range_scan_desc(0, u64::MAX, usize::MAX), rev);
        check_invariants(&t);
        // Quiescence: advance + reclaim drains the retire lists.
        t.domain().advance();
        t.reclaim();
        assert_eq!(t.retired_nodes(), 0);
    }

    #[test]
    fn export_compacts_a_mutated_tree() {
        let mut t = BTreeIndex::build(4, (0..64u64).map(|k| (k, k)));
        for k in 0..32u64 {
            t.delete(k * 2);
        }
        for k in 100..130u64 {
            t.insert(k, k);
        }
        let export = t.export();
        assert_eq!(
            export.leaves.iter().map(|(k, _)| k.len()).sum::<usize>(),
            t.len()
        );
        // Exported leaves are dense and chained in key order.
        let flat: Vec<u64> = export
            .leaves
            .iter()
            .flat_map(|(k, _)| k.iter().copied())
            .collect();
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
        assert!(export
            .leaves
            .iter()
            .all(|(k, _)| !k.is_empty() || t.is_empty()));
    }
}
