//! Physical node layouts.
//!
//! Widx is programmable precisely because "the indexing code tends to
//! differ ... in a few important ways" across DBMSs (paper Section 2.2):
//! key widths differ, and "instead of storing the actual key, nodes can
//! instead contain pointers to the original table entries, thus trading
//! space ... for an extra memory access" — MonetDB does exactly this,
//! which the paper cites as the source of extra address-calculation
//! cycles in Figure 9a.
//!
//! A [`NodeLayout`] describes where each field lives inside the
//! materialized bucket headers and overflow nodes. The same descriptor
//! drives (a) serialization into simulated memory, (b) generation of the
//! Widx walker program, and (c) the baseline core's µop trace, so all
//! three agree byte-for-byte.
//!
//! Physical layout (all offsets in bytes):
//!
//! ```text
//! bucket header (stride 32):      overflow node (stride 24):
//!   +0   count   (u32)              +0   key or key-pointer
//!   +8   key or key-pointer         +8   payload
//!   +16  payload                    +16  next node address (u64, 0=NULL)
//!   +24  next node address
//! ```

/// Whether nodes store keys directly or as pointers into the base table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeyKind {
    /// The node holds the key value itself.
    Direct,
    /// The node holds a pointer to the key in the base table's column
    /// (MonetDB-style); reading the key costs one extra dereference.
    Indirect,
}

/// Byte-level layout of the materialized hash index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeLayout {
    /// Width of a key value in bytes (4 or 8).
    pub key_width: usize,
    /// Direct or indirect key storage.
    pub key_kind: KeyKind,
}

impl NodeLayout {
    /// Offset of the count field in a bucket header.
    pub const HEADER_COUNT_OFFSET: usize = 0;
    /// Offset of the key (or key pointer) in a bucket header.
    pub const HEADER_SLOT_OFFSET: usize = 8;
    /// Offset of the payload in a bucket header.
    pub const HEADER_PAYLOAD_OFFSET: usize = 16;
    /// Offset of the next pointer in a bucket header.
    pub const HEADER_NEXT_OFFSET: usize = 24;
    /// Stride of the bucket array.
    pub const HEADER_STRIDE: usize = 32;

    /// Offset of the key (or key pointer) in an overflow node.
    pub const NODE_SLOT_OFFSET: usize = 0;
    /// Offset of the payload in an overflow node.
    pub const NODE_PAYLOAD_OFFSET: usize = 8;
    /// Offset of the next pointer in an overflow node.
    pub const NODE_NEXT_OFFSET: usize = 16;
    /// Stride of overflow nodes.
    pub const NODE_STRIDE: usize = 24;

    /// The hash-join kernel layout: 4-byte keys stored directly
    /// (Section 5: "each node contains a tuple with 4 B key and 4 B
    /// payload").
    #[must_use]
    pub fn kernel4() -> NodeLayout {
        NodeLayout {
            key_width: 4,
            key_kind: KeyKind::Direct,
        }
    }

    /// Direct 8-byte keys — the generic wide-integer layout.
    #[must_use]
    pub fn direct8() -> NodeLayout {
        NodeLayout {
            key_width: 8,
            key_kind: KeyKind::Direct,
        }
    }

    /// MonetDB-style layout: the node stores an 8-byte pointer to the key
    /// in the base column ("MonetDB stores keys indirectly (i.e.,
    /// pointers) in the index resulting in more computation for address
    /// calculation", Section 6.2).
    #[must_use]
    pub fn indirect8() -> NodeLayout {
        NodeLayout {
            key_width: 8,
            key_kind: KeyKind::Indirect,
        }
    }

    /// Width of the slot at [`HEADER_SLOT_OFFSET`](Self::HEADER_SLOT_OFFSET):
    /// the key width for direct layouts, a full pointer for indirect.
    #[must_use]
    pub fn slot_width(&self) -> usize {
        match self.key_kind {
            KeyKind::Direct => self.key_width,
            KeyKind::Indirect => 8,
        }
    }

    /// Loads needed to obtain a node's key (1 direct, 2 indirect).
    #[must_use]
    pub fn key_loads(&self) -> usize {
        match self.key_kind {
            KeyKind::Direct => 1,
            KeyKind::Indirect => 2,
        }
    }

    /// Bytes of the bucket array for `buckets` buckets.
    #[must_use]
    pub fn bucket_array_bytes(&self, buckets: usize) -> usize {
        buckets * Self::HEADER_STRIDE
    }

    /// Bytes of the overflow pool for `nodes` nodes.
    #[must_use]
    pub fn node_pool_bytes(&self, nodes: usize) -> usize {
        nodes * Self::NODE_STRIDE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_layouts() {
        assert_eq!(NodeLayout::kernel4().key_width, 4);
        assert_eq!(NodeLayout::kernel4().key_kind, KeyKind::Direct);
        assert_eq!(NodeLayout::indirect8().key_loads(), 2);
        assert_eq!(NodeLayout::direct8().key_loads(), 1);
    }

    #[test]
    fn slot_width_indirect_is_pointer() {
        assert_eq!(NodeLayout::kernel4().slot_width(), 4);
        assert_eq!(NodeLayout::indirect8().slot_width(), 8);
        assert_eq!(
            NodeLayout {
                key_width: 4,
                key_kind: KeyKind::Indirect
            }
            .slot_width(),
            8
        );
    }

    #[test]
    fn sizes() {
        let l = NodeLayout::direct8();
        assert_eq!(l.bucket_array_bytes(100), 3200);
        assert_eq!(l.node_pool_bytes(10), 240);
    }

    #[test]
    fn field_offsets_do_not_overlap() {
        // Checked at compile time; the test documents the invariant.
        const {
            assert!(NodeLayout::HEADER_COUNT_OFFSET + 8 <= NodeLayout::HEADER_SLOT_OFFSET);
            assert!(NodeLayout::HEADER_SLOT_OFFSET + 8 <= NodeLayout::HEADER_PAYLOAD_OFFSET);
            assert!(NodeLayout::HEADER_PAYLOAD_OFFSET + 8 <= NodeLayout::HEADER_NEXT_OFFSET);
            assert!(NodeLayout::HEADER_NEXT_OFFSET + 8 <= NodeLayout::HEADER_STRIDE);
            assert!(NodeLayout::NODE_SLOT_OFFSET + 8 <= NodeLayout::NODE_PAYLOAD_OFFSET);
            assert!(NodeLayout::NODE_PAYLOAD_OFFSET + 8 <= NodeLayout::NODE_NEXT_OFFSET);
            assert!(NodeLayout::NODE_NEXT_OFFSET + 8 <= NodeLayout::NODE_STRIDE);
        }
    }
}
