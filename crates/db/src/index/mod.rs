//! Index structures: the bucket-chained hash index the paper
//! accelerates, its physical layout descriptors, and a B+-tree used by
//! the "other index structures" extension (paper Section 7).

mod btree;
mod hash_index;
mod layout;
mod shard;

pub use btree::{BTreeExport, BTreeIndex};
pub use hash_index::{Bucket, HashIndex, IndexStats, Node, NONE};
pub use layout::{KeyKind, NodeLayout};
pub use shard::{build_range_sharded, build_sharded, partition_pairs, partition_range};
