//! The bucket-chained hash index of the paper's Section 2.2.
//!
//! Each bucket has a *header node* that "combines minimal status
//! information (e.g., number of items per bucket) with the first node of
//! the bucket, potentially eliminating a pointer dereference for the
//! first node". Overflow nodes live in a pool and are linked by index.

use crate::hash::HashRecipe;

/// Sentinel for "no next node".
pub const NONE: u32 = u32::MAX;

/// A bucket header: status word plus the first node inline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bucket {
    /// Number of entries in this bucket (0 = empty).
    pub count: u32,
    /// Key of the inline first node (valid when `count > 0`).
    pub key: u64,
    /// Payload of the inline first node.
    pub payload: u64,
    /// Pool index of the second node, or [`NONE`].
    pub next: u32,
}

impl Bucket {
    const EMPTY: Bucket = Bucket {
        count: 0,
        key: 0,
        payload: 0,
        next: NONE,
    };
}

/// An overflow node in the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Node {
    /// The entry's key.
    pub key: u64,
    /// The entry's payload.
    pub payload: u64,
    /// Pool index of the next node, or [`NONE`].
    pub next: u32,
}

/// Build- and shape-statistics of a [`HashIndex`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexStats {
    /// Total entries.
    pub entries: usize,
    /// Number of buckets.
    pub buckets: usize,
    /// Buckets with no entries.
    pub empty_buckets: usize,
    /// Mean entries per non-empty bucket.
    pub mean_chain: f64,
    /// Longest chain (entries in the fullest bucket).
    pub max_chain: usize,
}

/// A hash index mapping `u64` keys to `u64` payloads (duplicates
/// allowed), probed exactly like Listing 1 of the paper: hash, then walk
/// the node list comparing keys.
#[derive(Clone, Debug)]
pub struct HashIndex {
    recipe: HashRecipe,
    buckets: Vec<Bucket>,
    nodes: Vec<Node>,
}

impl HashIndex {
    /// Builds an index over `pairs` with at least `min_buckets` buckets
    /// (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `min_buckets` is zero.
    #[must_use]
    pub fn build(
        recipe: HashRecipe,
        min_buckets: usize,
        pairs: impl IntoIterator<Item = (u64, u64)>,
    ) -> HashIndex {
        assert!(min_buckets > 0, "need at least one bucket");
        let bucket_count = min_buckets.next_power_of_two();
        let mut index = HashIndex {
            recipe,
            buckets: vec![Bucket::EMPTY; bucket_count],
            nodes: Vec::new(),
        };
        for (key, payload) in pairs {
            index.insert(key, payload);
        }
        index
    }

    fn insert(&mut self, key: u64, payload: u64) {
        let b = self.recipe.bucket_of(key, self.buckets.len() as u64) as usize;
        let bucket = &mut self.buckets[b];
        if bucket.count == 0 {
            bucket.key = key;
            bucket.payload = payload;
            bucket.next = NONE;
        } else {
            // Prepend after the header to keep insertion O(1).
            self.nodes.push(Node {
                key,
                payload,
                next: bucket.next,
            });
            bucket.next = (self.nodes.len() - 1) as u32;
        }
        bucket.count += 1;
    }

    /// The hash recipe used for key placement.
    #[must_use]
    pub fn recipe(&self) -> &HashRecipe {
        &self.recipe
    }

    /// Bucket array (for materialization into simulated memory).
    #[must_use]
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Overflow node pool.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of buckets (a power of two).
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.count as usize).sum()
    }

    /// Whether the index holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the first payload stored under `key`.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<u64> {
        let mut found = None;
        self.walk(key, |payload| {
            found = Some(payload);
            false
        });
        found
    }

    /// Collects every payload stored under `key` (duplicates supported).
    #[must_use]
    pub fn lookup_all(&self, key: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.walk(key, |payload| {
            out.push(payload);
            true
        });
        out
    }

    /// Number of nodes (header included) compared while probing `key` —
    /// the walk length the paper's node-list traversal pays for.
    #[must_use]
    pub fn probe_visits(&self, key: u64) -> usize {
        let b = self.recipe.bucket_of(key, self.buckets.len() as u64) as usize;
        let bucket = &self.buckets[b];
        if bucket.count == 0 {
            return 1; // header status checked
        }
        let mut visits = 1;
        let mut next = bucket.next;
        while next != NONE {
            visits += 1;
            next = self.nodes[next as usize].next;
        }
        visits
    }

    /// Like [`walk`](HashIndex::walk), but returns the number of nodes
    /// (header included) touched — the traversal length a walker pays.
    pub fn walk_counted(&self, key: u64, mut visit: impl FnMut(u64) -> bool) -> usize {
        let b = self.recipe.bucket_of(key, self.buckets.len() as u64) as usize;
        let bucket = &self.buckets[b];
        if bucket.count == 0 {
            return 1;
        }
        let mut visits = 1;
        if bucket.key == key && !visit(bucket.payload) {
            return visits;
        }
        let mut next = bucket.next;
        while next != NONE {
            visits += 1;
            let node = &self.nodes[next as usize];
            if node.key == key && !visit(node.payload) {
                return visits;
            }
            next = node.next;
        }
        visits
    }

    /// Walks the bucket for `key`, invoking `visit` with each matching
    /// payload; the closure returns `false` to stop early.
    pub fn walk(&self, key: u64, mut visit: impl FnMut(u64) -> bool) {
        let b = self.recipe.bucket_of(key, self.buckets.len() as u64) as usize;
        let bucket = &self.buckets[b];
        if bucket.count == 0 {
            return;
        }
        if bucket.key == key && !visit(bucket.payload) {
            return;
        }
        let mut next = bucket.next;
        while next != NONE {
            let node = &self.nodes[next as usize];
            if node.key == key && !visit(node.payload) {
                return;
            }
            next = node.next;
        }
    }

    /// Shape statistics.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        let buckets = self.buckets.len();
        let empty = self.buckets.iter().filter(|b| b.count == 0).count();
        let entries = self.len();
        let max_chain = self
            .buckets
            .iter()
            .map(|b| b.count as usize)
            .max()
            .unwrap_or(0);
        let non_empty = buckets - empty;
        IndexStats {
            entries,
            buckets,
            empty_buckets: empty,
            mean_chain: if non_empty == 0 {
                0.0
            } else {
                entries as f64 / non_empty as f64
            },
            max_chain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(pairs: &[(u64, u64)]) -> HashIndex {
        HashIndex::build(HashRecipe::robust64(), 64, pairs.iter().copied())
    }

    #[test]
    fn empty_index() {
        let idx = index_of(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.lookup(1), None);
        assert_eq!(idx.probe_visits(1), 1);
    }

    #[test]
    fn lookup_present_and_absent() {
        let idx = index_of(&[(1, 10), (2, 20), (3, 30)]);
        assert_eq!(idx.lookup(2), Some(20));
        assert_eq!(idx.lookup(99), None);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn duplicates_all_found() {
        let idx = index_of(&[(7, 1), (7, 2), (7, 3)]);
        let mut all = idx.lookup_all(7);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3]);
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let idx = HashIndex::build(HashRecipe::robust64(), 100, std::iter::empty());
        assert_eq!(idx.bucket_count(), 128);
    }

    #[test]
    fn chains_form_under_load() {
        // 4 buckets, 64 keys: average chain 16.
        let pairs: Vec<(u64, u64)> = (0..64).map(|k| (k, k)).collect();
        let idx = HashIndex::build(HashRecipe::robust64(), 4, pairs.iter().copied());
        let stats = idx.stats();
        assert_eq!(stats.entries, 64);
        assert_eq!(stats.buckets, 4);
        assert!(stats.max_chain >= 8, "max chain {}", stats.max_chain);
        // Every key still findable.
        for k in 0..64 {
            assert_eq!(idx.lookup(k), Some(k), "key {k}");
        }
    }

    #[test]
    fn probe_visits_counts_chain() {
        let pairs: Vec<(u64, u64)> = (0..32).map(|k| (k, k)).collect();
        let idx = HashIndex::build(HashRecipe::robust64(), 4, pairs.iter().copied());
        let total: usize = (0..32).map(|k| idx.probe_visits(k)).sum();
        // Visiting a bucket of depth d costs d node touches; summed over
        // all keys in the index this is sum(d_b^2 over buckets)/... at
        // least one per key.
        assert!(total >= 32);
    }

    #[test]
    fn header_inline_first_node() {
        // A single-entry bucket must not allocate pool nodes.
        let idx = index_of(&[(5, 50)]);
        assert_eq!(idx.nodes().len(), 0);
        assert_eq!(idx.lookup(5), Some(50));
    }

    #[test]
    fn stats_on_uniform_fill() {
        let pairs: Vec<(u64, u64)> = (0..1024).map(|k| (k * 3, k)).collect();
        let idx = HashIndex::build(HashRecipe::robust64(), 1024, pairs.iter().copied());
        let s = idx.stats();
        assert_eq!(s.entries, 1024);
        assert!(s.mean_chain < 3.0, "mean chain {}", s.mean_chain);
    }
}
