//! The bucket-chained hash index of the paper's Section 2.2.
//!
//! Each bucket has a *header node* that "combines minimal status
//! information (e.g., number of items per bucket) with the first node of
//! the bucket, potentially eliminating a pointer dereference for the
//! first node". Overflow nodes live in a pool and are linked by index.
//!
//! The index is **mutable**: [`insert`](HashIndex::insert),
//! [`delete`](HashIndex::delete), and [`update`](HashIndex::update)
//! serve the online write path. Unlinked overflow nodes are never freed
//! directly — their pool slots are *retired* into an epoch list (see
//! [`crate::epoch`]) and reused only once no walker pinned at an older
//! epoch remains in flight, so an in-flight probe holding a node index
//! across a yield can never observe the slot repurposed.

use std::sync::Arc;

use crate::epoch::{EpochDomain, RetireList};
use crate::hash::HashRecipe;

/// Sentinel for "no next node".
pub const NONE: u32 = u32::MAX;

/// A bucket header: status word plus the first node inline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bucket {
    /// Number of entries in this bucket (0 = empty).
    pub count: u32,
    /// Key of the inline first node (valid when `count > 0`).
    pub key: u64,
    /// Payload of the inline first node.
    pub payload: u64,
    /// Pool index of the second node, or [`NONE`].
    pub next: u32,
}

impl Bucket {
    const EMPTY: Bucket = Bucket {
        count: 0,
        key: 0,
        payload: 0,
        next: NONE,
    };
}

/// An overflow node in the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Node {
    /// The entry's key.
    pub key: u64,
    /// The entry's payload.
    pub payload: u64,
    /// Pool index of the next node, or [`NONE`].
    pub next: u32,
}

/// Build- and shape-statistics of a [`HashIndex`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexStats {
    /// Total entries.
    pub entries: usize,
    /// Number of buckets.
    pub buckets: usize,
    /// Buckets with no entries.
    pub empty_buckets: usize,
    /// Mean entries per non-empty bucket.
    pub mean_chain: f64,
    /// Longest chain (entries in the fullest bucket).
    pub max_chain: usize,
}

/// A hash index mapping `u64` keys to `u64` payloads (duplicates
/// allowed), probed exactly like Listing 1 of the paper: hash, then walk
/// the node list comparing keys.
#[derive(Clone, Debug)]
pub struct HashIndex {
    recipe: HashRecipe,
    buckets: Vec<Bucket>,
    nodes: Vec<Node>,
    /// Entry count (buckets' `count` fields summed, maintained online).
    len: usize,
    /// Retired/free overflow-pool slots awaiting epoch-safe reuse.
    retire: RetireList,
    /// The reclamation domain mutations stamp retirements against.
    domain: Arc<EpochDomain>,
}

impl HashIndex {
    /// Builds an index over `pairs` with at least `min_buckets` buckets
    /// (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `min_buckets` is zero.
    #[must_use]
    pub fn build(
        recipe: HashRecipe,
        min_buckets: usize,
        pairs: impl IntoIterator<Item = (u64, u64)>,
    ) -> HashIndex {
        assert!(min_buckets > 0, "need at least one bucket");
        let bucket_count = min_buckets.next_power_of_two();
        let mut index = HashIndex {
            recipe,
            buckets: vec![Bucket::EMPTY; bucket_count],
            nodes: Vec::new(),
            len: 0,
            retire: RetireList::default(),
            domain: EpochDomain::new(),
        };
        for (key, payload) in pairs {
            index.insert(key, payload);
        }
        index
    }

    /// Attaches the epoch domain mutations stamp retirements against —
    /// call once, before serving, so all of a service's indexes share
    /// one domain (and its `widx_epoch_*` gauges).
    pub fn set_domain(&mut self, domain: Arc<EpochDomain>) {
        self.domain = domain;
    }

    /// The epoch domain this index retires into.
    #[must_use]
    pub fn domain(&self) -> &Arc<EpochDomain> {
        &self.domain
    }

    /// Inserts one `(key, payload)` entry (duplicates allowed).
    ///
    /// Reuses a reclaimed pool slot when one is free; otherwise grows
    /// the pool.
    pub fn insert(&mut self, key: u64, payload: u64) {
        let b = self.recipe.bucket_of(key, self.buckets.len() as u64) as usize;
        let bucket = &mut self.buckets[b];
        if bucket.count == 0 {
            bucket.key = key;
            bucket.payload = payload;
            bucket.next = NONE;
        } else {
            // Prepend after the header to keep insertion O(1).
            let node = Node {
                key,
                payload,
                next: bucket.next,
            };
            let slot = match self.retire.alloc() {
                Some(slot) => {
                    self.nodes[slot as usize] = node;
                    slot
                }
                None => {
                    self.nodes.push(node);
                    (self.nodes.len() - 1) as u32
                }
            };
            self.buckets[b].next = slot;
        }
        self.buckets[b].count += 1;
        self.len += 1;
    }

    /// Removes **every** entry stored under `key`, returning how many
    /// were removed. Unlinked overflow nodes are retired at the current
    /// epoch, not freed.
    pub fn delete(&mut self, key: u64) -> usize {
        let b = self.recipe.bucket_of(key, self.buckets.len() as u64) as usize;
        if self.buckets[b].count == 0 {
            return 0;
        }
        let stamp = self.domain.current();
        let mut removed = 0usize;
        // Pass 1: unlink matching overflow nodes (the header is handled
        // after, so a promoted node is guaranteed not to match).
        let mut cur = self.buckets[b].next;
        let mut prev: Option<u32> = None;
        while cur != NONE {
            let node = self.nodes[cur as usize];
            if node.key == key {
                match prev {
                    Some(p) => self.nodes[p as usize].next = node.next,
                    None => self.buckets[b].next = node.next,
                }
                self.retire.retire(cur, stamp, &self.domain);
                removed += 1;
            } else {
                prev = Some(cur);
            }
            cur = node.next;
        }
        // Pass 2: the inline header entry.
        if self.buckets[b].key == key {
            let first = self.buckets[b].next;
            if first == NONE {
                // Bucket drains completely below.
            } else {
                // Promote the first surviving overflow node into the
                // header and retire its pool slot.
                let node = self.nodes[first as usize];
                self.buckets[b].key = node.key;
                self.buckets[b].payload = node.payload;
                self.buckets[b].next = node.next;
                self.retire.retire(first, stamp, &self.domain);
            }
            removed += 1;
        }
        self.buckets[b].count -= removed as u32;
        if self.buckets[b].count == 0 {
            self.buckets[b] = Bucket::EMPTY;
        }
        self.len -= removed;
        removed
    }

    /// Replaces every entry under `key` with the single entry `(key,
    /// payload)`. Returns `true` if at least one entry existed (the
    /// update applied); `false` leaves the index unchanged — an update
    /// never inserts a missing key.
    pub fn update(&mut self, key: u64, payload: u64) -> bool {
        if self.delete(key) == 0 {
            return false;
        }
        self.insert(key, payload);
        true
    }

    /// Moves every retired pool slot whose epoch stamp is older than
    /// all pinned epochs to the free list; returns how many moved.
    pub fn reclaim(&mut self) -> usize {
        self.retire.reclaim(&self.domain)
    }

    /// Pool slots retired and not yet reclaimed.
    #[must_use]
    pub fn retired_nodes(&self) -> usize {
        self.retire.retired_len()
    }

    /// Pool slots reclaimed and ready for reuse.
    #[must_use]
    pub fn free_nodes(&self) -> usize {
        self.retire.free_len()
    }

    /// The hash recipe used for key placement.
    #[must_use]
    pub fn recipe(&self) -> &HashRecipe {
        &self.recipe
    }

    /// Bucket array (for materialization into simulated memory).
    #[must_use]
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Overflow node pool.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of buckets (a power of two).
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the first payload stored under `key`.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<u64> {
        let mut found = None;
        self.walk(key, |payload| {
            found = Some(payload);
            false
        });
        found
    }

    /// Collects every payload stored under `key` (duplicates supported).
    #[must_use]
    pub fn lookup_all(&self, key: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.walk(key, |payload| {
            out.push(payload);
            true
        });
        out
    }

    /// Number of nodes (header included) compared while probing `key` —
    /// the walk length the paper's node-list traversal pays for.
    #[must_use]
    pub fn probe_visits(&self, key: u64) -> usize {
        let b = self.recipe.bucket_of(key, self.buckets.len() as u64) as usize;
        let bucket = &self.buckets[b];
        if bucket.count == 0 {
            return 1; // header status checked
        }
        let mut visits = 1;
        let mut next = bucket.next;
        while next != NONE {
            visits += 1;
            next = self.nodes[next as usize].next;
        }
        visits
    }

    /// Like [`walk`](HashIndex::walk), but returns the number of nodes
    /// (header included) touched — the traversal length a walker pays.
    pub fn walk_counted(&self, key: u64, mut visit: impl FnMut(u64) -> bool) -> usize {
        let b = self.recipe.bucket_of(key, self.buckets.len() as u64) as usize;
        let bucket = &self.buckets[b];
        if bucket.count == 0 {
            return 1;
        }
        let mut visits = 1;
        if bucket.key == key && !visit(bucket.payload) {
            return visits;
        }
        let mut next = bucket.next;
        while next != NONE {
            visits += 1;
            let node = &self.nodes[next as usize];
            if node.key == key && !visit(node.payload) {
                return visits;
            }
            next = node.next;
        }
        visits
    }

    /// Walks the bucket for `key`, invoking `visit` with each matching
    /// payload; the closure returns `false` to stop early.
    pub fn walk(&self, key: u64, mut visit: impl FnMut(u64) -> bool) {
        let b = self.recipe.bucket_of(key, self.buckets.len() as u64) as usize;
        let bucket = &self.buckets[b];
        if bucket.count == 0 {
            return;
        }
        if bucket.key == key && !visit(bucket.payload) {
            return;
        }
        let mut next = bucket.next;
        while next != NONE {
            let node = &self.nodes[next as usize];
            if node.key == key && !visit(node.payload) {
                return;
            }
            next = node.next;
        }
    }

    /// Shape statistics.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        let buckets = self.buckets.len();
        let empty = self.buckets.iter().filter(|b| b.count == 0).count();
        let entries = self.len();
        let max_chain = self
            .buckets
            .iter()
            .map(|b| b.count as usize)
            .max()
            .unwrap_or(0);
        let non_empty = buckets - empty;
        IndexStats {
            entries,
            buckets,
            empty_buckets: empty,
            mean_chain: if non_empty == 0 {
                0.0
            } else {
                entries as f64 / non_empty as f64
            },
            max_chain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(pairs: &[(u64, u64)]) -> HashIndex {
        HashIndex::build(HashRecipe::robust64(), 64, pairs.iter().copied())
    }

    #[test]
    fn empty_index() {
        let idx = index_of(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.lookup(1), None);
        assert_eq!(idx.probe_visits(1), 1);
    }

    #[test]
    fn lookup_present_and_absent() {
        let idx = index_of(&[(1, 10), (2, 20), (3, 30)]);
        assert_eq!(idx.lookup(2), Some(20));
        assert_eq!(idx.lookup(99), None);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn duplicates_all_found() {
        let idx = index_of(&[(7, 1), (7, 2), (7, 3)]);
        let mut all = idx.lookup_all(7);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3]);
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let idx = HashIndex::build(HashRecipe::robust64(), 100, std::iter::empty());
        assert_eq!(idx.bucket_count(), 128);
    }

    #[test]
    fn chains_form_under_load() {
        // 4 buckets, 64 keys: average chain 16.
        let pairs: Vec<(u64, u64)> = (0..64).map(|k| (k, k)).collect();
        let idx = HashIndex::build(HashRecipe::robust64(), 4, pairs.iter().copied());
        let stats = idx.stats();
        assert_eq!(stats.entries, 64);
        assert_eq!(stats.buckets, 4);
        assert!(stats.max_chain >= 8, "max chain {}", stats.max_chain);
        // Every key still findable.
        for k in 0..64 {
            assert_eq!(idx.lookup(k), Some(k), "key {k}");
        }
    }

    #[test]
    fn probe_visits_counts_chain() {
        let pairs: Vec<(u64, u64)> = (0..32).map(|k| (k, k)).collect();
        let idx = HashIndex::build(HashRecipe::robust64(), 4, pairs.iter().copied());
        let total: usize = (0..32).map(|k| idx.probe_visits(k)).sum();
        // Visiting a bucket of depth d costs d node touches; summed over
        // all keys in the index this is sum(d_b^2 over buckets)/... at
        // least one per key.
        assert!(total >= 32);
    }

    #[test]
    fn header_inline_first_node() {
        // A single-entry bucket must not allocate pool nodes.
        let idx = index_of(&[(5, 50)]);
        assert_eq!(idx.nodes().len(), 0);
        assert_eq!(idx.lookup(5), Some(50));
    }

    #[test]
    fn insert_then_lookup_online() {
        let mut idx = index_of(&[]);
        for k in 0..500u64 {
            idx.insert(k, k * 2);
        }
        assert_eq!(idx.len(), 500);
        for k in 0..500u64 {
            assert_eq!(idx.lookup(k), Some(k * 2), "key {k}");
        }
    }

    #[test]
    fn delete_removes_all_duplicates_and_reports_count() {
        let mut idx = index_of(&[(7, 1), (7, 2), (7, 3), (9, 4)]);
        assert_eq!(idx.delete(7), 3);
        assert_eq!(idx.lookup_all(7), Vec::<u64>::new());
        assert_eq!(idx.lookup(9), Some(4));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.delete(7), 0, "second delete is a miss");
        assert!(idx.retired_nodes() + idx.free_nodes() > 0);
    }

    #[test]
    fn delete_promotes_surviving_overflow_into_header() {
        // Force one bucket: header holds the first insert, overflow the
        // rest. Deleting the header's key must keep the others findable.
        let pairs: Vec<(u64, u64)> = vec![(1, 10), (2, 20), (3, 30)];
        let mut idx = HashIndex::build(HashRecipe::robust64(), 1, pairs);
        for k in [1u64, 2, 3] {
            assert_eq!(idx.delete(k), 1, "key {k}");
            for other in [1u64, 2, 3] {
                let want = if other > k { Some(other * 10) } else { None };
                assert_eq!(idx.lookup(other), want, "after deleting {k}");
            }
        }
        assert!(idx.is_empty());
    }

    #[test]
    fn update_replaces_all_or_misses() {
        let mut idx = index_of(&[(5, 1), (5, 2), (6, 3)]);
        assert!(idx.update(5, 99));
        assert_eq!(idx.lookup_all(5), vec![99]);
        assert!(!idx.update(42, 7), "update never inserts");
        assert_eq!(idx.lookup(42), None);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn retired_slots_reused_only_after_reclaim() {
        let mut idx = HashIndex::build(HashRecipe::robust64(), 1, (0..8u64).map(|k| (k, k)));
        let pool = idx.nodes().len();
        assert_eq!(idx.delete(3), 1);
        // No reclaim yet: the retired slot must not be reused.
        idx.insert(100, 100);
        assert_eq!(idx.nodes().len(), pool + 1, "grew instead of reusing");
        // The stamp was taken at the current epoch, which is never safe;
        // one advance makes a quiescent domain reclaim it.
        idx.domain().advance();
        assert_eq!(idx.reclaim(), 1, "quiescent domain reclaims after advance");
        idx.insert(101, 101);
        assert_eq!(idx.nodes().len(), pool + 1, "reused the reclaimed slot");
        for k in (0..8u64).filter(|k| *k != 3).chain([100, 101]) {
            assert_eq!(idx.lookup(k), Some(k), "key {k}");
        }
    }

    #[test]
    fn pinned_epoch_blocks_reuse() {
        let mut idx = HashIndex::build(HashRecipe::robust64(), 1, (0..4u64).map(|k| (k, k)));
        let domain = idx.domain().clone();
        let worker = domain.register();
        let pin = worker.pin();
        idx.delete(2);
        assert_eq!(idx.reclaim(), 0, "pin predates the retirement");
        assert_eq!(idx.retired_nodes(), 1);
        drop(pin);
        domain.advance();
        assert_eq!(idx.reclaim(), 1);
        assert_eq!(idx.retired_nodes(), 0);
        assert_eq!(domain.reclaimed(), 1);
    }

    #[test]
    fn mutation_oracle_against_std_hashmap() {
        use std::collections::HashMap;
        let mut idx = HashIndex::build(HashRecipe::robust64(), 16, std::iter::empty());
        let mut oracle: HashMap<u64, Vec<u64>> = HashMap::new();
        // Deterministic mixed workload over a small key space so
        // inserts, deletes, updates, and misses all occur.
        let mut state = 0x9E3779B97F4A7C15u64;
        for step in 0..4000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) % 64;
            let payload = step;
            match state % 4 {
                0 | 1 => {
                    idx.insert(key, payload);
                    oracle.entry(key).or_default().push(payload);
                }
                2 => {
                    let removed = idx.delete(key);
                    let want = oracle.remove(&key).map_or(0, |v| v.len());
                    assert_eq!(removed, want, "delete {key} at step {step}");
                }
                _ => {
                    let applied = idx.update(key, payload);
                    match oracle.get_mut(&key) {
                        Some(v) if !v.is_empty() => {
                            assert!(applied);
                            v.clear();
                            v.push(payload);
                        }
                        _ => assert!(!applied),
                    }
                }
            }
            if step % 512 == 0 {
                idx.reclaim();
            }
        }
        for key in 0..64u64 {
            let mut got = idx.lookup_all(key);
            got.sort_unstable();
            let mut want = oracle.get(&key).cloned().unwrap_or_default();
            want.sort_unstable();
            assert_eq!(got, want, "key {key}");
        }
        assert_eq!(idx.len(), oracle.values().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn stats_on_uniform_fill() {
        let pairs: Vec<(u64, u64)> = (0..1024).map(|k| (k * 3, k)).collect();
        let idx = HashIndex::build(HashRecipe::robust64(), 1024, pairs.iter().copied());
        let s = idx.stats();
        assert_eq!(s.entries, 1024);
        assert!(s.mean_chain < 3.0, "mean chain {}", s.mean_chain);
    }
}
