//! Shard-aware build path: partition `(key, payload)` streams by
//! [`HashRecipe::shard_of`] so each shard can build (and later serve)
//! its own independent [`HashIndex`](crate::index::HashIndex).
//!
//! This is the data-placement half of scaling the paper's design point
//! out to a socket: one Widx front-end (dispatcher + walkers) per shard,
//! each walking only index state it owns — no cross-shard pointers, no
//! synchronization on the probe path.

use crate::hash::HashRecipe;
use crate::index::HashIndex;

/// Splits `pairs` into `shards` disjoint build streams using
/// `recipe.shard_of` on the key. The concatenation of the returned
/// streams is a permutation of the input.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn partition_pairs(
    recipe: &HashRecipe,
    shards: usize,
    pairs: impl IntoIterator<Item = (u64, u64)>,
) -> Vec<Vec<(u64, u64)>> {
    assert!(shards > 0, "need at least one shard");
    let mut parts: Vec<Vec<(u64, u64)>> = (0..shards).map(|_| Vec::new()).collect();
    for (key, payload) in pairs {
        parts[recipe.shard_of(key, shards as u64) as usize].push((key, payload));
    }
    parts
}

/// Builds one [`HashIndex`] per shard from `pairs`, sizing each shard's
/// bucket array for its own entry count at the given target `load`
/// (entries per bucket, e.g. 1.0 for ~1 entry/bucket), with a floor of
/// `min_buckets` buckets per shard.
///
/// # Panics
///
/// Panics if `shards` or `min_buckets` is zero, or `load` is not
/// positive.
#[must_use]
pub fn build_sharded(
    recipe: &HashRecipe,
    shards: usize,
    min_buckets: usize,
    load: f64,
    pairs: impl IntoIterator<Item = (u64, u64)>,
) -> Vec<HashIndex> {
    assert!(min_buckets > 0, "need at least one bucket per shard");
    assert!(load > 0.0, "target load must be positive");
    partition_pairs(recipe, shards, pairs)
        .into_iter()
        .map(|part| {
            let want = (part.len() as f64 / load).ceil() as usize;
            HashIndex::build(recipe.clone(), want.max(min_buckets), part)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_a_permutation() {
        let recipe = HashRecipe::robust64();
        let pairs: Vec<(u64, u64)> = (0..500u64).map(|k| (k % 97, k)).collect();
        let parts = partition_pairs(&recipe, 3, pairs.iter().copied());
        assert_eq!(parts.len(), 3);
        let mut merged: Vec<(u64, u64)> = parts.concat();
        merged.sort_unstable();
        let mut want = pairs.clone();
        want.sort_unstable();
        assert_eq!(merged, want);
    }

    #[test]
    fn partition_routes_by_shard_of() {
        let recipe = HashRecipe::robust64();
        let parts = partition_pairs(&recipe, 4, (0..200u64).map(|k| (k, k)));
        for (s, part) in parts.iter().enumerate() {
            for (k, _) in part {
                assert_eq!(recipe.shard_of(*k, 4), s as u64);
            }
        }
    }

    #[test]
    fn sharded_build_finds_every_key_in_its_shard() {
        let recipe = HashRecipe::robust64();
        let pairs: Vec<(u64, u64)> = (0..1000u64).map(|k| (k, k * 10)).collect();
        let indexes = build_sharded(&recipe, 4, 16, 1.0, pairs.iter().copied());
        assert_eq!(indexes.len(), 4);
        let total: usize = indexes.iter().map(HashIndex::len).sum();
        assert_eq!(total, 1000);
        for k in 0..1000u64 {
            let s = recipe.shard_of(k, 4) as usize;
            assert_eq!(indexes[s].lookup(k), Some(k * 10), "key {k}");
            // And it lives nowhere else.
            for (other, idx) in indexes.iter().enumerate() {
                if other != s {
                    assert_eq!(idx.lookup(k), None, "key {k} leaked into shard {other}");
                }
            }
        }
    }

    #[test]
    fn load_controls_bucket_sizing() {
        let recipe = HashRecipe::robust64();
        let pairs: Vec<(u64, u64)> = (0..4096u64).map(|k| (k, k)).collect();
        let tight = build_sharded(&recipe, 2, 1, 4.0, pairs.iter().copied());
        let roomy = build_sharded(&recipe, 2, 1, 0.5, pairs.iter().copied());
        for (t, r) in tight.iter().zip(&roomy) {
            assert!(r.bucket_count() > t.bucket_count());
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = partition_pairs(&HashRecipe::robust64(), 0, std::iter::empty());
    }

    #[test]
    fn single_shard_degenerates_to_plain_build() {
        let recipe = HashRecipe::robust64();
        let parts = partition_pairs(&recipe, 1, (0..50u64).map(|k| (k, k)));
        assert_eq!(parts[0].len(), 50);
    }
}
