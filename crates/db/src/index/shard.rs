//! Shard-aware build path: partition `(key, payload)` streams by
//! [`HashRecipe::shard_of`] so each shard can build (and later serve)
//! its own independent [`HashIndex`](crate::index::HashIndex).
//!
//! This is the data-placement half of scaling the paper's design point
//! out to a socket: one Widx front-end (dispatcher + walkers) per shard,
//! each walking only index state it owns — no cross-shard pointers, no
//! synchronization on the probe path.

use crate::hash::HashRecipe;
use crate::index::{BTreeIndex, HashIndex};

/// Splits `pairs` into `shards` disjoint build streams using
/// `recipe.shard_of` on the key. The concatenation of the returned
/// streams is a permutation of the input.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn partition_pairs(
    recipe: &HashRecipe,
    shards: usize,
    pairs: impl IntoIterator<Item = (u64, u64)>,
) -> Vec<Vec<(u64, u64)>> {
    assert!(shards > 0, "need at least one shard");
    let mut parts: Vec<Vec<(u64, u64)>> = (0..shards).map(|_| Vec::new()).collect();
    for (key, payload) in pairs {
        parts[recipe.shard_of(key, shards as u64) as usize].push((key, payload));
    }
    parts
}

/// Builds one [`HashIndex`] per shard from `pairs`, sizing each shard's
/// bucket array for its own entry count at the given target `load`
/// (entries per bucket, e.g. 1.0 for ~1 entry/bucket), with a floor of
/// `min_buckets` buckets per shard.
///
/// # Panics
///
/// Panics if `shards` or `min_buckets` is zero, or `load` is not
/// positive.
#[must_use]
pub fn build_sharded(
    recipe: &HashRecipe,
    shards: usize,
    min_buckets: usize,
    load: f64,
    pairs: impl IntoIterator<Item = (u64, u64)>,
) -> Vec<HashIndex> {
    assert!(min_buckets > 0, "need at least one bucket per shard");
    assert!(load > 0.0, "target load must be positive");
    partition_pairs(recipe, shards, pairs)
        .into_iter()
        .map(|part| {
            let want = (part.len() as f64 / load).ceil() as usize;
            HashIndex::build(recipe.clone(), want.max(min_buckets), part)
        })
        .collect()
}

/// Splits `pairs` into `shards` contiguous key ranges of roughly equal
/// entry count — the *ordered* counterpart of [`partition_pairs`]:
/// boundary keys instead of hashing, so each shard owns one span of the
/// key space and cross-shard scans touch only adjacent shards.
///
/// Returns the per-shard entry streams (each key-sorted, stable — equal
/// keys keep their input order) and the `shards - 1` boundary keys:
/// shard `i` owns keys `k` with `boundaries[i - 1] <= k <
/// boundaries[i]` (unbounded at the ends). Duplicates of one key are
/// never split across shards, so a boundary is always a real key-change
/// point; trailing shards may be empty when the data has fewer distinct
/// keys than shards.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn partition_range(
    shards: usize,
    pairs: impl IntoIterator<Item = (u64, u64)>,
) -> (Vec<Vec<(u64, u64)>>, Vec<u64>) {
    assert!(shards > 0, "need at least one shard");
    let mut entries: Vec<(u64, u64)> = pairs.into_iter().collect();
    entries.sort_by_key(|(k, _)| *k);
    let len = entries.len();
    let mut parts = Vec::with_capacity(shards);
    let mut boundaries = Vec::with_capacity(shards.saturating_sub(1));
    let mut start = 0usize;
    for s in 1..=shards {
        let mut end = if s == shards { len } else { (len * s) / shards };
        end = end.max(start);
        // Push the split point past any duplicate run so equal keys
        // stay colocated.
        while end > start && end < len && entries[end].0 == entries[end - 1].0 {
            end += 1;
        }
        if s < shards {
            boundaries.push(if end < len {
                entries[end].0
            } else {
                // Everything is already placed; later shards are empty.
                entries.last().map_or(0, |(k, _)| k.saturating_add(1))
            });
        }
        parts.push(entries[start..end].to_vec());
        start = end;
    }
    (parts, boundaries)
}

/// Builds one [`BTreeIndex`] per range shard from `pairs` (see
/// [`partition_range`]), returning the trees and the boundary keys that
/// route to them.
///
/// # Panics
///
/// Panics if `shards` is zero or `fanout < 2`.
#[must_use]
pub fn build_range_sharded(
    fanout: usize,
    shards: usize,
    pairs: impl IntoIterator<Item = (u64, u64)>,
) -> (Vec<BTreeIndex>, Vec<u64>) {
    let (parts, boundaries) = partition_range(shards, pairs);
    let trees = parts
        .into_iter()
        .map(|part| BTreeIndex::build(fanout, part))
        .collect();
    (trees, boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_a_permutation() {
        let recipe = HashRecipe::robust64();
        let pairs: Vec<(u64, u64)> = (0..500u64).map(|k| (k % 97, k)).collect();
        let parts = partition_pairs(&recipe, 3, pairs.iter().copied());
        assert_eq!(parts.len(), 3);
        let mut merged: Vec<(u64, u64)> = parts.concat();
        merged.sort_unstable();
        let mut want = pairs.clone();
        want.sort_unstable();
        assert_eq!(merged, want);
    }

    #[test]
    fn partition_routes_by_shard_of() {
        let recipe = HashRecipe::robust64();
        let parts = partition_pairs(&recipe, 4, (0..200u64).map(|k| (k, k)));
        for (s, part) in parts.iter().enumerate() {
            for (k, _) in part {
                assert_eq!(recipe.shard_of(*k, 4), s as u64);
            }
        }
    }

    #[test]
    fn sharded_build_finds_every_key_in_its_shard() {
        let recipe = HashRecipe::robust64();
        let pairs: Vec<(u64, u64)> = (0..1000u64).map(|k| (k, k * 10)).collect();
        let indexes = build_sharded(&recipe, 4, 16, 1.0, pairs.iter().copied());
        assert_eq!(indexes.len(), 4);
        let total: usize = indexes.iter().map(HashIndex::len).sum();
        assert_eq!(total, 1000);
        for k in 0..1000u64 {
            let s = recipe.shard_of(k, 4) as usize;
            assert_eq!(indexes[s].lookup(k), Some(k * 10), "key {k}");
            // And it lives nowhere else.
            for (other, idx) in indexes.iter().enumerate() {
                if other != s {
                    assert_eq!(idx.lookup(k), None, "key {k} leaked into shard {other}");
                }
            }
        }
    }

    #[test]
    fn load_controls_bucket_sizing() {
        let recipe = HashRecipe::robust64();
        let pairs: Vec<(u64, u64)> = (0..4096u64).map(|k| (k, k)).collect();
        let tight = build_sharded(&recipe, 2, 1, 4.0, pairs.iter().copied());
        let roomy = build_sharded(&recipe, 2, 1, 0.5, pairs.iter().copied());
        for (t, r) in tight.iter().zip(&roomy) {
            assert!(r.bucket_count() > t.bucket_count());
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = partition_pairs(&HashRecipe::robust64(), 0, std::iter::empty());
    }

    #[test]
    fn single_shard_degenerates_to_plain_build() {
        let recipe = HashRecipe::robust64();
        let parts = partition_pairs(&recipe, 1, (0..50u64).map(|k| (k, k)));
        assert_eq!(parts[0].len(), 50);
    }

    #[test]
    fn range_partition_is_ordered_and_balanced() {
        let pairs: Vec<(u64, u64)> = (0..1000u64).rev().map(|k| (k, k * 3)).collect();
        let (parts, bounds) = partition_range(4, pairs);
        assert_eq!(parts.len(), 4);
        assert_eq!(bounds, vec![250, 500, 750]);
        for (s, part) in parts.iter().enumerate() {
            assert_eq!(part.len(), 250, "shard {s} balanced");
            assert!(
                part.windows(2).all(|w| w[0].0 <= w[1].0),
                "shard {s} sorted"
            );
        }
        // Concatenation in shard order is the full sorted stream.
        let merged: Vec<(u64, u64)> = parts.concat();
        assert_eq!(merged, (0..1000u64).map(|k| (k, k * 3)).collect::<Vec<_>>());
    }

    #[test]
    fn range_partition_keeps_duplicates_colocated_and_stable() {
        // One heavy key right at a would-be boundary.
        let mut pairs: Vec<(u64, u64)> = (0..10u64).map(|k| (k, 0)).collect();
        pairs.extend((0..30u64).map(|p| (10, p)));
        let (parts, bounds) = partition_range(4, pairs);
        let dup_shard: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.iter().any(|(k, _)| *k == 10))
            .map(|(s, _)| s)
            .collect();
        assert_eq!(dup_shard.len(), 1, "duplicates of 10 in one shard");
        let dups: Vec<u64> = parts[dup_shard[0]]
            .iter()
            .filter(|(k, _)| *k == 10)
            .map(|(_, p)| *p)
            .collect();
        assert_eq!(dups, (0..30u64).collect::<Vec<_>>(), "stable payload order");
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn range_partition_with_fewer_keys_than_shards() {
        let (parts, bounds) = partition_range(5, [(3u64, 0u64), (3, 1)]);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 1);
        assert_eq!(bounds.len(), 4);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        let (parts, bounds) = partition_range(3, std::iter::empty());
        assert!(parts.iter().all(Vec::is_empty));
        assert_eq!(bounds, vec![0, 0]);
    }

    #[test]
    fn range_sharded_trees_scan_their_own_spans() {
        let pairs: Vec<(u64, u64)> = (0..600u64).map(|k| (k, k + 1)).collect();
        let (trees, bounds) = build_range_sharded(8, 3, pairs);
        assert_eq!(trees.len(), 3);
        assert_eq!(bounds.len(), 2);
        let total: usize = trees.iter().map(BTreeIndex::len).sum();
        assert_eq!(total, 600);
        // Each tree's full scan stays inside its boundary span.
        for (s, tree) in trees.iter().enumerate() {
            for (k, _) in tree.range_scan(0, u64::MAX, usize::MAX) {
                if s > 0 {
                    assert!(k >= bounds[s - 1], "key {k} below shard {s}");
                }
                if s < bounds.len() {
                    assert!(k < bounds[s], "key {k} above shard {s}");
                }
            }
        }
    }
}
