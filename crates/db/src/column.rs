//! Typed columns — the storage unit of a column-store.

use std::fmt;

/// Logical type of a column's 64-bit-encoded values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ColumnType {
    /// 32-bit unsigned integers (stored zero-extended).
    U32,
    /// 64-bit unsigned integers.
    #[default]
    U64,
    /// IEEE-754 doubles stored by bit pattern ("double integers" in the
    /// paper's TPC-H query 20 discussion).
    F64Bits,
}

impl ColumnType {
    /// Bytes per value as stored in a physical column image.
    #[must_use]
    pub fn width(self) -> usize {
        match self {
            ColumnType::U32 => 4,
            ColumnType::U64 | ColumnType::F64Bits => 8,
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::U32 => write!(f, "u32"),
            ColumnType::U64 => write!(f, "u64"),
            ColumnType::F64Bits => write!(f, "f64"),
        }
    }
}

/// A named, typed column of 64-bit-encoded values.
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    name: String,
    ty: ColumnType,
    data: Vec<u64>,
}

impl Column {
    /// Creates a column from values already encoded as `u64`.
    ///
    /// # Panics
    ///
    /// Panics if a value does not fit the declared type (e.g. a `U32`
    /// column containing a value above `u32::MAX`).
    #[must_use]
    pub fn new(name: &str, ty: ColumnType, data: Vec<u64>) -> Column {
        if ty == ColumnType::U32 {
            assert!(
                data.iter().all(|v| *v <= u64::from(u32::MAX)),
                "u32 column `{name}` contains out-of-range values"
            );
        }
        Column {
            name: name.to_string(),
            ty,
            data,
        }
    }

    /// Creates an `F64Bits` column from doubles.
    #[must_use]
    pub fn from_f64(name: &str, values: &[f64]) -> Column {
        Column {
            name: name.to_string(),
            ty: ColumnType::F64Bits,
            data: values.iter().map(|v| v.to_bits()).collect(),
        }
    }

    /// The column's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The column's type.
    #[must_use]
    pub fn ty(&self) -> ColumnType {
        self.ty
    }

    /// Raw encoded values.
    #[must_use]
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The value at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn get(&self, row: usize) -> u64 {
        self.data[row]
    }

    /// Physical bytes of the column when laid out densely.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.len() * self.ty.width()
    }

    /// Iterates over the encoded values.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.data.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_width_and_size() {
        let c = Column::new("age", ColumnType::U32, vec![1, 2, 3]);
        assert_eq!(c.byte_size(), 12);
        assert_eq!(c.ty().width(), 4);
        assert_eq!(c.get(1), 2);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn u32_overflow_rejected() {
        let _ = Column::new("bad", ColumnType::U32, vec![u64::from(u32::MAX) + 1]);
    }

    #[test]
    fn f64_round_trip() {
        let c = Column::from_f64("price", &[1.5, -2.25]);
        assert_eq!(f64::from_bits(c.get(0)), 1.5);
        assert_eq!(f64::from_bits(c.get(1)), -2.25);
        assert_eq!(c.ty(), ColumnType::F64Bits);
    }

    #[test]
    fn iteration() {
        let c = Column::new("k", ColumnType::U64, vec![5, 6]);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![5, 6]);
        assert!(!c.is_empty());
    }
}
