//! Tables: named collections of equal-length columns.

use std::fmt;

use crate::column::{Column, ColumnType};

/// A relational table in column-store layout.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Creates a table from columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns have differing lengths or duplicate names.
    #[must_use]
    pub fn new(name: &str, columns: Vec<Column>) -> Table {
        if let Some(first) = columns.first() {
            assert!(
                columns.iter().all(|c| c.len() == first.len()),
                "all columns of `{name}` must have the same length"
            );
        }
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert!(
                    a.name() != b.name(),
                    "duplicate column `{}` in `{name}`",
                    a.name()
                );
            }
        }
        Table {
            name: name.to_string(),
            columns,
        }
    }

    /// The table's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// The columns in declaration order.
    #[must_use]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Looks up a column by name.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name() == name)
    }

    /// Looks up a column by name.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when the column is absent.
    #[must_use]
    pub fn expect_column(&self, name: &str) -> &Column {
        self.column(name)
            .unwrap_or_else(|| panic!("table `{}` has no column `{name}`", self.name))
    }

    /// Total bytes across all columns.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }

    /// Builds a single-column `u64` table — the common shape for join
    /// inputs in the microbenchmarks.
    #[must_use]
    pub fn single_u64(table_name: &str, column_name: &str, data: Vec<u64>) -> Table {
        Table::new(
            table_name,
            vec![Column::new(column_name, ColumnType::U64, data)],
        )
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({} rows, {} cols)",
            self.name,
            self.rows(),
            self.columns.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let t = Table::new(
            "a",
            vec![
                Column::new("age", ColumnType::U32, vec![10, 20]),
                Column::new("id", ColumnType::U64, vec![100, 200]),
            ],
        );
        assert_eq!(t.rows(), 2);
        assert_eq!(t.expect_column("age").get(1), 20);
        assert!(t.column("name").is_none());
        assert_eq!(t.byte_size(), 2 * 4 + 2 * 8);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_rejected() {
        let _ = Table::new(
            "bad",
            vec![
                Column::new("a", ColumnType::U64, vec![1]),
                Column::new("b", ColumnType::U64, vec![1, 2]),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        let _ = Table::new(
            "bad",
            vec![
                Column::new("a", ColumnType::U64, vec![1]),
                Column::new("a", ColumnType::U64, vec![2]),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn expect_column_panics_descriptively() {
        let t = Table::single_u64("t", "k", vec![]);
        let _ = t.expect_column("missing");
    }
}
