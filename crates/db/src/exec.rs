//! A minimal instrumented executor: runs operator closures, attributes
//! wall time to the operator classes of the paper's Figure 2a (Index,
//! Scan, Sort & Join, Other), and reports the per-class breakdown.

use std::fmt;
use std::time::Instant;

/// Operator classes of Figure 2a.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Hash-index build and probe work.
    Index,
    /// Table scans.
    Scan,
    /// Sort and non-index join work.
    SortJoin,
    /// Everything else (aggregation, projection, glue).
    Other,
}

impl OpClass {
    /// All classes in Figure 2a's legend order.
    pub const ALL: [OpClass; 4] = [
        OpClass::Index,
        OpClass::Scan,
        OpClass::SortJoin,
        OpClass::Other,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpClass::Index => write!(f, "Index"),
            OpClass::Scan => write!(f, "Scan"),
            OpClass::SortJoin => write!(f, "Sort&Join"),
            OpClass::Other => write!(f, "Other"),
        }
    }
}

/// One timed operator invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpTiming {
    /// The operator's class.
    pub class: OpClass,
    /// A short operator name for reports.
    pub name: String,
    /// Wall time in nanoseconds.
    pub nanos: u64,
}

/// Records operator timings for one query execution.
#[derive(Clone, Debug, Default)]
pub struct QueryRun {
    timings: Vec<OpTiming>,
}

impl QueryRun {
    /// Creates an empty run.
    #[must_use]
    pub fn new() -> QueryRun {
        QueryRun::default()
    }

    /// Runs `f`, attributing its wall time to `class`, and returns its
    /// result.
    pub fn run<T>(&mut self, class: OpClass, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.timings.push(OpTiming {
            class,
            name: name.to_string(),
            nanos: t0.elapsed().as_nanos() as u64,
        });
        out
    }

    /// Records a pre-measured timing (for operators that time
    /// themselves, like [`crate::ops::hash_join`]).
    pub fn record(&mut self, class: OpClass, name: &str, nanos: u64) {
        self.timings.push(OpTiming {
            class,
            name: name.to_string(),
            nanos,
        });
    }

    /// All recorded timings in execution order.
    #[must_use]
    pub fn timings(&self) -> &[OpTiming] {
        &self.timings
    }

    /// Total nanoseconds across all operators.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.timings.iter().map(|t| t.nanos).sum()
    }

    /// Nanoseconds attributed to `class`.
    #[must_use]
    pub fn class_nanos(&self, class: OpClass) -> u64 {
        self.timings
            .iter()
            .filter(|t| t.class == class)
            .map(|t| t.nanos)
            .sum()
    }

    /// Fraction of total time in `class` (0 when nothing ran).
    #[must_use]
    pub fn class_fraction(&self, class: OpClass) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.class_nanos(class) as f64 / total as f64
        }
    }

    /// The Figure 2a row: fractions for Index / Scan / Sort&Join / Other.
    #[must_use]
    pub fn breakdown(&self) -> [f64; 4] {
        [
            self.class_fraction(OpClass::Index),
            self.class_fraction(OpClass::Scan),
            self.class_fraction(OpClass::SortJoin),
            self.class_fraction(OpClass::Other),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_time_to_classes() {
        let mut q = QueryRun::new();
        let v = q.run(OpClass::Scan, "scan", || 41 + 1);
        assert_eq!(v, 42);
        q.record(OpClass::Index, "probe", 1000);
        q.record(OpClass::Index, "build", 500);
        q.record(OpClass::Other, "agg", 500);
        assert_eq!(q.class_nanos(OpClass::Index), 1500);
        assert_eq!(q.timings().len(), 4);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut q = QueryRun::new();
        q.record(OpClass::Index, "i", 600);
        q.record(OpClass::Scan, "s", 300);
        q.record(OpClass::SortJoin, "j", 100);
        let b = q.breakdown();
        assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((b[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_zero() {
        let q = QueryRun::new();
        assert_eq!(q.total_nanos(), 0);
        assert_eq!(q.breakdown(), [0.0; 4]);
    }
}
