//! Property tests pinning the histogram algebra the telemetry layer
//! leans on: log₂ bucket boundaries, merge associativity and
//! commutativity (shard cells merge in arbitrary order), and snapshot
//! coherence under concurrent recording (counts only ever grow, and a
//! quiescent snapshot is exact).

use std::sync::Arc;

use proptest::prelude::*;
use widx_obs::{bucket_ceil, bucket_floor, bucket_of, AtomicHistogram, HistogramSnapshot};

fn filled(samples: &[u64]) -> HistogramSnapshot {
    let h = AtomicHistogram::new();
    for &ns in samples {
        h.record(ns);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in the bucket whose `[floor, ceil]` span
    /// contains it, and the spans tile the u64 line in order.
    #[test]
    fn bucket_boundaries_contain_their_values(ns in any::<u64>()) {
        let b = bucket_of(ns);
        prop_assert!(b < widx_obs::HIST_BUCKETS);
        prop_assert!(bucket_floor(b) <= ns, "floor({b}) > {ns}");
        prop_assert!(ns <= bucket_ceil(b), "{ns} > ceil({b})");
        if b > 0 {
            prop_assert_eq!(bucket_ceil(b - 1) + 1, bucket_floor(b));
        }
    }

    /// Quantiles of any non-empty histogram stay inside the observed
    /// `[min, max]` range and are monotone in `q`.
    #[test]
    fn quantiles_are_bounded_and_monotone(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        let snap = filled(&samples);
        prop_assert_eq!(snap.count(), samples.len() as u64);
        let min = *samples.iter().min().expect("non-empty");
        let max = *samples.iter().max().expect("non-empty");
        prop_assert_eq!((snap.min(), snap.max()), (min, max));
        let mut last = 0u64;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = snap.quantile(q);
            prop_assert!(v >= min && v <= max, "q{q} = {v} outside [{min}, {max}]");
            prop_assert!(v >= last, "quantiles must be monotone in q");
            last = v;
        }
    }

    /// Merging is commutative: `a ∪ b == b ∪ a`, field for field.
    /// Samples span every bucket but stay summable (realistic latency
    /// streams never overflow the u64 nanosecond sum).
    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(0u64..1 << 40, 0..100),
        b in prop::collection::vec(0u64..1 << 40, 0..100),
    ) {
        let (sa, sb) = (filled(&a), filled(&b));
        prop_assert_eq!(sa.merged(&sb), sb.merged(&sa));
    }

    /// Merging is associative: `(a ∪ b) ∪ c == a ∪ (b ∪ c)` — the
    /// registry may fold shard cells in any grouping.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..1 << 40, 0..80),
        b in prop::collection::vec(0u64..1 << 40, 0..80),
        c in prop::collection::vec(0u64..1 << 40, 0..80),
    ) {
        let (sa, sb, sc) = (filled(&a), filled(&b), filled(&c));
        prop_assert_eq!(sa.merged(&sb).merged(&sc), sa.merged(&sb.merged(&sc)));
        // And the merge of everything equals recording everything.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(sa.merged(&sb).merged(&sc), filled(&all));
    }
}

/// Snapshots taken while writers are mid-flight are coherent: the
/// derived count never decreases between snapshots, never exceeds what
/// has been recorded, and matches exactly once the writers join.
#[test]
fn snapshot_under_concurrent_record_is_coherent() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;
    let hist = Arc::new(AtomicHistogram::new());
    std::thread::scope(|scope| {
        for w in 0..WRITERS as u64 {
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    // Spread samples across many buckets.
                    hist.record(w * 1000 + (i % 61) * (1 << (i % 17)));
                }
            });
        }
        let mut last = 0u64;
        let total = (WRITERS as u64) * PER_WRITER;
        while last < total {
            let snap = hist.snapshot();
            let count = snap.count();
            assert!(count >= last, "count went backwards: {count} < {last}");
            assert!(count <= total, "count overshot: {count} > {total}");
            // A snapshot is internally consistent even mid-flight: the
            // derived count is the bucket sum by construction, and the
            // observed extremes bound every bucket with samples.
            if count > 0 {
                assert!(snap.min() <= snap.max());
            }
            last = count;
        }
    });
    let settled = hist.snapshot();
    assert_eq!(settled.count(), (WRITERS as u64) * PER_WRITER);
    assert_eq!(settled.min(), 0, "writer 0 records sample 0");
}
