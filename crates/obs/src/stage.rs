//! Stage-timing seam: attribute a request's life to pipeline phases.
//!
//! Every request passes through up to five phases between `submit` and the
//! reply bytes leaving the server. [`StageTimes`] holds one shared
//! [`AtomicHistogram`] per phase; any thread records into it lock-free and
//! any observer snapshots it live.

use std::time::Duration;

use crate::hist::{AtomicHistogram, HistogramSnapshot};

/// The phases of a request's life, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Submit to first admission by a worker (time spent in a shard queue).
    QueueWait,
    /// Batch open to batch flush (time spent waiting for co-batched work).
    BatchWait,
    /// Time spent actually walking the index, per batch.
    Walk,
    /// Time spent applying a write batch to the index (the shard worker
    /// is its shard's sole writer, so this is pure mutation time).
    Write,
    /// First part completed to last part completed (cross-shard gather).
    Gather,
    /// Reply frame encoded to reply bytes flushed to the socket.
    ReplyWrite,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::QueueWait,
        Stage::BatchWait,
        Stage::Walk,
        Stage::Write,
        Stage::Gather,
        Stage::ReplyWrite,
    ];

    /// Stable snake_case name, used in JSON and Prometheus exposition.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::BatchWait => "batch_wait",
            Stage::Walk => "walk",
            Stage::Write => "write",
            Stage::Gather => "gather",
            Stage::ReplyWrite => "reply_write",
        }
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        match self {
            Stage::QueueWait => 0,
            Stage::BatchWait => 1,
            Stage::Walk => 2,
            Stage::Write => 3,
            Stage::Gather => 4,
            Stage::ReplyWrite => 5,
        }
    }
}

/// One shared latency histogram per [`Stage`].
#[derive(Debug, Default)]
pub struct StageTimes {
    hists: [AtomicHistogram; 6],
}

impl StageTimes {
    /// Fresh, all-empty stage histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample for `stage`.
    #[inline]
    pub fn record(&self, stage: Stage, d: Duration) {
        self.hists[stage.index()].record_duration(d);
    }

    /// The histogram backing `stage`.
    pub fn hist(&self, stage: Stage) -> &AtomicHistogram {
        &self.hists[stage.index()]
    }

    /// Snapshot all six stages without resetting them.
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            per: std::array::from_fn(|i| self.hists[i].snapshot()),
        }
    }
}

/// Point-in-time copy of all six stage histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageSnapshot {
    per: [HistogramSnapshot; 6],
}

impl StageSnapshot {
    /// The snapshot for one stage.
    pub fn get(&self, stage: Stage) -> &HistogramSnapshot {
        &self.per[stage.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_record_independently() {
        let times = StageTimes::new();
        times.record(Stage::QueueWait, Duration::from_nanos(100));
        times.record(Stage::Walk, Duration::from_nanos(200));
        times.record(Stage::Walk, Duration::from_nanos(300));
        let snap = times.snapshot();
        assert_eq!(snap.get(Stage::QueueWait).count(), 1);
        assert_eq!(snap.get(Stage::Walk).count(), 2);
        assert_eq!(snap.get(Stage::Walk).sum_ns, 500);
        assert_eq!(snap.get(Stage::Gather).count(), 0);
        assert_eq!(snap.get(Stage::ReplyWrite).count(), 0);
        assert_eq!(snap.get(Stage::BatchWait), &HistogramSnapshot::default());
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "queue_wait",
                "batch_wait",
                "walk",
                "write",
                "gather",
                "reply_write"
            ]
        );
    }
}
