//! Minimal JSON helpers for the telemetry wire payload.
//!
//! The workspace carries no serde; stats payloads are small flat documents
//! written by hand and read back with naive key scans. These helpers are
//! deliberately not a JSON parser — they are just enough for benches and
//! tests to pull numeric fields out of documents this workspace itself
//! produced.

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn number_after(json: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let needle = format!("\"{key}\"");
    let at = json[from..].find(&needle)? + from;
    let rest = &json[at + needle.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E')
        })
        .unwrap_or(rest.len());
    let parsed: f64 = rest[..end].parse().ok()?;
    Some((parsed, at + needle.len()))
}

/// Find the first numeric value of `"key"` in `json`.
pub fn find_f64(json: &str, key: &str) -> Option<f64> {
    number_after(json, key, 0).map(|(v, _)| v)
}

/// Find the first numeric value of `"key"` in `json`, as a `u64`.
///
/// Returns `None` if the value is negative, fractional, or absent.
pub fn find_u64(json: &str, key: &str) -> Option<u64> {
    let v = find_f64(json, key)?;
    if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
        Some(v as u64)
    } else {
        None
    }
}

/// Find the first string value of `"key"` in `json`.
///
/// Returns the raw contents between the quotes — escapes are not
/// decoded, which is fine for the identifier-shaped strings (request
/// kinds, stage names) the telemetry documents carry.
pub fn find_str(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() && bytes[end] != b'"' {
        end += if bytes[end] == b'\\' { 2 } else { 1 };
    }
    (end <= bytes.len()).then(|| rest[..end.min(bytes.len())].to_string())
}

/// Find every numeric value of `"key"` in `json`, in document order.
pub fn find_all_f64(json: &str, key: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some((v, next)) = number_after(json, key, from) {
        out.push(v);
        from = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn find_helpers_scan_flat_documents() {
        let doc = r#"{"keys": 120, "rate": 3.5, "nested": {"keys": 7}, "neg": -2}"#;
        assert_eq!(find_u64(doc, "keys"), Some(120));
        assert_eq!(find_f64(doc, "rate"), Some(3.5));
        assert_eq!(find_u64(doc, "rate"), None);
        assert_eq!(find_u64(doc, "neg"), None);
        assert_eq!(find_f64(doc, "missing"), None);
        assert_eq!(find_all_f64(doc, "keys"), vec![120.0, 7.0]);
    }

    #[test]
    fn find_str_scans_string_fields() {
        let doc = r#"{"kind": "range_scan", "label": "a\"b", "n": 3}"#;
        assert_eq!(find_str(doc, "kind"), Some("range_scan".to_string()));
        assert_eq!(find_str(doc, "label"), Some("a\\\"b".to_string()));
        assert_eq!(find_str(doc, "n"), None);
        assert_eq!(find_str(doc, "missing"), None);
    }

    #[test]
    fn find_tolerates_whitespace_and_exponents() {
        let doc = "{ \"wall_ms\" :\n 12e2 }";
        assert_eq!(find_f64(doc, "wall_ms"), Some(1200.0));
    }
}
