//! Padded per-worker counter cells.
//!
//! Each worker thread owns exactly one [`WorkerCell`] and is the only writer
//! to it, so the relaxed read-modify-writes never contend; readers (the
//! `live_stats()` scrape path) only load. The cell is over-aligned so two
//! workers' cells never share a cache line even when stored contiguously.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::hist::{AtomicHistogram, HistogramSnapshot};

/// Why a batch was flushed, mirroring the serving layer's flush reasons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushKind {
    /// The batch reached its size target.
    Size,
    /// The batch deadline expired.
    Deadline,
    /// The worker was told to shut down mid-batch.
    Shutdown,
}

/// A padded, lock-free bundle of one worker's counters and latency histogram.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct WorkerCell {
    jobs: AtomicU64,
    batches: AtomicU64,
    keys: AtomicU64,
    matches: AtomicU64,
    size_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    shutdown_flushes: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    write_ops: AtomicU64,
    write_applied: AtomicU64,
    write_batches: AtomicU64,
    latency: AtomicHistogram,
}

#[inline]
fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl WorkerCell {
    /// A fresh all-zero cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count `n` admitted jobs (request parts).
    #[inline]
    pub fn add_jobs(&self, n: u64) {
        self.jobs.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `keys` probed keys and one completed batch flushed for `kind`.
    #[inline]
    pub fn add_batch(&self, keys: u64, kind: FlushKind) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.keys.fetch_add(keys, Ordering::Relaxed);
        let counter = match kind {
            FlushKind::Size => &self.size_flushes,
            FlushKind::Deadline => &self.deadline_flushes,
            FlushKind::Shutdown => &self.shutdown_flushes,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` emitted matches (or scan entries).
    #[inline]
    pub fn add_matches(&self, n: u64) {
        self.matches.fetch_add(n, Ordering::Relaxed);
    }

    /// Accumulate time spent walking the index.
    #[inline]
    pub fn add_busy(&self, d: Duration) {
        self.busy_ns.fetch_add(dur_ns(d), Ordering::Relaxed);
    }

    /// Accumulate time spent parked on the queue.
    #[inline]
    pub fn add_idle(&self, d: Duration) {
        self.idle_ns.fetch_add(dur_ns(d), Ordering::Relaxed);
    }

    /// Count one applied write batch: `ops` individual write operations
    /// of which `applied` took effect (an insert always applies; a
    /// delete/update of an absent key is a miss).
    #[inline]
    pub fn add_write_batch(&self, ops: u64, applied: u64) {
        self.write_batches.fetch_add(1, Ordering::Relaxed);
        self.write_ops.fetch_add(ops, Ordering::Relaxed);
        self.write_applied.fetch_add(applied, Ordering::Relaxed);
    }

    /// Record one end-to-end request latency observed at this worker.
    #[inline]
    pub fn record_latency(&self, d: Duration) {
        self.latency.record(dur_ns(d));
    }

    /// The cell's latency histogram.
    pub fn latency(&self) -> &AtomicHistogram {
        &self.latency
    }

    /// Read every counter without resetting anything.
    pub fn snapshot(&self) -> WorkerCellSnapshot {
        WorkerCellSnapshot {
            jobs: self.jobs.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            keys: self.keys.load(Ordering::Relaxed),
            matches: self.matches.load(Ordering::Relaxed),
            size_flushes: self.size_flushes.load(Ordering::Relaxed),
            deadline_flushes: self.deadline_flushes.load(Ordering::Relaxed),
            shutdown_flushes: self.shutdown_flushes.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            idle_ns: self.idle_ns.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            write_applied: self.write_applied.load(Ordering::Relaxed),
            write_batches: self.write_batches.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

/// Point-in-time copy of a [`WorkerCell`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerCellSnapshot {
    /// Admitted jobs (request parts).
    pub jobs: u64,
    /// Completed batches.
    pub batches: u64,
    /// Probed keys.
    pub keys: u64,
    /// Emitted matches / scan entries.
    pub matches: u64,
    /// Batches flushed because they reached the size target.
    pub size_flushes: u64,
    /// Batches flushed because the deadline expired.
    pub deadline_flushes: u64,
    /// Batches flushed by shutdown.
    pub shutdown_flushes: u64,
    /// Nanoseconds spent walking the index.
    pub busy_ns: u64,
    /// Nanoseconds spent parked on the queue.
    pub idle_ns: u64,
    /// Individual write operations (insert/delete/update) applied at
    /// this worker's shard.
    pub write_ops: u64,
    /// Write operations that took effect (inserts always; deletes and
    /// updates only when the key existed).
    pub write_applied: u64,
    /// Write batches applied at batch barriers.
    pub write_batches: u64,
    /// End-to-end request latencies observed at this worker.
    pub latency: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_counters_accumulate() {
        let cell = WorkerCell::new();
        cell.add_jobs(3);
        cell.add_batch(64, FlushKind::Size);
        cell.add_batch(5, FlushKind::Deadline);
        cell.add_batch(1, FlushKind::Shutdown);
        cell.add_matches(17);
        cell.add_busy(Duration::from_micros(10));
        cell.add_idle(Duration::from_micros(4));
        cell.add_write_batch(8, 6);
        cell.add_write_batch(2, 2);
        cell.record_latency(Duration::from_micros(1));
        let s = cell.snapshot();
        assert_eq!(s.jobs, 3);
        assert_eq!(s.batches, 3);
        assert_eq!(s.keys, 70);
        assert_eq!(s.matches, 17);
        assert_eq!(s.size_flushes, 1);
        assert_eq!(s.deadline_flushes, 1);
        assert_eq!(s.shutdown_flushes, 1);
        assert_eq!(s.busy_ns, 10_000);
        assert_eq!(s.idle_ns, 4_000);
        assert_eq!(s.write_ops, 10);
        assert_eq!(s.write_applied, 8);
        assert_eq!(s.write_batches, 2);
        assert_eq!(s.latency.count(), 1);
    }

    #[test]
    fn cells_are_padded_to_avoid_false_sharing() {
        assert!(std::mem::align_of::<WorkerCell>() >= 128);
        let fresh = WorkerCell::new().snapshot();
        assert_eq!(fresh, WorkerCellSnapshot::default());
    }
}
