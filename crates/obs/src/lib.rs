//! # widx-obs — live telemetry primitives
//!
//! Lock-free building blocks for observing the serving stack while it runs:
//!
//! - [`AtomicHistogram`] / [`HistogramSnapshot`]: fixed 64-bucket log2
//!   latency histograms, recordable from any thread, snapshot-without-reset,
//!   mergeable in any order.
//! - [`WorkerCell`] / [`WorkerCellSnapshot`]: a padded bundle of one
//!   worker's counters plus its latency histogram. Workers publish directly
//!   into their cell, so a shutdown join is just a final snapshot and
//!   `live_stats()` is the same snapshot taken earlier.
//! - [`Stage`] / [`StageTimes`]: the queue-wait / batch-wait / walk /
//!   gather / reply-write breakdown of a request's life.
//! - [`ReactorGauges`]: a padded pair of gauges one net-tier reactor
//!   re-publishes every event-loop pass (connections owned, unflushed
//!   reply bytes), stored contiguously without false sharing.
//! - [`PromText`]: Prometheus text-exposition builder.
//! - [`FlightRecorder`] / [`RequestTrace`]: the per-request trace seam — a
//!   bounded ring of completed traces (spans per stage plus walker-level
//!   [`WalkCounters`]) filled by head sampling and a tail slow-threshold.
//! - [`ThreadProfiler`] / [`ProfCell`] / [`ProfSnapshot`]: hardware
//!   counter windows (cycles, instructions, LLC/dTLB misses) scoped to
//!   the same stage seam, with derived IPC / MPKI / stall-fraction /
//!   effective-MLP and a software-counter cross-check.
//! - [`json`]: tiny escape/extract helpers for the JSON stats payload.
//!
//! Everything here is plain `std` atomics — no locks on any record path.
//! The only dependency is the vendored `perf-event` shim the `prof`
//! module sits on (which keeps its `unsafe` on its side of the fence).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cell;
mod gauge;
mod hist;
pub mod json;
mod prof;
mod prom;
mod stage;
mod trace;

pub use cell::{FlushKind, WorkerCell, WorkerCellSnapshot};
pub use gauge::ReactorGauges;
pub use hist::{
    bucket_ceil, bucket_floor, bucket_of, AtomicHistogram, HistogramSnapshot, HIST_BUCKETS,
};
pub use prof::{
    ProfCell, ProfMark, ProfSnapshot, ProfStageSnapshot, ThreadProfiler, MISS_LATENCY_CYCLES,
};
pub use prom::{lint_exposition, PromText};
pub use stage::{Stage, StageSnapshot, StageTimes};
pub use trace::{
    ActiveTrace, FlightRecorder, PendingCommit, RecorderStats, RequestTrace, Span, TraceStage,
    WalkCounters,
};
