//! Padded per-reactor gauge cells.
//!
//! Each net-tier reactor thread owns exactly one [`ReactorGauges`] and
//! is the only writer to it — it re-publishes its gauges every event-loop
//! pass, so a scrape sees values at most one pass stale. Readers (the
//! stats snapshot path) only load. Like [`WorkerCell`](crate::WorkerCell),
//! the cell is over-aligned so two reactors' cells never share a cache
//! line when stored contiguously in the server's gauge table.

use std::sync::atomic::{AtomicU64, Ordering};

/// A padded, lock-free pair of gauges one reactor publishes each loop
/// pass: how many connections it currently owns and how many reply
/// bytes sit unflushed across them.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct ReactorGauges {
    open_connections: AtomicU64,
    write_backlog_bytes: AtomicU64,
}

impl ReactorGauges {
    /// A zeroed cell.
    #[must_use]
    pub fn new() -> ReactorGauges {
        ReactorGauges::default()
    }

    /// Publishes both gauges (single-writer: the owning reactor).
    #[inline]
    pub fn publish(&self, open_connections: u64, write_backlog_bytes: u64) {
        self.open_connections
            .store(open_connections, Ordering::Relaxed);
        self.write_backlog_bytes
            .store(write_backlog_bytes, Ordering::Relaxed);
    }

    /// Connections this reactor currently owns.
    #[must_use]
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Unflushed reply bytes across this reactor's connections.
    #[must_use]
    pub fn write_backlog_bytes(&self) -> u64 {
        self.write_backlog_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_read_back() {
        let g = ReactorGauges::new();
        assert_eq!(g.open_connections(), 0);
        assert_eq!(g.write_backlog_bytes(), 0);
        g.publish(3, 4096);
        assert_eq!(g.open_connections(), 3);
        assert_eq!(g.write_backlog_bytes(), 4096);
        // Gauges, not counters: re-publishing overwrites.
        g.publish(1, 0);
        assert_eq!(g.open_connections(), 1);
        assert_eq!(g.write_backlog_bytes(), 0);
    }

    #[test]
    fn cells_are_cache_line_padded() {
        assert!(std::mem::align_of::<ReactorGauges>() >= 128);
    }
}
