//! Hardware profiling scoped to the stage seam: per-worker counter
//! groups, windowed attribution, and derived memory-boundedness metrics.
//!
//! The paper's argument opens with a profile — index walks spend most
//! of their cycles stalled on DRAM — and this module is how the live
//! serving path reproduces that evidence. Each profiled worker thread
//! opens one `perf-event` [`CounterGroup`] (cycles, instructions, LLC
//! misses, dTLB misses) and brackets the same regions the aggregate
//! [`Stage`] seam times: a [`ThreadProfiler::mark`] before the region,
//! a [`ThreadProfiler::record`] after it, and the delta lands in the
//! worker's shared [`ProfCell`].
//!
//! Two properties make the coarse windows honest:
//!
//! * the group is scoped to its thread, so a worker blocked in
//!   `queue_wait` accrues almost no cycles — a handful of read
//!   syscalls per *batch* (not per key) is enough;
//! * windows are differenced ([`perf_event::CounterSnapshot::since`]),
//!   never reset, so overlapping observers can't clobber each other.
//!
//! On hosts without usable hardware counters (non-Linux, PMU-less VMs,
//! `perf_event_paranoid`/seccomp denials) the group degrades to the
//! `soft` backend: hardware fields stay zero, derived metrics read
//! `None`, and the software walker [`WalkCounters`] — accumulated here
//! too — carry the MLP evidence instead. [`ProfSnapshot`] reports which
//! of the two worlds it measured (`backend` / `hw` / `fallback`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use perf_event::{CounterGroup, CounterSnapshot};

use crate::stage::Stage;
use crate::trace::WalkCounters;

/// Nominal DRAM-miss latency in core cycles used by the first-order
/// derived metrics ([`ProfStageSnapshot::stall_fraction`] and
/// [`ProfStageSnapshot::effective_mlp`]). A constant is deliberately
/// crude — the point is comparing engines on the same host, where it
/// cancels — and 200 sits in the DRAM-round-trip range of the paper's
/// era and of today's servers alike.
pub const MISS_LATENCY_CYCLES: u64 = 200;

#[derive(Debug, Default)]
struct StageBin {
    windows: AtomicU64,
    cycles: AtomicU64,
    instructions: AtomicU64,
    llc_misses: AtomicU64,
    dtlb_misses: AtomicU64,
    time_ns: AtomicU64,
}

#[derive(Clone, Debug)]
struct ProfMeta {
    backend: &'static str,
    hw: bool,
    fallback: Option<String>,
}

/// One worker's shared profiling accumulators: a counter bin per
/// [`Stage`] plus the software walker counters the hardware numbers
/// are cross-checked against. The worker thread adds into it through
/// its [`ThreadProfiler`]; any observer snapshots it live.
#[derive(Debug, Default)]
pub struct ProfCell {
    per: [StageBin; 6],
    walk: WalkBin,
    meta: OnceLock<ProfMeta>,
}

#[derive(Debug, Default)]
struct WalkBin {
    nodes: AtomicU64,
    max_chain: AtomicU64,
    rounds: AtomicU64,
    occupancy: AtomicU64,
    prefetches: AtomicU64,
}

impl ProfCell {
    /// Fresh, all-zero cell.
    #[must_use]
    pub fn new() -> ProfCell {
        ProfCell::default()
    }

    fn note_group(&self, group: &CounterGroup) {
        let _ = self.meta.set(ProfMeta {
            backend: group.backend(),
            hw: group.has_hw_counters(),
            fallback: group.fallback_reason().map(str::to_owned),
        });
    }

    fn add(&self, stage: Stage, delta: &CounterSnapshot) {
        let bin = &self.per[stage.index()];
        bin.windows.fetch_add(1, Ordering::Relaxed);
        bin.cycles.fetch_add(delta.cycles, Ordering::Relaxed);
        bin.instructions
            .fetch_add(delta.instructions, Ordering::Relaxed);
        bin.llc_misses
            .fetch_add(delta.llc_misses, Ordering::Relaxed);
        bin.dtlb_misses
            .fetch_add(delta.dtlb_misses, Ordering::Relaxed);
        bin.time_ns
            .fetch_add(delta.time_enabled_ns, Ordering::Relaxed);
    }

    /// Accumulate one batch's software walker counters alongside the
    /// hardware windows (the cross-check numerators for soft MLP).
    pub fn add_walk(&self, counters: &WalkCounters) {
        self.walk.nodes.fetch_add(counters.nodes, Ordering::Relaxed);
        self.walk
            .max_chain
            .fetch_max(counters.max_chain, Ordering::Relaxed);
        self.walk
            .rounds
            .fetch_add(counters.rounds, Ordering::Relaxed);
        self.walk
            .occupancy
            .fetch_add(counters.occupancy, Ordering::Relaxed);
        self.walk
            .prefetches
            .fetch_add(counters.prefetches, Ordering::Relaxed);
    }

    /// Point-in-time copy of this cell as a one-worker snapshot.
    #[must_use]
    pub fn snapshot(&self) -> ProfSnapshot {
        let meta = self.meta.get();
        ProfSnapshot {
            backend: meta.map_or("none", |m| m.backend),
            hw: meta.is_some_and(|m| m.hw),
            fallback: meta.and_then(|m| m.fallback.clone()),
            workers: 1,
            stages: std::array::from_fn(|i| {
                let bin = &self.per[i];
                ProfStageSnapshot {
                    windows: bin.windows.load(Ordering::Relaxed),
                    cycles: bin.cycles.load(Ordering::Relaxed),
                    instructions: bin.instructions.load(Ordering::Relaxed),
                    llc_misses: bin.llc_misses.load(Ordering::Relaxed),
                    dtlb_misses: bin.dtlb_misses.load(Ordering::Relaxed),
                    time_ns: bin.time_ns.load(Ordering::Relaxed),
                }
            }),
            walk: WalkCounters {
                nodes: self.walk.nodes.load(Ordering::Relaxed),
                max_chain: self.walk.max_chain.load(Ordering::Relaxed),
                rounds: self.walk.rounds.load(Ordering::Relaxed),
                occupancy: self.walk.occupancy.load(Ordering::Relaxed),
                prefetches: self.walk.prefetches.load(Ordering::Relaxed),
            },
        }
    }
}

/// A worker thread's handle on its counter group. Construct with
/// [`attach`](ThreadProfiler::attach) on the thread being measured
/// (the group binds to the calling thread), or
/// [`disabled`](ThreadProfiler::disabled) for a free no-op when
/// profiling is off — every method is then a branch on a `None`.
#[derive(Debug)]
pub struct ThreadProfiler {
    inner: Option<ProfilerInner>,
}

#[derive(Debug)]
struct ProfilerInner {
    group: CounterGroup,
    cell: Arc<ProfCell>,
}

/// An opaque window-start reading from [`ThreadProfiler::mark`].
#[derive(Debug)]
pub struct ProfMark {
    start: Option<CounterSnapshot>,
}

impl ThreadProfiler {
    /// The no-op profiler used when profiling is off.
    #[must_use]
    pub fn disabled() -> ThreadProfiler {
        ThreadProfiler { inner: None }
    }

    /// Open and enable a counter group on the *calling* thread,
    /// publishing into `cell`. Never fails: backend degradation is the
    /// group's business, and an enable error just yields a disabled
    /// profiler.
    #[must_use]
    pub fn attach(cell: Arc<ProfCell>) -> ThreadProfiler {
        let mut group = CounterGroup::new();
        cell.note_group(&group);
        if group.enable().is_err() {
            return ThreadProfiler::disabled();
        }
        ThreadProfiler {
            inner: Some(ProfilerInner { group, cell }),
        }
    }

    /// Whether this profiler is actually counting.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Begin a window: read the group now, remember the reading.
    pub fn mark(&mut self) -> ProfMark {
        ProfMark {
            start: self
                .inner
                .as_mut()
                .and_then(|inner| inner.group.read().ok()),
        }
    }

    /// End a window opened by [`mark`](ThreadProfiler::mark),
    /// attributing the delta to `stage`.
    pub fn record(&mut self, stage: Stage, mark: ProfMark) {
        let Some(inner) = &mut self.inner else {
            return;
        };
        let Some(start) = mark.start else {
            return;
        };
        let Ok(now) = inner.group.read() else {
            return;
        };
        inner.cell.add(stage, &now.since(&start));
    }

    /// Forward one batch's walker counters to the cell (no-op when
    /// disabled).
    pub fn add_walk(&self, counters: &WalkCounters) {
        if let Some(inner) = &self.inner {
            inner.cell.add_walk(counters);
        }
    }
}

/// One stage's accumulated counter windows, with the derived metrics
/// computed on demand. All derived metrics return `None` when their
/// denominator never ticked — which is exactly the `soft` backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfStageSnapshot {
    /// Windows recorded into this stage.
    pub windows: u64,
    /// Core cycles attributed to this stage.
    pub cycles: u64,
    /// Instructions retired in this stage.
    pub instructions: u64,
    /// Last-level cache misses in this stage.
    pub llc_misses: u64,
    /// dTLB read misses in this stage.
    pub dtlb_misses: u64,
    /// On-CPU nanoseconds inside the windows (wall time on `soft`).
    pub time_ns: u64,
}

impl ProfStageSnapshot {
    /// Sum `other` into this snapshot.
    pub fn merge(&mut self, other: &ProfStageSnapshot) {
        self.windows = self.windows.saturating_add(other.windows);
        self.cycles = self.cycles.saturating_add(other.cycles);
        self.instructions = self.instructions.saturating_add(other.instructions);
        self.llc_misses = self.llc_misses.saturating_add(other.llc_misses);
        self.dtlb_misses = self.dtlb_misses.saturating_add(other.dtlb_misses);
        self.time_ns = self.time_ns.saturating_add(other.time_ns);
    }

    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> Option<f64> {
        (self.cycles > 0).then(|| self.instructions as f64 / self.cycles as f64)
    }

    /// LLC misses per thousand instructions.
    #[must_use]
    pub fn llc_mpki(&self) -> Option<f64> {
        (self.instructions > 0).then(|| 1000.0 * self.llc_misses as f64 / self.instructions as f64)
    }

    /// dTLB misses per thousand instructions.
    #[must_use]
    pub fn dtlb_mpki(&self) -> Option<f64> {
        (self.instructions > 0).then(|| 1000.0 * self.dtlb_misses as f64 / self.instructions as f64)
    }

    /// First-order fraction of cycles spent under an outstanding LLC
    /// miss: `misses × MISS_LATENCY_CYCLES ÷ cycles`, clamped to 1 —
    /// overlapped misses push the unclamped ratio past 1, which is
    /// what [`effective_mlp`](ProfStageSnapshot::effective_mlp) reads.
    #[must_use]
    pub fn stall_fraction(&self) -> Option<f64> {
        self.effective_mlp().map(|mlp| mlp.min(1.0))
    }

    /// Effective memory-level parallelism: miss-latency-weighted cycles
    /// over actual cycles (`misses × MISS_LATENCY_CYCLES ÷ cycles`). A
    /// serial pointer chase sits near the stall fraction bound (≤ 1);
    /// values above 1 require overlapping misses — the walkers' whole
    /// purpose. Cross-check against the software
    /// [`soft_mlp`](ProfSnapshot::soft_mlp).
    #[must_use]
    pub fn effective_mlp(&self) -> Option<f64> {
        (self.cycles > 0).then(|| {
            (self.llc_misses.saturating_mul(MISS_LATENCY_CYCLES)) as f64 / self.cycles as f64
        })
    }
}

/// Aggregated profiling evidence across workers: which backend
/// measured it, per-stage counter windows, and the software walker
/// totals the hardware numbers are cross-checked against.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfSnapshot {
    /// Counter backend in use (`"linux"`, `"soft"`, or `"none"` when
    /// no worker ever attached).
    pub backend: &'static str,
    /// Whether the backend carries real hardware counts.
    pub hw: bool,
    /// Why the default backend degraded to `soft`, when it did.
    pub fallback: Option<String>,
    /// Worker cells merged into this snapshot.
    pub workers: u64,
    /// Per-[`Stage`] accumulations, indexed in [`Stage::ALL`] order.
    pub stages: [ProfStageSnapshot; 6],
    /// Software walker totals across all profiled batches.
    pub walk: WalkCounters,
}

impl Default for ProfSnapshot {
    fn default() -> ProfSnapshot {
        ProfSnapshot {
            backend: "none",
            hw: false,
            fallback: None,
            workers: 0,
            stages: [ProfStageSnapshot::default(); 6],
            walk: WalkCounters::default(),
        }
    }
}

impl ProfSnapshot {
    /// The accumulation for one stage.
    #[must_use]
    pub fn get(&self, stage: Stage) -> &ProfStageSnapshot {
        &self.stages[stage.index()]
    }

    /// Merge another worker's snapshot into this one.
    pub fn merge(&mut self, other: &ProfSnapshot) {
        if self.backend == "none" {
            self.backend = other.backend;
            self.hw = other.hw;
        }
        if self.fallback.is_none() {
            self.fallback.clone_from(&other.fallback);
        }
        self.workers += other.workers;
        for (mine, theirs) in self.stages.iter_mut().zip(other.stages.iter()) {
            mine.merge(theirs);
        }
        self.walk.merge(&other.walk);
    }

    /// Sum across all stages (the whole-worker view).
    #[must_use]
    pub fn total(&self) -> ProfStageSnapshot {
        let mut total = ProfStageSnapshot::default();
        for stage in &self.stages {
            total.merge(stage);
        }
        total
    }

    /// Software mean MLP from the walker counters: occupancy ÷ rounds
    /// (live lookups per AMAC round). `None` until a walker ran.
    #[must_use]
    pub fn soft_mlp(&self) -> Option<f64> {
        (self.walk.rounds > 0).then(|| self.walk.occupancy as f64 / self.walk.rounds as f64)
    }

    /// Render as a self-contained JSON object (the `prof` block of the
    /// stats payload and the `Profile` opcode body).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"backend\":\"{}\",\"hw\":{},\"fallback\":{},\"workers\":{},\"miss_latency_cycles\":{}",
            crate::json::escape(self.backend),
            self.hw,
            match &self.fallback {
                Some(reason) => format!("\"{}\"", crate::json::escape(reason)),
                None => "null".to_string(),
            },
            self.workers,
            MISS_LATENCY_CYCLES
        ));
        out.push_str(",\"stages\":{");
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", stage.name()));
            push_stage_json(&mut out, self.get(stage));
        }
        out.push_str("},\"total\":");
        push_stage_json(&mut out, &self.total());
        out.push_str(&format!(
            ",\"walk\":{{\"nodes\":{},\"max_chain\":{},\"rounds\":{},\"occupancy\":{},\"prefetches\":{},\"soft_mlp\":{}}}}}",
            self.walk.nodes,
            self.walk.max_chain,
            self.walk.rounds,
            self.walk.occupancy,
            self.walk.prefetches,
            json_f64(self.soft_mlp())
        ));
        out
    }
}

fn push_stage_json(out: &mut String, s: &ProfStageSnapshot) {
    out.push_str(&format!(
        "{{\"windows\":{},\"cycles\":{},\"instructions\":{},\"llc_misses\":{},\"dtlb_misses\":{},\"time_ns\":{},\"ipc\":{},\"llc_mpki\":{},\"dtlb_mpki\":{},\"stall_fraction\":{},\"effective_mlp\":{}}}",
        s.windows,
        s.cycles,
        s.instructions,
        s.llc_misses,
        s.dtlb_misses,
        s.time_ns,
        json_f64(s.ipc()),
        json_f64(s.llc_mpki()),
        json_f64(s.dtlb_mpki()),
        json_f64(s.stall_fraction()),
        json_f64(s.effective_mlp()),
    ));
}

/// A derived metric as a JSON value: fixed-point or `null` when the
/// backend never produced a denominator.
fn json_f64(value: Option<f64>) -> String {
    value.map_or_else(|| "null".to_string(), |v| format!("{v:.4}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_a_no_op() {
        let cell = Arc::new(ProfCell::new());
        let mut prof = ThreadProfiler::disabled();
        assert!(!prof.enabled());
        let mark = prof.mark();
        std::thread::sleep(std::time::Duration::from_millis(1));
        prof.record(Stage::Walk, mark);
        prof.add_walk(&WalkCounters {
            nodes: 5,
            ..WalkCounters::default()
        });
        let snap = cell.snapshot();
        assert_eq!(snap.backend, "none");
        assert_eq!(snap.total(), ProfStageSnapshot::default());
        assert!(snap.walk.is_zero());
    }

    #[test]
    fn attached_profiler_attributes_windows_to_stages() {
        let cell = Arc::new(ProfCell::new());
        let mut prof = ThreadProfiler::attach(Arc::clone(&cell));
        assert!(prof.enabled());

        let mark = prof.mark();
        let mut x = 1u64;
        for i in 0..100_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        std::thread::sleep(std::time::Duration::from_millis(1));
        prof.record(Stage::Walk, mark);
        prof.add_walk(&WalkCounters {
            nodes: 7,
            max_chain: 2,
            rounds: 3,
            occupancy: 12,
            prefetches: 7,
        });

        let snap = cell.snapshot();
        assert!(["linux", "soft"].contains(&snap.backend));
        let walk_bin = snap.get(Stage::Walk);
        assert_eq!(walk_bin.windows, 1);
        assert!(walk_bin.time_ns > 0, "window time must advance");
        assert_eq!(snap.get(Stage::QueueWait).windows, 0);
        if snap.hw {
            assert!(walk_bin.cycles > 0);
            assert!(walk_bin.ipc().is_some());
        } else {
            assert_eq!(walk_bin.cycles, 0);
            assert!(walk_bin.ipc().is_none(), "soft backend derives nothing");
        }
        assert_eq!(snap.walk.nodes, 7);
        assert_eq!(snap.soft_mlp(), Some(4.0));
    }

    #[test]
    fn derived_metrics_match_hand_arithmetic() {
        let s = ProfStageSnapshot {
            windows: 2,
            cycles: 1_000_000,
            instructions: 2_000_000,
            llc_misses: 10_000,
            dtlb_misses: 500,
            time_ns: 400_000,
        };
        assert_eq!(s.ipc(), Some(2.0));
        assert_eq!(s.llc_mpki(), Some(5.0));
        assert_eq!(s.dtlb_mpki(), Some(0.25));
        // 10_000 misses × 200 cycles = 2M weighted ÷ 1M actual = 2.0.
        assert_eq!(s.effective_mlp(), Some(2.0));
        assert_eq!(s.stall_fraction(), Some(1.0), "clamped at fully stalled");
        assert_eq!(ProfStageSnapshot::default().ipc(), None);
        assert_eq!(ProfStageSnapshot::default().stall_fraction(), None);
    }

    #[test]
    fn snapshots_merge_across_workers() {
        let mut a = ProfSnapshot::default();
        assert_eq!(a.backend, "none");
        let cell = ProfCell::new();
        cell.add(
            Stage::Walk,
            &CounterSnapshot {
                cycles: 100,
                instructions: 200,
                llc_misses: 3,
                dtlb_misses: 1,
                time_enabled_ns: 50,
                time_running_ns: 50,
            },
        );
        cell.add_walk(&WalkCounters {
            nodes: 4,
            max_chain: 3,
            rounds: 2,
            occupancy: 6,
            prefetches: 4,
        });
        let single = cell.snapshot();
        a.merge(&single);
        a.merge(&single);
        assert_eq!(a.workers, 2);
        assert_eq!(a.get(Stage::Walk).cycles, 200);
        assert_eq!(a.get(Stage::Walk).windows, 2);
        assert_eq!(a.walk.nodes, 8);
        assert_eq!(a.walk.max_chain, 3, "max, not sum");
        assert_eq!(a.total().cycles, 200);
        assert_eq!(a.soft_mlp(), Some(3.0));
    }

    #[test]
    fn json_shape_is_parseable() {
        let cell = ProfCell::new();
        cell.add(
            Stage::Walk,
            &CounterSnapshot {
                cycles: 1000,
                instructions: 1500,
                llc_misses: 2,
                dtlb_misses: 0,
                time_enabled_ns: 800,
                time_running_ns: 800,
            },
        );
        let json_doc = cell.snapshot().to_json();
        assert!(json_doc.contains("\"backend\":\"none\""));
        assert!(json_doc.contains("\"queue_wait\":"));
        assert!(json_doc.contains("\"walk\":"));
        assert_eq!(
            crate::json::find_u64(&json_doc, "miss_latency_cycles"),
            Some(MISS_LATENCY_CYCLES)
        );
        assert!(json_doc.contains("\"ipc\":1.5000"));
        // Zero-denominator stages render null, not a bogus number.
        assert!(json_doc.contains("\"ipc\":null"));
        assert!(!json_doc.contains("NaN"));
    }
}
