//! Per-request tracing: spans, walker counters, and the flight recorder.
//!
//! The aggregate registry ([`crate::WorkerCell`], [`crate::StageTimes`])
//! answers "what is the p99"; this module answers "why was *that* request
//! slow". A sampled (or tail-selected) request carries an [`ActiveTrace`]
//! through the serving stack; each tier appends [`Span`]s and walker-level
//! [`WalkCounters`], and the completed [`RequestTrace`] lands in a bounded
//! [`FlightRecorder`] ring that scrapes can drain as JSON.
//!
//! Sampling policy lives with the caller (head 1-in-N plus a tail
//! slow-threshold); the recorder only stores completed traces and keeps
//! depth/drop gauges. The untraced hot path never touches the ring.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::json;

/// Minimum gap between two slow-request log lines.
const SLOW_LOG_INTERVAL: Duration = Duration::from_millis(500);

/// Stages a per-request span can cover.
///
/// This is deliberately separate from the aggregate [`crate::Stage`]
/// taxonomy: traces additionally attribute the network read
/// (frame-decode-to-submit) leg, and the two enums evolve independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceStage {
    /// Frame decoded off the socket up to submission into the service.
    NetRead,
    /// Submission until a shard worker admitted the request into a batch.
    QueueWait,
    /// Admission until the batch closed (size or deadline).
    BatchWait,
    /// Walker execution over the whole batch the request rode in.
    Walk,
    /// Write application at the batch barrier (the shard worker is the
    /// sole writer for its shard).
    Write,
    /// First part completed until the final part landed (gather seam).
    Gather,
    /// Reply bytes encoded until the flush cursor passed them.
    ReplyWrite,
}

impl TraceStage {
    /// Stable snake_case name used in JSON payloads.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::NetRead => "net_read",
            TraceStage::QueueWait => "queue_wait",
            TraceStage::BatchWait => "batch_wait",
            TraceStage::Walk => "walk",
            TraceStage::Write => "write",
            TraceStage::Gather => "gather",
            TraceStage::ReplyWrite => "reply_write",
        }
    }
}

/// One timed stage within a request trace.
///
/// `start_ns` is the offset from the trace base (the submit or frame-decode
/// instant), so spans from different threads share one monotonic timeline.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    /// Which stage this span covers.
    pub stage: TraceStage,
    /// Offset of the span start from the trace base, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Walker-level memory-parallelism evidence for one request.
///
/// Both the hash [`AmacWalker`](../widx_soft) and the B+-tree range walker
/// publish into this shape; a request batched across several shards merges
/// one record per shard visit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkCounters {
    /// Index nodes touched (hash buckets + overflow nodes, or B+-tree nodes).
    pub nodes: u64,
    /// Longest hash chain followed, or B+-tree depth (root to leaf).
    pub max_chain: u64,
    /// AMAC step rounds the carrying batch executed.
    pub rounds: u64,
    /// Sum of live slots across those rounds (occupancy / rounds = mean MLP).
    pub occupancy: u64,
    /// Prefetch instructions issued by the walker.
    pub prefetches: u64,
}

impl WalkCounters {
    /// Merge another record into this one (sums; `max_chain` takes the max).
    pub fn merge(&mut self, other: &WalkCounters) {
        self.nodes = self.nodes.saturating_add(other.nodes);
        self.max_chain = self.max_chain.max(other.max_chain);
        self.rounds = self.rounds.saturating_add(other.rounds);
        self.occupancy = self.occupancy.saturating_add(other.occupancy);
        self.prefetches = self.prefetches.saturating_add(other.prefetches);
    }

    /// True when no field has been touched.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == WalkCounters::default()
    }
}

/// A completed, immutable request trace as stored by the recorder.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Request id (the wire id when the trace was armed by the net tier,
    /// otherwise a service-local sequence number).
    pub id: u64,
    /// Request kind, e.g. `"lookup"` or `"range_scan"`.
    pub kind: &'static str,
    /// End-to-end latency in nanoseconds (trace base to completion).
    pub total_ns: u64,
    /// True when the request exceeded the slow threshold (tail-sampled).
    pub slow: bool,
    /// Reactor that decoded the frame, when the trace crossed the net tier.
    pub reactor: Option<u32>,
    /// Shards whose workers touched the request.
    pub shards: Vec<u32>,
    /// Per-stage spans, in the order they were recorded.
    pub spans: Vec<Span>,
    /// Merged walker counters across all shard visits.
    pub walk: WalkCounters,
}

impl RequestTrace {
    /// Render this trace as a self-contained JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"id\":{},\"kind\":\"{}\",\"total_ns\":{},\"slow\":{}",
            self.id,
            json::escape(self.kind),
            self.total_ns,
            self.slow
        ));
        match self.reactor {
            Some(rix) => out.push_str(&format!(",\"reactor\":{rix}")),
            None => out.push_str(",\"reactor\":null"),
        }
        out.push_str(",\"shards\":[");
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&shard.to_string());
        }
        out.push_str("],\"spans\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stage\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
                span.stage.name(),
                span.start_ns,
                span.dur_ns
            ));
        }
        out.push_str(&format!(
            "],\"walk\":{{\"nodes\":{},\"max_chain\":{},\"rounds\":{},\"occupancy\":{},\"prefetches\":{}}}}}",
            self.walk.nodes,
            self.walk.max_chain,
            self.walk.rounds,
            self.walk.occupancy,
            self.walk.prefetches
        ));
        out
    }
}

/// A trace under construction, carried alongside an in-flight request.
///
/// All span times are offsets from `base`, so annotations from worker and
/// reactor threads land on one shared timeline without clock agreement
/// beyond `Instant` monotonicity.
#[derive(Debug)]
pub struct ActiveTrace {
    base: Instant,
    id: u64,
    kind: &'static str,
    sampled: bool,
    reactor: Option<u32>,
    shards: Vec<u32>,
    spans: Vec<Span>,
    walk: WalkCounters,
}

impl ActiveTrace {
    /// Start a trace. `base` anchors the timeline (frame-decode instant for
    /// net-armed traces, submit instant otherwise); `sampled` records whether
    /// head sampling picked this request (tail selection happens at finish).
    #[must_use]
    pub fn new(base: Instant, id: u64, kind: &'static str, sampled: bool) -> ActiveTrace {
        ActiveTrace {
            base,
            id,
            kind,
            sampled,
            reactor: None,
            shards: Vec::new(),
            spans: Vec::with_capacity(8),
            walk: WalkCounters::default(),
        }
    }

    /// Whether head sampling selected this request.
    #[must_use]
    pub fn sampled(&self) -> bool {
        self.sampled
    }

    /// The instant the trace timeline is anchored to.
    #[must_use]
    pub fn base(&self) -> Instant {
        self.base
    }

    /// Record which reactor decoded the request's frame.
    pub fn set_reactor(&mut self, rix: u32) {
        self.reactor = Some(rix);
    }

    /// Note that `shard`'s worker touched the request (deduplicated).
    pub fn add_shard(&mut self, shard: u32) {
        if !self.shards.contains(&shard) {
            self.shards.push(shard);
        }
    }

    /// Merge a walker counter record into the trace.
    pub fn add_walk(&mut self, counters: &WalkCounters) {
        self.walk.merge(counters);
    }

    /// Append a span covering `start..end` on the trace timeline.
    /// Instants before `base` clamp to offset zero.
    pub fn span_between(&mut self, stage: TraceStage, start: Instant, end: Instant) {
        let start_ns = dur_ns(start.saturating_duration_since(self.base));
        let dur = dur_ns(end.saturating_duration_since(start));
        self.spans.push(Span {
            stage,
            start_ns,
            dur_ns: dur,
        });
    }

    /// Append a span starting at `start` with an explicit duration.
    pub fn span_for(&mut self, stage: TraceStage, start: Instant, dur: Duration) {
        let start_ns = dur_ns(start.saturating_duration_since(self.base));
        self.spans.push(Span {
            stage,
            start_ns,
            dur_ns: dur_ns(dur),
        });
    }

    /// Seal the trace with its end-to-end latency and tail verdict.
    #[must_use]
    pub fn finish(self, total: Duration, slow: bool) -> RequestTrace {
        RequestTrace {
            id: self.id,
            kind: self.kind,
            total_ns: dur_ns(total),
            slow,
            reactor: self.reactor,
            shards: self.shards,
            spans: self.spans,
            walk: self.walk,
        }
    }
}

fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Recorder gauges, scrape-coherent (each field individually atomic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Ring capacity in traces.
    pub capacity: u64,
    /// Traces currently held in the ring.
    pub depth: u64,
    /// Total traces ever recorded.
    pub recorded: u64,
    /// Traces evicted from a full ring.
    pub dropped: u64,
    /// Recorded traces that were tail-selected (exceeded the slow threshold).
    pub slow: u64,
}

/// Bounded ring of completed request traces plus drop/depth gauges.
///
/// The ring is a mutex'd `VecDeque`: only armed traces (sampled or slow)
/// ever reach [`FlightRecorder::record`], so the untraced hot path never
/// contends here. Gauges are plain atomics so `stats()` is lock-free.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<RequestTrace>>,
    depth: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
    slow: AtomicU64,
    slow_logged: Mutex<Option<Instant>>,
    pending: Mutex<u64>,
    drained: Condvar,
}

impl FlightRecorder {
    /// Create a recorder holding up to `capacity` traces (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            depth: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            slow_logged: Mutex::new(None),
            pending: Mutex::new(0),
            drained: Condvar::new(),
        }
    }

    /// Ring capacity in traces.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Commit a completed trace, evicting the oldest when full.
    pub fn record(&self, trace: RequestTrace) {
        if trace.slow {
            self.slow.fetch_add(1, Ordering::Relaxed);
        }
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(trace);
        self.depth.store(ring.len() as u64, Ordering::Relaxed);
        drop(ring);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Apply the commit policy: record when head-sampled or over the slow
    /// threshold, emit the rate-limited slow log for the latter. Returns
    /// whether the trace was recorded.
    pub fn offer(
        &self,
        active: ActiveTrace,
        total: Duration,
        slow_threshold: Option<Duration>,
    ) -> bool {
        let slow = slow_threshold.is_some_and(|t| total >= t);
        if !(active.sampled() || slow) {
            return false;
        }
        let trace = active.finish(total, slow);
        if slow {
            self.log_slow(&trace);
        }
        self.record(trace);
        true
    }

    /// Copy out the ring contents, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().cloned().collect()
    }

    /// Lock-free gauge snapshot.
    #[must_use]
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            capacity: self.capacity as u64,
            depth: self.depth.load(Ordering::Relaxed),
            recorded: self.recorded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            slow: self.slow.load(Ordering::Relaxed),
        }
    }

    /// Render gauges plus recent traces (newest first) as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let stats = self.stats();
        let traces = self.snapshot();
        let mut out = String::with_capacity(128 + traces.len() * 256);
        out.push_str(&format!(
            "{{\"capacity\":{},\"depth\":{},\"recorded\":{},\"dropped\":{},\"slow\":{},\"traces\":[",
            stats.capacity, stats.depth, stats.recorded, stats.dropped, stats.slow
        ));
        for (i, trace) in traces.iter().rev().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&trace.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Take a commit ticket: the recorder counts the trace as
    /// *pending* until the returned guard drops.
    ///
    /// A trace commits strictly *after* the completion wakeup that
    /// releases the blocked caller, so "the call returned" does not
    /// imply "the trace is in the ring". Holding a ticket for the
    /// lifetime of each armed trace (dropped after the commit decision)
    /// gives [`flush`](FlightRecorder::flush) a deterministic barrier —
    /// no poll-briefly-before-asserting in tests.
    #[must_use]
    pub fn begin_commit(self: &Arc<FlightRecorder>) -> PendingCommit {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        *pending += 1;
        drop(pending);
        PendingCommit {
            recorder: Arc::clone(self),
        }
    }

    /// Block until every outstanding commit ticket has dropped, i.e.
    /// every armed trace whose caller has already been released has
    /// reached its commit decision. Returns immediately when nothing
    /// is pending.
    pub fn flush(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        while *pending > 0 {
            pending = self
                .drained
                .wait(pending)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Emit the slow-request log line, rate-limited to one per
    /// [`SLOW_LOG_INTERVAL`].
    fn log_slow(&self, trace: &RequestTrace) {
        let mut last = self.slow_logged.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        if last.is_some_and(|at| now.duration_since(at) < SLOW_LOG_INTERVAL) {
            return;
        }
        *last = Some(now);
        drop(last);
        eprintln!(
            "widx slow request: id={} kind={} total_ms={:.3} shards={:?} nodes={} max_chain={}",
            trace.id,
            trace.kind,
            trace.total_ns as f64 / 1e6,
            trace.shards,
            trace.walk.nodes,
            trace.walk.max_chain
        );
    }
}

/// RAII commit ticket from [`FlightRecorder::begin_commit`]; dropping
/// it (after the trace's commit decision) releases any
/// [`FlightRecorder::flush`] waiting on the recorder.
#[derive(Debug)]
pub struct PendingCommit {
    recorder: Arc<FlightRecorder>,
}

impl Drop for PendingCommit {
    fn drop(&mut self) {
        let mut pending = self
            .recorder
            .pending
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *pending = pending.saturating_sub(1);
        if *pending == 0 {
            self.recorder.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_trace(id: u64, slow: bool) -> RequestTrace {
        let mut active = ActiveTrace::new(Instant::now(), id, "lookup", true);
        active.add_shard(1);
        active.add_shard(1);
        active.add_walk(&WalkCounters {
            nodes: 3,
            max_chain: 2,
            rounds: 4,
            occupancy: 9,
            prefetches: 5,
        });
        let start = active.base();
        active.span_for(TraceStage::Walk, start, Duration::from_micros(10));
        active.finish(Duration::from_micros(25), slow)
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(2);
        for id in 0..5 {
            rec.record(mk_trace(id, false));
        }
        let stats = rec.stats();
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.depth, 2);
        assert_eq!(stats.recorded, 5);
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.slow, 0);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].id, 3);
        assert_eq!(snap[1].id, 4);
    }

    #[test]
    fn offer_respects_sampling_and_threshold() {
        let rec = FlightRecorder::new(8);
        let base = Instant::now();
        // Not sampled, no threshold: dropped.
        let active = ActiveTrace::new(base, 1, "lookup", false);
        assert!(!rec.offer(active, Duration::from_micros(10), None));
        // Not sampled, under threshold: dropped.
        let active = ActiveTrace::new(base, 2, "lookup", false);
        assert!(!rec.offer(
            active,
            Duration::from_micros(10),
            Some(Duration::from_millis(1))
        ));
        // Not sampled, over threshold: recorded as slow.
        let active = ActiveTrace::new(base, 3, "lookup", false);
        assert!(rec.offer(
            active,
            Duration::from_millis(2),
            Some(Duration::from_millis(1))
        ));
        // Sampled, fast: recorded, not slow.
        let active = ActiveTrace::new(base, 4, "lookup", true);
        assert!(rec.offer(
            active,
            Duration::from_micros(10),
            Some(Duration::from_millis(1))
        ));
        let stats = rec.stats();
        assert_eq!(stats.recorded, 2);
        assert_eq!(stats.slow, 1);
        let snap = rec.snapshot();
        assert!(snap[0].slow);
        assert!(!snap[1].slow);
    }

    #[test]
    fn walk_counters_merge() {
        let mut a = WalkCounters {
            nodes: 1,
            max_chain: 4,
            rounds: 2,
            occupancy: 3,
            prefetches: 1,
        };
        let b = WalkCounters {
            nodes: 2,
            max_chain: 3,
            rounds: 1,
            occupancy: 5,
            prefetches: 2,
        };
        a.merge(&b);
        assert_eq!(a.nodes, 3);
        assert_eq!(a.max_chain, 4);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.occupancy, 8);
        assert_eq!(a.prefetches, 3);
        assert!(!a.is_zero());
        assert!(WalkCounters::default().is_zero());
    }

    #[test]
    fn spans_use_base_relative_offsets() {
        let base = Instant::now();
        let mut active = ActiveTrace::new(base, 7, "range_scan", true);
        let start = base + Duration::from_micros(5);
        let end = start + Duration::from_micros(10);
        active.span_between(TraceStage::QueueWait, start, end);
        // An instant before base clamps to offset 0.
        active.span_between(TraceStage::NetRead, base - Duration::from_micros(1), base);
        let trace = active.finish(Duration::from_micros(20), false);
        assert_eq!(trace.spans[0].start_ns, 5_000);
        assert_eq!(trace.spans[0].dur_ns, 10_000);
        assert_eq!(trace.spans[1].start_ns, 0);
        for span in &trace.spans {
            assert!(span.start_ns + span.dur_ns <= trace.total_ns + 1_000);
        }
    }

    #[test]
    fn flush_waits_for_outstanding_commit_tickets() {
        let rec = Arc::new(FlightRecorder::new(4));
        // No tickets: flush returns immediately.
        rec.flush();

        let ticket = rec.begin_commit();
        let other = Arc::clone(&rec);
        let committer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            other.record(mk_trace(1, false));
            drop(ticket);
        });
        rec.flush();
        // The barrier released only after the commit landed.
        assert_eq!(rec.stats().recorded, 1);
        committer.join().unwrap();

        // Tickets dropped without a record (unsampled trace) release too.
        let ticket = rec.begin_commit();
        drop(ticket);
        rec.flush();
    }

    #[test]
    fn json_shape_is_parseable() {
        let rec = FlightRecorder::new(4);
        rec.record(mk_trace(42, true));
        let json_doc = rec.to_json();
        assert_eq!(json::find_u64(&json_doc, "capacity"), Some(4));
        assert_eq!(json::find_u64(&json_doc, "depth"), Some(1));
        assert_eq!(json::find_u64(&json_doc, "recorded"), Some(1));
        assert_eq!(json::find_u64(&json_doc, "id"), Some(42));
        assert_eq!(json::find_u64(&json_doc, "nodes"), Some(3));
        assert!(json_doc.contains("\"kind\":\"lookup\""));
        assert!(json_doc.contains("\"slow\":true"));
        assert!(json_doc.contains("\"stage\":\"walk\""));
    }
}
