//! Prometheus text-exposition builder.
//!
//! Emits the classic `name{label="value"} 123` line format (exposition
//! format version 0.0.4) without pulling in a client library. Metric and
//! label names are supplied by the caller and assumed well-formed; label
//! values are escaped.

/// Incremental builder for a Prometheus text-exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit a `# HELP` line for `name`.
    pub fn help(&mut self, name: &str, text: &str) -> &mut Self {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(text);
        self.out.push('\n');
        self
    }

    /// Emit a `# TYPE` line for `name` (`counter`, `gauge`, `summary`, ...).
    pub fn type_(&mut self, name: &str, kind: &str) -> &mut Self {
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
        self
    }

    /// Emit one sample line with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        if value.fract() == 0.0 && value.abs() < 1e15 {
            self.out.push_str(&format!("{}", value as i64));
        } else {
            self.out.push_str(&format!("{value}"));
        }
        self.out.push('\n');
        self
    }

    /// Convenience for integer-valued samples.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) -> &mut Self {
        self.sample(name, labels, value as f64)
    }

    /// Finish the document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_help_type_and_samples() {
        let mut p = PromText::new();
        p.help("widx_keys_total", "Probed keys.")
            .type_("widx_keys_total", "counter")
            .sample_u64("widx_keys_total", &[("tier", "point"), ("shard", "0")], 42)
            .sample("widx_occupancy", &[], 0.5);
        let text = p.finish();
        assert_eq!(
            text,
            "# HELP widx_keys_total Probed keys.\n\
             # TYPE widx_keys_total counter\n\
             widx_keys_total{tier=\"point\",shard=\"0\"} 42\n\
             widx_occupancy 0.5\n"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.sample_u64("m", &[("k", "a\"b\\c\nd")], 1);
        assert_eq!(p.finish(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }
}
