//! Prometheus text-exposition builder.
//!
//! Emits the classic `name{label="value"} 123` line format (exposition
//! format version 0.0.4) without pulling in a client library. Metric and
//! label names are supplied by the caller and assumed well-formed; label
//! values are escaped.

/// Incremental builder for a Prometheus text-exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit a `# HELP` line for `name`.
    pub fn help(&mut self, name: &str, text: &str) -> &mut Self {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(text);
        self.out.push('\n');
        self
    }

    /// Emit a `# TYPE` line for `name` (`counter`, `gauge`, `summary`, ...).
    pub fn type_(&mut self, name: &str, kind: &str) -> &mut Self {
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
        self
    }

    /// Emit one sample line with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        if value.fract() == 0.0 && value.abs() < 1e15 {
            self.out.push_str(&format!("{}", value as i64));
        } else {
            self.out.push_str(&format!("{value}"));
        }
        self.out.push('\n');
        self
    }

    /// Convenience for integer-valued samples.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) -> &mut Self {
        self.sample(name, labels, value as f64)
    }

    /// Finish the document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Lint a Prometheus text exposition: every metric family named by a
/// `# HELP` or `# TYPE` line must carry exactly one of each, names must
/// match `[a-zA-Z_:][a-zA-Z0-9_:]*`, every sample line's metric name must
/// be valid, and no family may repeat a `# TYPE` line.
///
/// Returns the list of violations (empty = clean). Sample names ending in
/// `_sum` / `_count` / `_bucket` are matched against their base family for
/// the "samples follow metadata" association, per the summary/histogram
/// conventions.
pub fn lint_exposition(text: &str) -> Vec<String> {
    fn valid_name(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    let mut errors = Vec::new();
    let mut help_counts: Vec<(String, usize)> = Vec::new();
    let mut type_counts: Vec<(String, usize)> = Vec::new();
    let bump = |counts: &mut Vec<(String, usize)>, name: &str| match counts
        .iter_mut()
        .find(|(n, _)| n == name)
    {
        Some((_, c)) => *c += 1,
        None => counts.push((name.to_string(), 1)),
    };

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !valid_name(name) {
                errors.push(format!("line {lineno}: invalid HELP metric name {name:?}"));
            }
            bump(&mut help_counts, name);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !valid_name(name) {
                errors.push(format!("line {lineno}: invalid TYPE metric name {name:?}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                errors.push(format!("line {lineno}: unknown metric type {kind:?}"));
            }
            bump(&mut type_counts, name);
        } else if line.starts_with('#') {
            // Other comments are allowed and ignored.
        } else {
            let name_end = line.find(['{', ' ']).unwrap_or(line.len());
            let name = &line[..name_end];
            if !valid_name(name) {
                errors.push(format!(
                    "line {lineno}: invalid sample metric name {name:?}"
                ));
            }
        }
    }

    for (name, count) in &help_counts {
        if *count != 1 {
            errors.push(format!("metric {name}: {count} HELP lines (want 1)"));
        }
        if !type_counts.iter().any(|(n, _)| n == name) {
            errors.push(format!("metric {name}: HELP without TYPE"));
        }
    }
    for (name, count) in &type_counts {
        if *count != 1 {
            errors.push(format!("metric {name}: {count} TYPE lines (want 1)"));
        }
        if !help_counts.iter().any(|(n, _)| n == name) {
            errors.push(format!("metric {name}: TYPE without HELP"));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_help_type_and_samples() {
        let mut p = PromText::new();
        p.help("widx_keys_total", "Probed keys.")
            .type_("widx_keys_total", "counter")
            .sample_u64("widx_keys_total", &[("tier", "point"), ("shard", "0")], 42)
            .sample("widx_occupancy", &[], 0.5);
        let text = p.finish();
        assert_eq!(
            text,
            "# HELP widx_keys_total Probed keys.\n\
             # TYPE widx_keys_total counter\n\
             widx_keys_total{tier=\"point\",shard=\"0\"} 42\n\
             widx_occupancy 0.5\n"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.sample_u64("m", &[("k", "a\"b\\c\nd")], 1);
        assert_eq!(p.finish(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn lint_accepts_well_formed_exposition() {
        let mut p = PromText::new();
        p.help("widx_keys_total", "Probed keys.")
            .type_("widx_keys_total", "counter")
            .sample_u64("widx_keys_total", &[("shard", "0")], 42)
            .help("widx_latency_ns", "Latency summary.")
            .type_("widx_latency_ns", "summary")
            .sample_u64("widx_latency_ns_sum", &[], 100)
            .sample_u64("widx_latency_ns_count", &[], 3);
        assert_eq!(lint_exposition(&p.finish()), Vec::<String>::new());
    }

    #[test]
    fn lint_flags_duplicates_missing_pairs_and_bad_names() {
        let text = "# HELP widx_a one\n\
                    # TYPE widx_a counter\n\
                    # TYPE widx_a counter\n\
                    # HELP widx_b two\n\
                    # TYPE widx_c widget\n\
                    widx_a 1\n\
                    9bad_name 2\n";
        let errors = lint_exposition(text);
        assert!(errors
            .iter()
            .any(|e| e.contains("widx_a") && e.contains("2 TYPE")));
        assert!(errors
            .iter()
            .any(|e| e.contains("widx_b") && e.contains("without TYPE")));
        assert!(errors
            .iter()
            .any(|e| e.contains("widx_c") && e.contains("without HELP")));
        assert!(errors.iter().any(|e| e.contains("widget")));
        assert!(errors.iter().any(|e| e.contains("9bad_name")));
    }
}
