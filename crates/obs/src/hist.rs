//! Fixed log2-bucketed latency histograms with lock-free recording.
//!
//! An [`AtomicHistogram`] is a set of 64 power-of-two buckets plus running
//! sum / min / max registers, all plain `AtomicU64`s. Recording is a handful
//! of relaxed read-modify-writes; snapshotting reads the registers without
//! resetting them, so any number of observers can scrape a live histogram
//! while writers keep recording.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets. Bucket `i` covers `[2^i, 2^(i+1))` nanoseconds
/// (bucket 0 additionally absorbs zero); bucket 63 absorbs everything above.
pub const HIST_BUCKETS: usize = 64;

/// Map a nanosecond value to its log2 bucket index.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (63 - ns.leading_zeros()) as usize
    }
}

/// Inclusive lower edge of bucket `i`, in nanoseconds.
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Inclusive upper edge of bucket `i`, in nanoseconds.
#[inline]
pub fn bucket_ceil(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A lock-free log2 latency histogram.
///
/// Writers call [`record`](AtomicHistogram::record) concurrently from any
/// number of threads; readers call [`snapshot`](AtomicHistogram::snapshot)
/// at any time. Snapshots are not torn per register (each counter is a
/// single atomic) but are not a global atomic cut: a snapshot taken during
/// concurrent recording may observe a record's bucket increment without its
/// sum update or vice versa. Counts are derived from the buckets alone, so
/// they are always internally consistent and monotone across snapshots.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one sample, in nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record one sample given as a [`Duration`] (saturating at `u64` ns).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Read the current state without resetting it.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: self.min_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of an [`AtomicHistogram`]'s registers.
///
/// Snapshots merge (bucket-wise addition, min of mins, max of maxes), which
/// is associative and commutative, so per-worker histograms can be combined
/// in any order into a service-wide view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; bucket `i` covers `[2^i, 2^(i+1))` ns.
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all recorded samples, in nanoseconds.
    pub sum_ns: u64,
    /// Smallest recorded sample (`u64::MAX` when empty).
    pub min_ns: u64,
    /// Largest recorded sample (0 when empty).
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded samples (derived from the buckets, so a
    /// snapshot is always self-consistent).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.min_ns == u64::MAX {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max_ns
    }

    /// Arithmetic mean of the recorded samples, in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / count as f64
        }
    }

    /// Nearest-rank quantile, quantized to bucket resolution.
    ///
    /// Returns the upper edge of the bucket holding the target rank,
    /// clamped into `[min, max]` so degenerate distributions report exact
    /// values. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_ceil(i).clamp(self.min(), self.max_ns.max(self.min()));
            }
        }
        self.max_ns
    }

    /// Combine two snapshots into one (associative and commutative).
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            // Saturating keeps the merge total (and its associativity)
            // well-defined even for adversarial sums no real latency
            // stream produces.
            sum_ns: self.sum_ns.saturating_add(other.sum_ns),
            min_ns: self.min_ns.min(other.min_ns),
            max_ns: self.max_ns.max(other.max_ns),
        }
    }

    /// Fold `other` into `self` in place.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        *self = self.merged(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        for i in 1..63 {
            assert_eq!(bucket_of(1u64 << i), i, "lower edge of bucket {i}");
            assert_eq!(
                bucket_of((1u64 << (i + 1)) - 1),
                i,
                "upper edge of bucket {i}"
            );
        }
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_ceil(0), 1);
        assert_eq!(bucket_floor(10), 1024);
        assert_eq!(bucket_ceil(10), 2047);
        assert_eq!(bucket_ceil(63), u64::MAX);
    }

    #[test]
    fn record_and_snapshot_roundtrip() {
        let h = AtomicHistogram::new();
        for ns in [0, 1, 2, 100, 1_000, 1_000_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum_ns, 1_001_103);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 1_000_000);
        assert!((s.mean_ns() - 1_001_103.0 / 6.0).abs() < 1e-9);
        // 0 and 1 share bucket 0.
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = AtomicHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean_ns(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn quantiles_are_bucket_quantized_and_clamped() {
        let h = AtomicHistogram::new();
        // One sample: every quantile is exactly that sample (clamp at work).
        h.record(700);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 700);
        assert_eq!(s.quantile(0.5), 700);
        assert_eq!(s.quantile(1.0), 700);

        // Spread: p50 lands in the bucket holding the median rank.
        let h = AtomicHistogram::new();
        for ns in [10, 20, 40, 80, 160, 320, 640, 1280] {
            h.record(ns);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        // rank 4 of 8 -> the sample 80 -> bucket 6 [64,128), ceil 127.
        assert_eq!(p50, 127);
        assert_eq!(s.quantile(1.0), 1280);
        assert!(s.quantile(0.99) <= s.max());
        assert!(s.quantile(0.01) >= s.min());
    }

    #[test]
    fn percentiles_on_empty_histogram_are_zero() {
        let s = AtomicHistogram::new().snapshot();
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(s.quantile(q), 0, "empty q{q}");
        }
    }

    #[test]
    fn percentiles_with_single_bucket_mass_report_that_bucket() {
        // All mass in one bucket: every percentile must land inside it.
        let h = AtomicHistogram::new();
        for _ in 0..10_000 {
            h.record(1_500); // bucket 10: [1024, 2048)
        }
        let s = h.snapshot();
        for q in [0.5, 0.99, 0.999] {
            let v = s.quantile(q);
            assert_eq!(v, 1_500, "single-bucket q{q} clamps to the exact sample");
            assert!(v >= s.min() && v <= s.max());
        }
    }

    #[test]
    fn percentiles_with_saturated_top_bucket_do_not_panic_or_overflow() {
        // Bucket 63 absorbs everything >= 2^63; its ceil is u64::MAX.
        let h = AtomicHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        for q in [0.5, 0.99, 0.999] {
            let v = s.quantile(q);
            assert!(v >= 1u64 << 63, "saturated q{q} stays in the top bucket");
        }
        assert_eq!(s.max(), u64::MAX);
        // Mixed: a low-bucket majority with a saturated tail keeps p50 low
        // and pushes p999 to the top without panicking.
        let h = AtomicHistogram::new();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(u64::MAX);
        let s = h.snapshot();
        assert!(s.quantile(0.5) < 1_000);
        assert!(s.quantile(0.999) < 1_000); // rank 999 of 1000 is still the low bucket
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn merge_is_commutative_and_preserves_totals() {
        let a = {
            let h = AtomicHistogram::new();
            for ns in [5, 50, 500] {
                h.record(ns);
            }
            h.snapshot()
        };
        let b = {
            let h = AtomicHistogram::new();
            for ns in [7, 7_000] {
                h.record(ns);
            }
            h.snapshot()
        };
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 5);
        assert_eq!(ab.sum_ns, a.sum_ns + b.sum_ns);
        assert_eq!(ab.min(), 5);
        assert_eq!(ab.max(), 7_000);
        // Merging the empty snapshot is the identity.
        assert_eq!(a.merged(&HistogramSnapshot::default()), a);
    }
}
