//! Model parameters.

/// Inputs to the Section 3.2 analytical model.
///
/// The paper's assumptions (all stated in Section 3.2): 64-bit keys with
/// eight keys per cache block; the first access to a key block always
/// misses to main memory; node accesses always miss in the L1-D; the
/// LLC miss ratio is the free parameter swept on the figures' x-axes.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelParams {
    /// L1 load-to-use latency (cycles).
    pub l1_latency: f64,
    /// Additional latency of an LLC hit beyond the L1 (cycles).
    pub llc_latency: f64,
    /// Additional latency of a DRAM access beyond the LLC (cycles).
    pub mem_latency: f64,
    /// Memory operations per hashing step (one key fetch).
    pub hash_mem_ops: f64,
    /// ALU cycles per hashing step.
    pub hash_comp_cycles: f64,
    /// L1 miss ratio of key fetches (1/8: eight 64-bit keys per block,
    /// first access misses).
    pub hash_l1_miss: f64,
    /// LLC miss ratio of key fetches (1.0: streaming keys never re-visit
    /// a block).
    pub hash_llc_miss: f64,
    /// Memory operations per node-walk step (one node access).
    pub walk_mem_ops: f64,
    /// ALU cycles per node-walk step (compare + next-pointer chase).
    pub walk_comp_cycles: f64,
    /// L1 miss ratio of node accesses (1.0: tables far exceed the L1).
    pub walk_l1_miss: f64,
    /// Outstanding-miss capability of one hashing unit.
    pub hash_mlp: f64,
    /// Outstanding-miss capability of one walker.
    pub walk_mlp: f64,
    /// L1 data ports.
    pub l1_ports: f64,
    /// L1 MSHR count.
    pub mshrs: f64,
    /// Effective memory-controller bandwidth in 64-byte blocks per cycle
    /// (9 GB/s at 2 GHz = 4.5 B/cycle = 0.0703 blocks/cycle).
    pub mc_blocks_per_cycle: f64,
}

impl Default for ModelParams {
    /// Parameters matching Table 2 and the Section 3.2 assumptions.
    fn default() -> ModelParams {
        ModelParams {
            l1_latency: 2.0,
            llc_latency: 14.0,  // crossbar + LLC array + crossbar
            mem_latency: 105.0, // MC queue + DRAM + return
            hash_mem_ops: 1.0,
            hash_comp_cycles: 4.0,
            hash_l1_miss: 1.0 / 8.0,
            hash_llc_miss: 1.0,
            walk_mem_ops: 1.0,
            walk_comp_cycles: 2.0,
            walk_l1_miss: 1.0,
            hash_mlp: 1.0,
            walk_mlp: 1.0,
            l1_ports: 2.0,
            mshrs: 10.0,
            mc_blocks_per_cycle: 9.0e9 / (64.0 * 2.0e9),
        }
    }
}

impl ModelParams {
    /// The paper's effective-bandwidth assumption: 9 GB/s per controller
    /// (70 % of 12.8 GB/s peak), in blocks per 2 GHz cycle.
    #[must_use]
    pub fn paper_mc_blocks_per_cycle() -> f64 {
        9.0e9 / (64.0 * 2.0e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_assumptions() {
        let p = ModelParams::default();
        assert!((p.hash_l1_miss - 0.125).abs() < 1e-12, "8 keys per block");
        assert!((p.walk_l1_miss - 1.0).abs() < 1e-12, "nodes always miss L1");
        assert!((p.mc_blocks_per_cycle - 0.0703125).abs() < 1e-6);
        assert_eq!(p.l1_ports, 2.0);
        assert_eq!(p.mshrs, 10.0);
    }
}
