//! Equations 1–5 of the paper, implemented verbatim.

use crate::ModelParams;

/// Average memory access time for an operation with the given miss
/// ratios (the latency inputs to Equation 1).
#[must_use]
pub fn amat(p: &ModelParams, l1_miss: f64, llc_miss: f64) -> f64 {
    p.l1_latency + l1_miss * (p.llc_latency + llc_miss * p.mem_latency)
}

/// **Equation 1**: `Cycles = AMAT * MemOps + CompCycles` — the fully
/// pipelined cycles to hash one key or walk one node.
#[must_use]
pub fn cycles_per_op(amat: f64, mem_ops: f64, comp_cycles: f64) -> f64 {
    amat * mem_ops + comp_cycles
}

/// Cycles to hash one key with the configured (cold-key) LLC miss
/// ratio — used where the paper treats key fetches as streaming ("the
/// first key to a given cache block always misses in the L1-D and LLC").
#[must_use]
pub fn hash_cycles(p: &ModelParams) -> f64 {
    hash_cycles_at(p, p.hash_llc_miss)
}

/// Cycles to hash one key at an explicit LLC miss ratio for key blocks.
/// Figure 4a sweeps the LLC miss ratio for *both* the hash and walk
/// paths (that is the only reading under which its single-ported L1
/// saturates at ~6 walkers), so the bandwidth model uses this form.
#[must_use]
pub fn hash_cycles_at(p: &ModelParams, llc_miss: f64) -> f64 {
    cycles_per_op(
        amat(p, p.hash_l1_miss, llc_miss),
        p.hash_mem_ops,
        p.hash_comp_cycles,
    )
}

/// Cycles to walk one node at LLC miss ratio `llc_miss`.
#[must_use]
pub fn walk_cycles(p: &ModelParams, llc_miss: f64) -> f64 {
    cycles_per_op(
        amat(p, p.walk_l1_miss, llc_miss),
        p.walk_mem_ops,
        p.walk_comp_cycles,
    )
}

/// **Equation 2**: L1-D accesses per cycle for `n` walkers, each with a
/// decoupled hashing unit — `(MemOps/Cycles)_{H,W} * N` — compared by
/// Figure 4a against the port count.
#[must_use]
pub fn l1_pressure(p: &ModelParams, llc_miss: f64, n: f64) -> f64 {
    let hash_rate = p.hash_mem_ops / hash_cycles_at(p, llc_miss);
    let walk_rate = p.walk_mem_ops / walk_cycles(p, llc_miss);
    (hash_rate + walk_rate) * n
}

/// **Equation 3**: outstanding L1 misses for `n` walkers —
/// `max(MLP_H + MLP_W) * N` — compared by Figure 4b against the MSHR
/// count.
#[must_use]
pub fn mshr_demand(p: &ModelParams, n: f64) -> f64 {
    (p.hash_mlp + p.walk_mlp) * n
}

/// **Equation 4**: off-chip block demands per operation —
/// `L1MR * LLCMR * MemOps`.
#[must_use]
pub fn off_chip_demand(l1_miss: f64, llc_miss: f64, mem_ops: f64) -> f64 {
    l1_miss * llc_miss * mem_ops
}

/// **Equation 5**: walkers one memory controller can serve at LLC miss
/// ratio `llc_miss` — `BW_MC / (OffChipDemands/Cycles)_{H,W}` (Figure 4c).
#[must_use]
pub fn walkers_per_mc(p: &ModelParams, llc_miss: f64) -> f64 {
    let hash_demand_rate =
        off_chip_demand(p.hash_l1_miss, p.hash_llc_miss, p.hash_mem_ops) / hash_cycles(p);
    let walk_demand_rate =
        off_chip_demand(p.walk_l1_miss, llc_miss, p.walk_mem_ops) / walk_cycles(p, llc_miss);
    p.mc_blocks_per_cycle / (hash_demand_rate + walk_demand_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ModelParams {
        ModelParams::default()
    }

    #[test]
    fn amat_composition() {
        let p = p();
        // No misses: just L1.
        assert!((amat(&p, 0.0, 0.0) - p.l1_latency).abs() < 1e-12);
        // Always to memory.
        let worst = amat(&p, 1.0, 1.0);
        assert!((worst - (2.0 + 14.0 + 105.0)).abs() < 1e-12);
    }

    #[test]
    fn equation_1_linear() {
        assert!((cycles_per_op(10.0, 2.0, 5.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn walk_cycles_grow_with_miss_ratio() {
        let p = p();
        assert!(walk_cycles(&p, 0.9) > walk_cycles(&p, 0.1));
        // At zero LLC misses a walk is an LLC hit: 2 + 14 + comp.
        assert!((walk_cycles(&p, 0.0) - (16.0 + p.walk_comp_cycles)).abs() < 1e-12);
    }

    #[test]
    fn l1_pressure_scales_with_walkers() {
        let p = p();
        let one = l1_pressure(&p, 0.5, 1.0);
        let four = l1_pressure(&p, 0.5, 4.0);
        assert!((four - 4.0 * one).abs() < 1e-12);
    }

    #[test]
    fn l1_pressure_falls_with_miss_ratio() {
        // Slower walks issue fewer accesses per cycle (Figure 4a's
        // downward-sloping curves).
        let p = p();
        assert!(l1_pressure(&p, 0.0, 8.0) > l1_pressure(&p, 1.0, 8.0));
    }

    #[test]
    fn paper_anchor_single_port_limit() {
        // Paper: "when the LLC miss ratio is low, a single-ported L1-D
        // becomes the bottleneck for more than six walkers. However, a
        // two-ported L1-D can comfortably support 10 walkers."
        let p = p();
        let walkers_at_one_port = (1..=16)
            .take_while(|n| l1_pressure(&p, 0.0, f64::from(*n)) <= 1.0)
            .count();
        assert!(
            (5..=7).contains(&walkers_at_one_port),
            "single-ported limit {walkers_at_one_port} should be ~6"
        );
        assert!(
            l1_pressure(&p, 0.0, 10.0) <= 2.0,
            "two ports must sustain 10 walkers; pressure {}",
            l1_pressure(&p, 0.0, 10.0)
        );
    }

    #[test]
    fn paper_anchor_mshr_limit() {
        // Paper: "assuming 8 to 10 MSHRs ... the number of concurrent
        // walkers is limited to four or five."
        let p = p();
        assert!(mshr_demand(&p, 4.0) <= 8.0);
        assert!(mshr_demand(&p, 5.0) <= 10.0);
        assert!(mshr_demand(&p, 6.0) > 10.0);
    }

    #[test]
    fn paper_anchor_walkers_per_mc() {
        // Paper: "when LLC misses are rare, one memory controller can
        // serve almost eight walkers, whereas at high LLC miss ratios,
        // the number of walkers per MC drops to four."
        let p = p();
        let low = walkers_per_mc(&p, 0.1);
        let high = walkers_per_mc(&p, 1.0);
        assert!((6.0..=10.0).contains(&low), "low-miss walkers/MC {low}");
        assert!((3.0..=5.5).contains(&high), "high-miss walkers/MC {high}");
        assert!(low > high);
    }
}
