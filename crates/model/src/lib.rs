//! # widx-model — the first-order analytical model of Section 3.2
//!
//! The paper derives practical limits on walker parallelism before
//! designing Widx: L1-D bandwidth (Equations 1–2, Figure 4a), L1 MSHRs
//! (Equation 3, Figure 4b), off-chip bandwidth (Equations 4–5,
//! Figure 4c), and the ability of one shared dispatcher to feed N
//! walkers (Equation 6, Figure 5). This crate implements those
//! equations verbatim over an explicit [`ModelParams`] so every figure's
//! series can be regenerated and the design conclusions re-checked:
//!
//! * a two-ported L1 sustains ~10 walkers, a single-ported one ~6 at
//!   low LLC miss ratios;
//! * 8–10 MSHRs cap the useful walker count at 4–5;
//! * one memory controller serves ~8 walkers at low LLC miss ratios,
//!   dropping to ~4 at high miss ratios;
//! * one dispatcher feeds up to 4 walkers except for very shallow
//!   buckets over cache-resident tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bottleneck;
pub mod equations;
pub mod params;
pub mod utilization;

pub use bottleneck::{l1_bandwidth_series, mshr_series, walkers_per_mc_series};
pub use equations::{
    amat, cycles_per_op, l1_pressure, mshr_demand, off_chip_demand, walkers_per_mc,
};
pub use params::ModelParams;
pub use utilization::{walker_utilization, walker_utilization_series};
