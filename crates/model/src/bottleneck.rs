//! Figure 4 sweeps: the three scalability bottlenecks.

use crate::equations::{l1_pressure, mshr_demand, walkers_per_mc};
use crate::ModelParams;

/// One point of a bottleneck sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// The x value (LLC miss ratio or walker count, per series).
    pub x: f64,
    /// The y value.
    pub y: f64,
}

/// Figure 4a: L1-D accesses per cycle vs. LLC miss ratio, one series
/// per walker count. Returns `(walkers, series)` pairs.
#[must_use]
pub fn l1_bandwidth_series(
    p: &ModelParams,
    walker_counts: &[u32],
    steps: usize,
) -> Vec<(u32, Vec<SweepPoint>)> {
    walker_counts
        .iter()
        .map(|n| {
            let series = (0..=steps)
                .map(|i| {
                    let m = i as f64 / steps as f64;
                    SweepPoint {
                        x: m,
                        y: l1_pressure(p, m, f64::from(*n)),
                    }
                })
                .collect();
            (*n, series)
        })
        .collect()
}

/// Figure 4b: outstanding L1 misses vs. walker count.
#[must_use]
pub fn mshr_series(p: &ModelParams, max_walkers: u32) -> Vec<SweepPoint> {
    (1..=max_walkers)
        .map(|n| SweepPoint {
            x: f64::from(n),
            y: mshr_demand(p, f64::from(n)),
        })
        .collect()
}

/// Figure 4c: walkers per memory controller vs. LLC miss ratio.
#[must_use]
pub fn walkers_per_mc_series(p: &ModelParams, steps: usize) -> Vec<SweepPoint> {
    (1..=steps)
        .map(|i| {
            let m = i as f64 / steps as f64;
            SweepPoint {
                x: m,
                y: walkers_per_mc(p, m),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_series_shape() {
        let p = ModelParams::default();
        let series = l1_bandwidth_series(&p, &[1, 2, 4, 8, 10], 10);
        assert_eq!(series.len(), 5);
        for (n, points) in &series {
            assert_eq!(points.len(), 11);
            // Monotonically non-increasing in miss ratio.
            for w in points.windows(2) {
                assert!(w[1].y <= w[0].y + 1e-12, "series {n} must fall");
            }
        }
        // More walkers => more pressure at every x.
        let one = &series[0].1;
        let ten = &series[4].1;
        for (a, b) in one.iter().zip(ten) {
            assert!(b.y > a.y);
        }
    }

    #[test]
    fn fig4b_linear() {
        let p = ModelParams::default();
        let s = mshr_series(&p, 10);
        assert_eq!(s.len(), 10);
        // Linear with slope MLP_H + MLP_W = 2 (paper: 10 walkers -> 20
        // outstanding misses).
        assert!((s[9].y - 20.0).abs() < 1e-12);
        assert!((s[0].y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fig4c_decreasing() {
        let p = ModelParams::default();
        let s = walkers_per_mc_series(&p, 10);
        for w in s.windows(2) {
            assert!(w[1].y <= w[0].y, "walkers/MC must fall with miss ratio");
        }
    }
}
