//! Equation 6 and Figure 5: how many walkers one dispatcher can feed.

use crate::equations::{hash_cycles, walk_cycles};
use crate::ModelParams;

/// **Equation 6**:
/// `WalkerUtilization = (Cycles_node * Nodes/bucket) / (Cycles_hash * N)`,
/// clamped to 1 — the fraction of time a walker is busy when one
/// dispatcher feeds `n` walkers over buckets of the given depth.
#[must_use]
pub fn walker_utilization(p: &ModelParams, llc_miss: f64, nodes_per_bucket: f64, n: f64) -> f64 {
    let walk_total = walk_cycles(p, llc_miss) * nodes_per_bucket;
    let hash_total = hash_cycles(p) * n;
    (walk_total / hash_total).min(1.0)
}

/// One Figure 5 sub-plot: utilization vs. LLC miss ratio for a set of
/// walker counts, at a fixed bucket depth.
#[must_use]
pub fn walker_utilization_series(
    p: &ModelParams,
    nodes_per_bucket: f64,
    walker_counts: &[u32],
    steps: usize,
) -> Vec<(u32, Vec<(f64, f64)>)> {
    walker_counts
        .iter()
        .map(|n| {
            let series = (0..=steps)
                .map(|i| {
                    let m = i as f64 / steps as f64;
                    (m, walker_utilization(p, m, nodes_per_bucket, f64::from(*n)))
                })
                .collect();
            (*n, series)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ModelParams {
        ModelParams::default()
    }

    #[test]
    fn utilization_clamped_to_one() {
        // Deep buckets at high miss ratios: walkers are always busy.
        assert_eq!(walker_utilization(&p(), 1.0, 3.0, 2.0), 1.0);
    }

    #[test]
    fn more_walkers_lower_utilization() {
        let p = p();
        let u2 = walker_utilization(&p, 0.2, 1.0, 2.0);
        let u8 = walker_utilization(&p, 0.2, 1.0, 8.0);
        assert!(u8 < u2);
    }

    #[test]
    fn deeper_buckets_raise_utilization() {
        let p = p();
        let shallow = walker_utilization(&p, 0.3, 1.0, 4.0);
        let deep = walker_utilization(&p, 0.3, 3.0, 4.0);
        assert!(deep >= shallow);
    }

    #[test]
    fn paper_anchor_dispatcher_feeds_four() {
        // Paper: "one dispatcher is able to feed up to four walkers,
        // except for very shallow buckets (1 node/bucket) with low LLC
        // miss ratios."
        let p = p();
        // 2 nodes/bucket, moderate-to-high miss ratio: 4 walkers fully fed.
        assert!(walker_utilization(&p, 0.5, 2.0, 4.0) > 0.95);
        // 1 node/bucket, low miss ratio: 4 walkers starve.
        assert!(walker_utilization(&p, 0.0, 1.0, 4.0) < 0.5);
        // 8 walkers starve even at full miss ratio with shallow buckets.
        assert!(walker_utilization(&p, 1.0, 1.0, 8.0) < 1.0);
    }

    #[test]
    fn series_shape_matches_figure_5() {
        let p = p();
        let series = walker_utilization_series(&p, 1.0, &[2, 4, 8], 10);
        assert_eq!(series.len(), 3);
        for (_, points) in &series {
            // Utilization rises (or saturates) with the miss ratio.
            for w in points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-12);
            }
        }
    }
}
