//! End-to-end tests for the write wire opcodes (`Insert` 0x0A,
//! `Delete` 0x0B, `Update` 0x0C): a `WidxClient` mutating a running
//! `WidxServer` must get positional per-key acks back under the
//! mirrored reply opcodes, and the mutations must be visible to
//! subsequent reads through both tiers. The suite runs under whatever
//! poller backend `WIDX_POLLER` selects, so CI exercises it on both
//! epoll and poll.

use std::sync::Arc;
use std::time::Duration;

use widx_db::hash::HashRecipe;
use widx_net::{NetConfig, WidxClient, WidxServer};
use widx_obs::json::find_u64;
use widx_serve::{ProbeService, Request, Response, ServeConfig};

const ENTRIES: u64 = 2048;

fn serve_config() -> ServeConfig {
    ServeConfig::default()
        .with_shards(2)
        .with_batch_size(16)
        .with_batch_deadline(Duration::from_micros(200))
}

/// Recovers sole ownership once the server (the only other holder) has
/// shut down.
fn unwrap_service(service: Arc<ProbeService>) -> ProbeService {
    Arc::try_unwrap(service)
        .ok()
        .expect("server thread has released its service handle")
}

/// Seeds `(k, k + 1)` for even `k` only, leaving odd keys free for the
/// tests to insert.
fn start() -> (Arc<ProbeService>, WidxServer) {
    let service = Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        (0..ENTRIES).map(|k| (k * 2, k * 2 + 1)),
        &serve_config(),
    ));
    let server = WidxServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("bind server");
    (service, server)
}

#[test]
fn writes_round_trip_over_tcp() {
    let (service, server) = start();
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");

    // Insert fresh odd keys: every ack true, reads see them.
    let pairs: Vec<(u64, u64)> = (0..16u64).map(|i| (i * 2 + 1, 9000 + i)).collect();
    assert_eq!(client.insert(&pairs).expect("insert"), vec![true; 16]);
    assert_eq!(client.lookup(1).expect("lookup"), vec![9000]);
    assert_eq!(
        client.range_scan(0, 3, usize::MAX).expect("scan"),
        vec![(0, 1), (1, 9000), (2, 3), (3, 9001)],
        "the ordered tier serves inserted keys in key order"
    );

    // Update: hits rewrite, misses ack false and never insert.
    let acks = client.update(&[(1, 1111), (999_999, 5)]).expect("update");
    assert_eq!(acks, vec![true, false]);
    assert_eq!(client.lookup(1).expect("lookup"), vec![1111]);
    assert_eq!(client.lookup(999_999).expect("lookup"), Vec::<u64>::new());

    // Delete: positional acks across hits and misses.
    let acks = client.delete(&[1, 999_999, 3]).expect("delete");
    assert_eq!(acks, vec![true, false, true]);
    assert_eq!(client.lookup(1).expect("lookup"), Vec::<u64>::new());
    assert_eq!(
        client.range_scan(0, 3, usize::MAX).expect("scan"),
        vec![(0, 1), (2, 3)],
        "deletes reach the ordered tier too"
    );

    drop(client);
    let _ = server.shutdown();
    let stats = unwrap_service(service).shutdown();
    // 16 inserts + 2 updates + 3 deletes, each applied in both tiers.
    assert_eq!(stats.total_write_ops(), 21 * 2);
    assert_eq!(stats.epoch_retired, 0, "shutdown drained retirements");
}

#[test]
fn writes_pipeline_with_reads() {
    let (service, server) = start();
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");

    // Interleave write and read sends without waiting, then reap by id:
    // ids make out-of-order completion safe, including for mutations.
    let mut write_ids = Vec::new();
    let mut read_ids = Vec::new();
    for i in 0..24u64 {
        let id = client
            .send(&Request::Insert {
                pairs: vec![(10_001 + i, i)],
            })
            .expect("send insert");
        write_ids.push(id);
        let key = (i % ENTRIES) * 2;
        read_ids.push((key, client.send(&Request::Lookup { key }).expect("send")));
    }
    for id in write_ids {
        match client.recv(id).expect("recv write") {
            Response::Write { acks } => assert_eq!(acks, vec![true]),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    for (key, id) in read_ids {
        match client.recv(id).expect("recv read") {
            Response::Lookup { payloads, .. } => assert_eq!(payloads, vec![key + 1]),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    // The stats opcode reports the write counters the load produced.
    let json = client.stats_json().expect("stats scrape");
    assert_eq!(
        find_u64(&json, "total_write_ops"),
        Some(24 * 2),
        "both tiers count each op: {json}"
    );
    assert_eq!(find_u64(&json, "total_write_applied"), Some(24 * 2));

    drop(client);
    let _ = server.shutdown();
    let _ = unwrap_service(service).shutdown();
}

#[test]
fn empty_write_batches_ack_instantly() {
    let (service, server) = start();
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");
    assert_eq!(client.insert(&[]).expect("insert"), Vec::<bool>::new());
    assert_eq!(client.delete(&[]).expect("delete"), Vec::<bool>::new());
    assert_eq!(client.update(&[]).expect("update"), Vec::<bool>::new());
    drop(client);
    let _ = server.shutdown();
    let _ = unwrap_service(service).shutdown();
}
