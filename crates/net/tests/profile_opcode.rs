//! End-to-end tests for the `Profile` wire opcode: a `WidxClient`
//! scrape of a running `WidxServer` must round-trip the service's
//! per-stage hardware-counter document — `{"enabled": false}` from a
//! server built without profiling, and a full backend/stage/walk
//! breakdown (matching the in-process rendering) from one built with
//! it. The suite runs under whatever poller backend `WIDX_POLLER`
//! selects, so CI exercises it on both epoll and poll.

use std::sync::Arc;
use std::time::Duration;

use widx_db::hash::HashRecipe;
use widx_net::{NetConfig, WidxClient, WidxServer};
use widx_obs::json::find_u64;
use widx_serve::{ProbeService, ServeConfig};

const ENTRIES: u64 = 4096;

fn start(serve: ServeConfig) -> (Arc<ProbeService>, WidxServer) {
    let service = Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        (0..ENTRIES).map(|k| (k, k + 1)),
        &serve,
    ));
    let server = WidxServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("bind server");
    (service, server)
}

fn stop(client: WidxClient, server: WidxServer, service: Arc<ProbeService>) {
    drop(client);
    let _ = server.shutdown();
    let _ = Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
}

#[test]
fn profile_opcode_round_trips_over_tcp() {
    let (service, server) = start(
        ServeConfig::default()
            .with_shards(2)
            .with_batch_deadline(Duration::from_micros(100))
            .with_profile(true),
    );
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");

    // Serve real load so the counters have something to attribute.
    for key in 0..64u64 {
        assert_eq!(client.lookup(key).expect("lookup"), vec![key + 1]);
    }
    let entries = client.range_scan(0, 1000, 500).expect("range_scan");
    assert_eq!(entries.len(), 500);

    let json = client.profile_json().expect("profile scrape");
    assert!(json.starts_with("{\"enabled\": true,"), "{json}");
    // The document names its backend and carries every seam stage.
    assert!(json.contains("\"backend\":"), "{json}");
    for stage in ["queue_wait", "batch_wait", "walk", "gather", "reply_write"] {
        assert!(json.contains(&format!("\"{stage}\":")), "{json}");
    }
    // The software cross-check counters saw the walkers run.
    let at = json.find("\"walk\"").expect("walk block");
    assert!(find_u64(&json[at..], "nodes").expect("nodes") > 0, "{json}");
    assert!(
        find_u64(&json[at..], "rounds").expect("rounds") > 0,
        "{json}"
    );

    // The wire document matches the in-process rendering at quiescence.
    assert_eq!(json, service.profile_json());

    // The same snapshot rides the Stats opcode's document.
    let stats = client.stats_json().expect("stats scrape");
    assert!(stats.contains("\"prof\": {\"backend\":"), "{stats}");

    stop(client, server, service);
}

#[test]
fn unprofiled_server_answers_disabled() {
    let (service, server) = start(ServeConfig::default().with_shards(2));
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");

    for key in 0..16u64 {
        assert_eq!(client.lookup(key).expect("lookup"), vec![key + 1]);
    }
    // A scrape of an unprofiled server is an answer, not an error.
    let json = client.profile_json().expect("profile scrape");
    assert_eq!(json, "{\"enabled\": false}");
    let stats = client.stats_json().expect("stats scrape");
    assert!(!stats.contains("\"prof\""), "{stats}");

    stop(client, server, service);
}
