//! End-to-end tests for the `Stats` wire opcode: a `WidxClient` scrape
//! of a running `WidxServer` must round-trip a parseable JSON snapshot
//! whose counters reflect the load actually served — before load, mid
//! load (pipelined between probe requests), and across repeated scrapes
//! (monotone counters). The suite runs under whatever poller backend
//! `WIDX_POLLER` selects, so CI exercises it on both epoll and poll.

use std::sync::Arc;
use std::time::Duration;

use widx_db::hash::HashRecipe;
use widx_net::{NetConfig, WidxClient, WidxServer};
use widx_obs::json::{find_f64, find_u64};
use widx_serve::{ProbeService, Request, Response, ServeConfig};

const ENTRIES: u64 = 4096;

fn serve_config() -> ServeConfig {
    ServeConfig::default()
        .with_shards(2)
        .with_batch_size(16)
        .with_batch_deadline(Duration::from_micros(200))
}

/// Recovers sole ownership once the server (the only other holder) has
/// shut down.
fn unwrap_service(service: Arc<ProbeService>) -> ProbeService {
    Arc::try_unwrap(service)
        .ok()
        .expect("server thread has released its service handle")
}

fn start() -> (Arc<ProbeService>, WidxServer) {
    let service = Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        (0..ENTRIES).map(|k| (k, k + 1)),
        &serve_config(),
    ));
    let server = WidxServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("bind server");
    (service, server)
}

/// Pulls one scrape and sanity-parses the fields every assertion below
/// leans on.
fn scrape(client: &mut WidxClient) -> (String, u64, u64, u64) {
    let json = client.stats_json().expect("stats scrape");
    let total_keys = find_u64(&json, "total_keys").expect("total_keys field");
    let latency_count = find_u64(&json, "count").expect("latency count field");
    let frames_in = find_u64(&json, "frames_in").expect("frames_in field");
    (json, total_keys, latency_count, frames_in)
}

#[test]
fn stats_round_trip_over_tcp() {
    let (service, server) = start();
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");

    // A scrape before any load parses and reports the idle state.
    let (json, keys0, lat0, frames0) = scrape(&mut client);
    assert_eq!(keys0, 0, "no keys served yet: {json}");
    assert_eq!(lat0, 0);
    // The scrape itself was a frame, and this connection is open.
    assert!(frames0 >= 1, "scrape frame counted: {json}");
    assert!(find_u64(&json, "open_connections").expect("gauge") >= 1);
    assert!(find_f64(&json, "wall_ms").expect("wall_ms") >= 0.0);

    // Serve some real load, then scrape again.
    for key in 0..200u64 {
        assert_eq!(client.lookup(key).expect("lookup"), vec![key + 1]);
    }
    let rows = client.join_probe(&[1, 2, 3, ENTRIES + 7]).expect("join");
    assert_eq!(rows.len(), 3);
    let (json, keys1, lat1, frames1) = scrape(&mut client);
    assert_eq!(keys1, 204, "200 lookups + 4 join rows: {json}");
    assert!(lat1 >= 201, "every request recorded a latency: {json}");
    assert!(frames1 > frames0);

    // Counters are monotone scrape to scrape.
    for key in 0..50u64 {
        client.lookup(key).expect("lookup");
    }
    let (_, keys2, lat2, frames2) = scrape(&mut client);
    assert!(keys2 >= keys1 + 50);
    assert!(lat2 >= lat1 + 50);
    assert!(frames2 > frames1);

    drop(client);
    let net = server.shutdown();
    assert!(net.frames_in >= frames2);
    let stats = unwrap_service(service).shutdown().with_net(net);
    assert_eq!(stats.total_keys(), 254);
}

#[test]
fn stats_scrape_mid_pipeline() {
    let (service, server) = start();
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");

    // Pipeline a window of probes, scrape in the middle of it, then
    // reap every pending reply: the scrape must neither block on the
    // queued work nor disturb it.
    let mut ids = Vec::new();
    for key in 0..64u64 {
        ids.push((key, client.send(&Request::Lookup { key }).expect("send")));
    }
    let json = client.stats_json().expect("mid-pipeline scrape");
    assert!(find_u64(&json, "total_keys").is_some(), "parseable: {json}");
    for (key, id) in ids {
        match client.recv(id).expect("recv") {
            Response::Lookup { payloads, .. } => assert_eq!(payloads, vec![key + 1]),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    // Everything the client saw answered is visible in a final scrape.
    let (json, keys, lat, _) = scrape(&mut client);
    assert_eq!(keys, 64, "{json}");
    assert_eq!(lat, 64, "{json}");

    // Stage histograms populate: queue-wait and walk record at the
    // workers, reply-write at the connection flush path.
    for stage in ["queue_wait", "walk", "reply_write"] {
        let at = json.find(&format!("\"{stage}\"")).expect("stage key");
        let count = find_u64(&json[at..], "count").expect("stage count");
        assert!(count > 0, "stage {stage} recorded nothing: {json}");
    }

    drop(client);
    let _ = server.shutdown();
    let stats = unwrap_service(service).shutdown();
    assert_eq!(stats.total_keys(), 64);
}

#[test]
fn stats_reply_matches_live_stats() {
    // The wire snapshot and an in-process `live_stats()` read the same
    // registry: at quiescence their counter fields agree.
    let (service, server) = start();
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");
    for key in 0..32u64 {
        client.lookup(key).expect("lookup");
    }
    let json = client.stats_json().expect("scrape");
    let live = service.live_stats();
    assert_eq!(find_u64(&json, "total_keys"), Some(live.total_keys()));
    assert_eq!(
        find_u64(&json, "count"),
        Some(live.latency.count as u64),
        "latency counts agree: {json}"
    );

    drop(client);
    let _ = server.shutdown();
    let _ = unwrap_service(service).shutdown();
}
