//! Multi-reactor front-end behaviour that the parity suites cannot see
//! from the wire: round-robin connection pinning (via the per-reactor
//! gauges), graceful shutdown draining a backlog parked on a
//! *secondary* reactor, and the client's corked batch mode.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use widx_db::hash::HashRecipe;
use widx_net::wire::{self, Decoded};
use widx_net::{NetConfig, Reply, WidxClient, WidxServer};
use widx_serve::{ProbeService, Request, Response, ServeConfig};

fn stack(pairs: &[(u64, u64)], net: NetConfig) -> (Arc<ProbeService>, WidxServer) {
    let config = ServeConfig::default()
        .with_shards(2)
        .with_batch_size(16)
        .with_batch_deadline(Duration::from_micros(100));
    let service = Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        pairs.iter().copied(),
        &config,
    ));
    let server = WidxServer::bind("127.0.0.1:0", Arc::clone(&service), net).expect("bind");
    (service, server)
}

fn unwrap_service(service: Arc<ProbeService>) -> ProbeService {
    Arc::try_unwrap(service)
        .ok()
        .expect("server has released its service handle")
}

/// The acceptor pins connections round-robin and each stays pinned for
/// life: with 8 connections over 4 reactors, every reactor's gauge must
/// settle at exactly 2 open connections.
#[test]
fn connections_pin_round_robin_across_reactors() {
    let pairs: Vec<(u64, u64)> = (0..1000u64).map(|k| (k, k + 1)).collect();
    let (service, server) = stack(&pairs, NetConfig::default().with_reactors(4));
    let mut clients: Vec<WidxClient> = (0..8)
        .map(|_| WidxClient::connect(server.local_addr()).expect("connect"))
        .collect();
    // A round-trip on every connection proves each reactor has adopted
    // (and served) its share.
    for (i, client) in clients.iter_mut().enumerate() {
        let key = i as u64;
        assert_eq!(client.lookup(key).expect("lookup"), vec![key + 1]);
    }
    // Gauges are re-published once per loop pass; give them a moment.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let net = server.stats();
        assert_eq!(net.reactors.len(), 4);
        if net.reactors.iter().all(|r| r.open_connections == 2) {
            assert_eq!(net.open_connections, 8, "total is the sum of the gauges");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pinning never settled at 2 connections per reactor: {:?}",
            net.reactors
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    drop(clients);
    let net = server.shutdown();
    assert_eq!(net.connections, 8);
    let _ = unwrap_service(service).shutdown();
}

/// Graceful shutdown with a nonempty write backlog on a *secondary*
/// reactor: a slow reader pinned off the first reactor must still
/// receive every byte of its accepted reply (then a clean EOF) even
/// though shutdown begins while megabytes sit unflushed there.
#[test]
fn shutdown_drains_backlog_on_a_secondary_reactor() {
    let pairs: Vec<(u64, u64)> = (0..200_000u64).map(|k| (k, k ^ 0x5A5A)).collect();
    let (service, server) = stack(
        &pairs,
        NetConfig::default()
            .with_reactors(2)
            .with_drain_timeout(Duration::from_secs(30)),
    );
    // First connection pins to reactor 0; the slow reader is the second
    // accept, pinned to reactor 1.
    let mut first = WidxClient::connect(server.local_addr()).expect("connect first");
    assert_eq!(first.lookup(7).expect("warm-up"), vec![7 ^ 0x5A5A]);
    let mut slow = TcpStream::connect(server.local_addr()).expect("connect slow");
    slow.set_nodelay(true).expect("nodelay");
    let mut frame = Vec::new();
    wire::encode_request(
        &mut frame,
        42,
        &Request::RangeScan {
            lo: 0,
            hi: u64::MAX,
            limit: usize::MAX,
            desc: false,
        },
    );
    slow.write_all(&frame).expect("send scan");
    // Wait until the server has decoded the frame (it is "accepted"),
    // then begin shutdown while its ~3 MiB reply is still draining.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().frames_in < 2 {
        assert!(Instant::now() < deadline, "server never saw the scan");
        std::thread::yield_now();
    }
    let shutter = std::thread::spawn(move || server.shutdown());
    // Read slowly: small chunks with pauses, so the reactor's write
    // backlog is nonempty for most of the drain.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    let entries = loop {
        match wire::decode_reply(&buf).expect("framing holds") {
            Decoded::Frame { id, value, .. } => {
                assert_eq!(id, 42);
                match value.expect("a real reply, not an error") {
                    Reply::Response(Response::RangeScan { entries }) => break entries,
                    other => panic!("unexpected reply: {other:?}"),
                }
            }
            Decoded::Corrupt { error, .. } => panic!("corrupt reply: {error:?}"),
            Decoded::Incomplete => {
                let n = slow.read(&mut chunk).expect("read reply");
                assert!(n > 0, "server closed before the accepted reply drained");
                buf.extend_from_slice(&chunk[..n]);
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    };
    assert_eq!(entries.len(), pairs.len(), "the whole reply arrived");
    assert_eq!(entries[123], (123, 123 ^ 0x5A5A));
    // After the drain the server closes cleanly: EOF, no stray bytes.
    let mut rest = Vec::new();
    slow.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty(), "nothing after the reply");
    let net = shutter.join().expect("shutdown thread");
    assert_eq!(net.frames_out, 2, "warm-up + the drained scan");
    drop(first);
    let _ = unwrap_service(service).shutdown();
}

/// Corked sends leave in one batch: nothing reaches the server until a
/// flush (explicit or read-driven), and every pipelined reply still
/// matches its id.
#[test]
fn corked_batches_flush_as_one_and_answer_correctly() {
    let pairs: Vec<(u64, u64)> = (0..5000u64).map(|k| (k, k * 3)).collect();
    let (service, server) = stack(&pairs, NetConfig::default().with_reactors(2));
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");
    client.set_corked(true).expect("cork");
    let n = 100u64;
    let ids: Vec<u64> = (0..n)
        .map(|i| client.send(&Request::Lookup { key: i }).expect("send"))
        .collect();
    assert!(client.corked_bytes() > 0, "frames buffered, not written");
    // Nothing has hit the wire yet: the server has seen no frames.
    assert_eq!(server.stats().frames_in, 0, "cork held the batch back");
    // recv flushes the cork automatically before blocking.
    for (i, id) in ids.into_iter().enumerate() {
        match client.recv(id).expect("answered") {
            Response::Lookup { key, payloads } => {
                assert_eq!(key, i as u64);
                assert_eq!(payloads, vec![i as u64 * 3]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
    assert_eq!(client.corked_bytes(), 0, "flush emptied the cork");
    // Uncorking flushes whatever is pending.
    let id = client.send(&Request::Lookup { key: 1 }).expect("send");
    assert!(client.corked_bytes() > 0);
    client.set_corked(false).expect("uncork");
    assert_eq!(client.corked_bytes(), 0);
    assert!(matches!(
        client.recv(id).expect("answered"),
        Response::Lookup { .. }
    ));
    let net = server.shutdown();
    assert_eq!(net.frames_in, n + 1);
    let _ = unwrap_service(service).shutdown();
}
