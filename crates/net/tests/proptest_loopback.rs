//! Loopback parity tests: random mixed point + range workloads served
//! through `WidxClient` → TCP → `WidxServer` → `ProbeService` must be
//! response-for-response equal to the in-process service / serial
//! oracles — across pipelining (replies may complete out of order;
//! request ids do the matching), shutdown arriving mid-stream, and
//! malformed frames (the server answers an error frame and the
//! connection survives).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use widx_db::hash::HashRecipe;
use widx_db::index::BTreeIndex;
use widx_net::wire::{self, Decoded};
use widx_net::{ClientError, ErrorCode, NetConfig, WidxClient, WidxServer};
use widx_serve::{ProbeService, Request, Response, ServeConfig};

/// One generated operation of the mixed workload.
#[derive(Clone, Debug)]
enum Op {
    Lookup(u64),
    Multi(Vec<u64>),
    Join(Vec<u64>),
    Range(u64, u64, usize, bool),
}

impl Op {
    fn request(&self) -> Request {
        match self {
            Op::Lookup(key) => Request::Lookup { key: *key },
            Op::Multi(keys) => Request::MultiLookup { keys: keys.clone() },
            Op::Join(keys) => Request::JoinProbe { keys: keys.clone() },
            Op::Range(lo, hi, limit, desc) => Request::RangeScan {
                lo: *lo,
                hi: *hi,
                limit: *limit,
                desc: *desc,
            },
        }
    }

    /// Checks `response` against the serial oracles over `pairs`.
    /// Point responses are unordered by contract (sorted before
    /// comparison); range responses must match the oracle exactly,
    /// order included.
    fn check(&self, pairs: &[(u64, u64)], response: &Response) {
        match (self, response) {
            (Op::Lookup(key), Response::Lookup { key: got, payloads }) => {
                assert_eq!(got, key);
                let mut got: Vec<u64> = payloads.clone();
                got.sort_unstable();
                let mut want: Vec<u64> = pairs
                    .iter()
                    .filter(|(k, _)| k == key)
                    .map(|(_, v)| *v)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "lookup {key}");
            }
            (Op::Multi(keys), Response::MultiLookup { matches }) => {
                let mut got = matches.clone();
                got.sort_unstable();
                let mut want: Vec<(u64, u64)> = keys
                    .iter()
                    .flat_map(|p| {
                        pairs
                            .iter()
                            .filter(move |(k, _)| k == p)
                            .map(|(k, v)| (*k, *v))
                    })
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "multi-lookup {keys:?}");
            }
            (Op::Join(keys), Response::JoinProbe { pairs: got }) => {
                let mut got = got.clone();
                got.sort_unstable();
                let mut want: Vec<(u64, u64)> = keys
                    .iter()
                    .enumerate()
                    .flat_map(|(row, p)| {
                        pairs
                            .iter()
                            .filter(move |(k, _)| k == p)
                            .map(move |(_, v)| (row as u64, *v))
                    })
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "join probe {keys:?}");
            }
            (Op::Range(lo, hi, limit, desc), Response::RangeScan { entries }) => {
                let tree = BTreeIndex::build(7, pairs.iter().copied());
                let want = if *desc {
                    tree.range_scan_desc(*lo, *hi, *limit)
                } else {
                    tree.range_scan(*lo, *hi, *limit)
                };
                assert_eq!(
                    entries, &want,
                    "range scan [{lo}, {hi}] limit {limit} desc {desc}"
                );
            }
            (op, other) => panic!("reply variant mismatch: {op:?} answered by {other:?}"),
        }
    }
}

fn op_strategy(keyspace: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..keyspace).prop_map(Op::Lookup),
        prop::collection::vec(0..keyspace, 0..20).prop_map(Op::Multi),
        prop::collection::vec(0..keyspace, 0..20).prop_map(Op::Join),
        (0..keyspace)
            .prop_flat_map(move |lo| (Just(lo), lo..keyspace))
            .prop_flat_map(|(lo, hi)| {
                (
                    Just(lo),
                    Just(hi),
                    prop_oneof![(0usize..40).boxed(), Just(usize::MAX).boxed()],
                    any::<bool>(),
                )
            })
            .prop_map(|(lo, hi, limit, desc)| Op::Range(lo, hi, limit, desc)),
    ]
}

/// Builds the full loopback stack: service (both tiers), server, client.
fn stack(
    pairs: &[(u64, u64)],
    shards: usize,
    batch: usize,
    net: NetConfig,
) -> (Arc<ProbeService>, WidxServer, WidxClient) {
    let config = ServeConfig::default()
        .with_shards(shards)
        .with_batch_size(batch)
        .with_batch_deadline(Duration::from_micros(100));
    let service = Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        pairs.iter().copied(),
        &config,
    ));
    let server = WidxServer::bind("127.0.0.1:0", Arc::clone(&service), net).expect("bind");
    let client = WidxClient::connect(server.local_addr()).expect("connect");
    (service, server, client)
}

/// Recovers the service from its `Arc` once the server (the only other
/// holder) has shut down.
fn unwrap_service(service: Arc<ProbeService>) -> ProbeService {
    Arc::try_unwrap(service)
        .ok()
        .expect("server thread has released its service handle")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The acceptance property: a pipelined mixed workload over TCP is
    /// response-for-response equal to the serial oracles, with request
    /// ids matching replies under out-of-order completion, and the
    /// stats snapshot's net tier accounts for every frame.
    #[test]
    fn wire_responses_match_oracles(
        pairs in prop::collection::vec((0u64..120, any::<u64>()), 0..300),
        ops in prop::collection::vec(op_strategy(150), 1..50),
        shards in 1usize..5,
        batch in 1usize..24,
    ) {
        let (service, server, mut client) =
            stack(&pairs, shards, batch, NetConfig::default());
        // Pipeline everything before reaping anything: replies complete
        // out of order across the point and range tiers.
        let ids: Vec<u64> = ops
            .iter()
            .map(|op| client.send(&op.request()).expect("send"))
            .collect();
        for (op, id) in ops.iter().zip(ids) {
            let response = client.recv(id).expect("every request answered");
            op.check(&pairs, &response);
        }
        let net = server.shutdown();
        let stats = unwrap_service(service).shutdown().with_net(net);
        prop_assert_eq!(stats.net.connections, 1);
        prop_assert_eq!(stats.net.frames_in, ops.len() as u64);
        prop_assert_eq!(stats.net.frames_out, ops.len() as u64);
        prop_assert_eq!(stats.net.busy_rejects, 0);
        prop_assert_eq!(stats.net.decode_errors, 0);
        prop_assert!(!stats.net.is_empty());
    }

    /// Service shutdown mid-stream: requests accepted before the stop
    /// still answer oracle-equal over the wire; requests sent after it
    /// get a typed `Stopped` error frame — and the connection survives
    /// both.
    #[test]
    fn shutdown_mid_stream_over_the_wire(
        pairs in prop::collection::vec((0u64..80, any::<u64>()), 0..200),
        before in prop::collection::vec(op_strategy(100), 1..25),
        after in prop::collection::vec(op_strategy(100), 1..10),
        shards in 1usize..4,
    ) {
        let (service, server, mut client) =
            stack(&pairs, shards, 8, NetConfig::default());
        let ids: Vec<u64> = before
            .iter()
            .map(|op| client.send(&op.request()).expect("send"))
            .collect();
        for (op, id) in before.iter().zip(ids) {
            op.check(&pairs, &client.recv(id).expect("accepted before stop"));
        }
        service.stop();
        for op in &after {
            match client.call(&op.request()) {
                Err(ClientError::Remote(e)) => prop_assert_eq!(e.code, ErrorCode::Stopped),
                other => panic!("expected Stopped error frame, got {other:?}"),
            }
        }
        // The connection survived every error frame: the counters prove
        // the server answered rather than hung up.
        let net = server.shutdown();
        prop_assert_eq!(net.frames_in, (before.len() + after.len()) as u64);
        prop_assert_eq!(net.frames_out, (before.len() + after.len()) as u64);
        let _ = unwrap_service(service).shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Reactor-count parity: the same mixed workload, spread over
    /// enough connections that every reactor owns several, answers
    /// oracle-equal at `reactors` ∈ {1, 2, 4} — sharding the front-end
    /// must be invisible on the wire. Sends are corked per burst, so
    /// the batched write path is exercised under every reactor count
    /// (and under both real poller backends via `WIDX_POLLER` in CI).
    #[test]
    fn reactor_counts_are_wire_invisible(
        pairs in prop::collection::vec((0u64..100, any::<u64>()), 0..250),
        ops in prop::collection::vec(op_strategy(120), 1..40),
        reactors in (0usize..3).prop_map(|i| 1usize << i), // 1, 2, 4
    ) {
        let (service, server, first) = stack(
            &pairs,
            2,
            8,
            NetConfig::default().with_reactors(reactors),
        );
        let mut clients = vec![first];
        while clients.len() < reactors * 2 {
            clients.push(WidxClient::connect(server.local_addr()).expect("connect"));
        }
        for client in &mut clients {
            client.set_corked(true).expect("cork");
        }
        // Round-robin the workload over the connections (which the
        // acceptor round-robins over the reactors), pipelining
        // everything before reaping anything.
        let ids: Vec<(usize, u64)> = ops
            .iter()
            .enumerate()
            .map(|(i, op)| {
                let c = i % clients.len();
                (c, clients[c].send(&op.request()).expect("send"))
            })
            .collect();
        for (op, (c, id)) in ops.iter().zip(ids) {
            let response = clients[c].recv(id).expect("every request answered");
            op.check(&pairs, &response);
        }
        let net = server.shutdown();
        prop_assert_eq!(net.connections, clients.len() as u64);
        prop_assert_eq!(net.frames_in, ops.len() as u64);
        prop_assert_eq!(net.frames_out, ops.len() as u64);
        prop_assert_eq!(net.decode_errors, 0);
        prop_assert_eq!(net.reactors.len(), reactors);
        let _ = unwrap_service(service).shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(15))]

    /// Streaming parity over real TCP: for every generated scan, the
    /// concatenation of `range_stream` chunks equals the buffered
    /// `RangeScan` reply for the same interval — forward and reverse —
    /// while point lookups pipelined *around* the streams still answer
    /// their own oracles (chunk frames interleave with buffered replies
    /// on one connection; per-id routing keeps them apart).
    #[test]
    fn stream_concatenation_matches_buffered_over_the_wire(
        pairs in prop::collection::vec((0u64..120, any::<u64>()), 0..300),
        scans in prop::collection::vec(
            (range_strategy_pairs(150), any::<bool>()),
            1..10,
        ),
        probes in prop::collection::vec(0u64..150, 1..15),
        shards in 1usize..5,
        chunk in 1usize..32,
    ) {
        let config = ServeConfig::default()
            .with_shards(shards)
            .with_batch_size(8)
            .with_stream_chunk(chunk)
            .with_batch_deadline(Duration::from_micros(100));
        let service = Arc::new(ProbeService::build_with_range(
            HashRecipe::robust64(),
            pairs.iter().copied(),
            &config,
        ));
        let server =
            WidxServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
                .expect("bind");
        let mut client = WidxClient::connect(server.local_addr()).expect("connect");

        // Pipeline point lookups, then every stream, before reaping
        // anything.
        let probe_ids: Vec<u64> = probes
            .iter()
            .map(|key| client.send(&Request::Lookup { key: *key }).unwrap())
            .collect();
        let stream_ids: Vec<u64> = scans
            .iter()
            .map(|((lo, hi), desc)| {
                client
                    .send_range_stream(*lo, *hi, usize::MAX, *desc)
                    .unwrap()
            })
            .collect();
        // Drain the streams first: point replies arriving meanwhile are
        // stashed, chunk frames route per id.
        for (((lo, hi), desc), id) in scans.iter().zip(stream_ids) {
            let mut got = Vec::new();
            while let Some(piece) = client.recv_chunk(id).expect("stream survives") {
                prop_assert!(!piece.is_empty());
                prop_assert!(piece.len() <= chunk);
                got.extend(piece);
            }
            let buffered = if *desc {
                client.range_scan_desc(*lo, *hi, usize::MAX).unwrap()
            } else {
                client.range_scan(*lo, *hi, usize::MAX).unwrap()
            };
            prop_assert_eq!(got, buffered, "[{}, {}] desc {}", lo, hi, desc);
        }
        for (key, id) in probes.iter().zip(probe_ids) {
            Op::Lookup(*key).check(&pairs, &client.recv(id).expect("point reply"));
        }
        let net = server.shutdown();
        prop_assert_eq!(net.decode_errors, 0);
        prop_assert_eq!(net.busy_rejects, 0);
        let _ = unwrap_service(service).shutdown();
    }
}

/// `(lo, hi)` spans for the streaming parity property.
fn range_strategy_pairs(keyspace: u64) -> impl Strategy<Value = (u64, u64)> {
    prop_oneof![
        (0..keyspace).prop_flat_map(move |lo| (Just(lo), lo..keyspace)),
        (0..keyspace).prop_map(|k| (k, k)),
    ]
}

/// Server shutdown mid-stream drops no accepted frame: streams the
/// server has decoded drain to a complete chunk sequence plus `RangeEnd`
/// before the event loop exits.
#[test]
fn shutdown_mid_stream_flushes_every_accepted_chunk() {
    let pairs: Vec<(u64, u64)> = (0..20_000u64).map(|k| (k, k ^ 0xABCD)).collect();
    let (service, server, mut client) = stack(&pairs, 4, 32, NetConfig::default());
    let n = 8u64;
    let ids: Vec<u64> = (0..n)
        .map(|i| {
            client
                .send_range_stream(i * 100, u64::MAX, usize::MAX, i % 2 == 1)
                .unwrap()
        })
        .collect();
    // Wait until the server has decoded every frame (our definition of
    // "accepted"), then shut down while chunks are still streaming.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().frames_in < n {
        assert!(Instant::now() < deadline, "server never saw the frames");
        std::thread::yield_now();
    }
    let _net = server.shutdown();
    let tree = BTreeIndex::build(7, pairs.iter().copied());
    for (i, id) in ids.into_iter().enumerate() {
        let i = i as u64;
        let mut got = Vec::new();
        while let Some(piece) = client.recv_chunk(id).expect("no accepted frame dropped") {
            got.extend(piece);
        }
        let want = if i % 2 == 1 {
            tree.range_scan_desc(i * 100, u64::MAX, usize::MAX)
        } else {
            tree.range_scan(i * 100, u64::MAX, usize::MAX)
        };
        assert_eq!(got, want, "stream {i} incomplete after shutdown");
    }
    let _ = unwrap_service(service).shutdown();
}

/// An abandoned stream's chunks are drained, not stashed: dropping the
/// iterator mid-stream keeps the connection serving and the stash
/// bounded (the `recv_any` stash fix).
#[test]
fn abandoned_streams_drain_instead_of_growing_the_stash() {
    let pairs: Vec<(u64, u64)> = (0..50_000u64).map(|k| (k, k)).collect();
    let (service, server, mut client) = stack(&pairs, 2, 64, NetConfig::default());
    {
        let mut stream = client.range_stream(0, u64::MAX, usize::MAX, false).unwrap();
        let first = stream.next_chunk().unwrap().expect("first chunk");
        assert!(!first.is_empty());
        // Dropped here, mid-stream: the client marks it abandoned.
    }
    // The rest of the abandoned stream's chunks (tens of thousands of
    // entries) flow in while we serve *other* traffic — they must be
    // drained on arrival, never stashed.
    for i in 0..50u64 {
        assert_eq!(client.lookup(i * 7).unwrap(), vec![i * 7], "key {i}");
        assert_eq!(client.stashed_chunks(), 0, "abandoned chunks stashed");
    }
    // A fresh stream on the same connection still works end to end.
    let got = client
        .range_stream(100, 400, usize::MAX, true)
        .unwrap()
        .collect_remaining()
        .unwrap();
    assert_eq!(
        got,
        BTreeIndex::build(7, pairs.iter().copied()).range_scan_desc(100, 400, usize::MAX)
    );
    let _ = server.shutdown();
    let _ = unwrap_service(service).shutdown();
}

/// A stream against a service without an ordered tier answers the typed
/// error through the stream API, and the connection survives.
#[test]
fn stream_without_ordered_tier_is_a_typed_error() {
    let config = ServeConfig::default().with_shards(2);
    let service = Arc::new(ProbeService::build(
        HashRecipe::robust64(),
        (0..100u64).map(|k| (k, k)),
        &config,
    ));
    let server =
        WidxServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default()).unwrap();
    let mut client = WidxClient::connect(server.local_addr()).unwrap();
    let id = client.send_range_stream(0, 10, usize::MAX, false).unwrap();
    match client.recv_chunk(id) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::NoOrderedIndex),
        other => panic!("expected NoOrderedIndex, got {other:?}"),
    }
    assert_eq!(client.lookup(5).unwrap(), vec![5], "connection survives");
    let _ = server.shutdown();
    let _ = unwrap_service(service).shutdown();
}

/// Replies interleave across ids: a client that reaps in reverse send
/// order still matches every reply to its request.
#[test]
fn out_of_order_reaping_matches_ids() {
    let pairs: Vec<(u64, u64)> = (0..2000u64).map(|k| (k, k * 3)).collect();
    let (service, server, mut client) = stack(&pairs, 4, 16, NetConfig::default());
    let ops: Vec<Op> = (0..40)
        .map(|i| match i % 3 {
            0 => Op::Lookup(i),
            1 => Op::Multi((0..i).collect()),
            _ => Op::Range(i, i + 500, 64, i % 2 == 0),
        })
        .collect();
    let ids: Vec<u64> = ops
        .iter()
        .map(|op| client.send(&op.request()).unwrap())
        .collect();
    for (op, id) in ops.iter().zip(ids.iter()).rev() {
        op.check(&pairs, &client.recv(*id).expect("answered"));
    }
    let _ = server.shutdown();
    let _ = unwrap_service(service).shutdown();
}

/// A malformed frame (good envelope, unknown opcode) gets an error
/// frame back and the connection keeps serving; a torn envelope gets an
/// error frame and a close, and the decode-error counter records both.
#[test]
fn malformed_frames_answer_errors_and_connection_survives() {
    let pairs: Vec<(u64, u64)> = (0..500u64).map(|k| (k, k + 7)).collect();
    let (service, server, _client) = stack(&pairs, 2, 8, NetConfig::default());

    let mut raw = TcpStream::connect(server.local_addr()).expect("connect raw");
    raw.set_nodelay(true).unwrap();

    // Frame 1: a valid envelope around an unknown opcode. Build a real
    // Lookup frame, then stamp a bogus opcode into header byte 5.
    let mut bad = Vec::new();
    wire::encode_request(&mut bad, 77, &Request::Lookup { key: 1 });
    bad[5] = 0x5A;
    raw.write_all(&bad).unwrap();
    let (id, reply) = read_reply_raw(&mut raw);
    assert_eq!(id, 77, "error frame echoes the request id");
    let err = reply.expect_err("unknown opcode must answer an error frame");
    assert_eq!(err.code, ErrorCode::Unsupported);

    // Frame 2, same connection: a well-formed request still round-trips
    // — the connection survived the malformed frame.
    let mut good = Vec::new();
    wire::encode_request(&mut good, 78, &Request::Lookup { key: 3 });
    raw.write_all(&good).unwrap();
    let (id, reply) = read_reply_raw(&mut raw);
    assert_eq!(id, 78);
    assert_eq!(
        reply.expect("a real response"),
        Response::Lookup {
            key: 3,
            payloads: vec![10]
        }
    );

    // Frame 3: a torn envelope (runt length) — the server answers one
    // error frame on the reserved connection-level id (it answers no
    // particular request), then closes; framing is lost.
    raw.write_all(&2u32.to_le_bytes()).unwrap();
    raw.write_all(&[0u8; 2]).unwrap();
    let (id, reply) = read_reply_raw(&mut raw);
    assert_eq!(id, wire::CONNECTION_ERROR_ID);
    let err = reply.expect_err("torn envelope answers an error before closing");
    assert_eq!(err.code, ErrorCode::Malformed);
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest)
        .expect("server closes the socket");
    assert!(rest.is_empty(), "nothing after the final error frame");

    let net = server.shutdown();
    assert_eq!(net.decode_errors, 2, "unknown opcode + torn envelope");
    assert_eq!(net.frames_in, 1, "only the good frame counts as input");
    let stats = unwrap_service(service).shutdown().with_net(net);
    assert!(stats.net.frames_out >= 3);
}

/// Graceful server shutdown drops no accepted request: every frame the
/// server has read is answered and flushed before the event loop exits.
#[test]
fn graceful_shutdown_answers_every_accepted_request() {
    let pairs: Vec<(u64, u64)> = (0..5000u64).map(|k| (k, k ^ 0xBEEF)).collect();
    let (service, server, mut client) = stack(&pairs, 4, 32, NetConfig::default());

    let n: u64 = 200;
    let ops: Vec<Op> = (0..n).map(|i| Op::Lookup(i * 13)).collect();
    let ids: Vec<u64> = ops
        .iter()
        .map(|op| client.send(&op.request()).unwrap())
        .collect();

    // Wait until the server has decoded every frame (our definition of
    // "accepted"), then shut it down while replies are still in flight.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().frames_in < n {
        assert!(Instant::now() < deadline, "server never saw all frames");
        std::thread::yield_now();
    }
    let net = server.shutdown();
    assert_eq!(net.frames_in, n);
    assert_eq!(net.frames_out, n, "drain wrote every reply before exit");

    // Every reply is sitting in the socket: all ids resolve, none lost.
    for (op, id) in ops.iter().zip(ids) {
        op.check(
            &pairs,
            &client.recv(id).expect("no accepted request dropped"),
        );
    }
    let stats = unwrap_service(service).shutdown().with_net(net);
    assert_eq!(stats.latency.count, n as usize);
}

/// The per-connection in-flight cap turns into typed `Busy` frames, and
/// the busy-reject counter sees them.
#[test]
fn inflight_cap_rejects_with_busy() {
    let pairs: Vec<(u64, u64)> = (0..100u64).map(|k| (k, k)).collect();
    let (service, server, mut client) = stack(
        &pairs,
        2,
        8,
        NetConfig::default().with_max_inflight(0), // window of zero: everything is over cap
    );
    match client.call(&Request::Lookup { key: 1 }) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Busy),
        other => panic!("expected Busy, got {other:?}"),
    }
    let net = server.shutdown();
    assert_eq!(net.busy_rejects, 1);
    let _ = unwrap_service(service).shutdown();
}

/// A legal request whose reply cannot fit in one frame (an unbounded
/// scan over more entries than 16 MiB of pairs) answers a typed
/// `TooLarge` error instead of killing the event loop, and the
/// connection keeps serving.
#[test]
fn oversize_reply_answers_too_large_and_survives() {
    // Just over the cap: (2^24 - 16) / 16 = 1_048_575 pairs fit.
    let n = 1_048_600u64;
    let pairs: Vec<(u64, u64)> = (0..n).map(|k| (k, k)).collect();
    let (service, server, mut client) = stack(&pairs, 2, 64, NetConfig::default());
    match client.range_scan(0, u64::MAX, usize::MAX) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::TooLarge),
        other => panic!("expected TooLarge, got {other:?}"),
    }
    // The event loop survived: a bounded scan still round-trips.
    assert_eq!(client.range_scan(0, 2, usize::MAX).unwrap().len(), 3);
    let _ = server.shutdown();
    let _ = unwrap_service(service).shutdown();
}

/// Graceful shutdown against a peer that never reads its replies must
/// not hang: the drain abandons the undrainable connection after
/// `drain_timeout`.
#[test]
fn shutdown_abandons_a_peer_that_stops_reading() {
    let pairs: Vec<(u64, u64)> = (0..100_000u64).map(|k| (k, k)).collect();
    let (service, server, mut client) = stack(
        &pairs,
        2,
        64,
        NetConfig::default().with_drain_timeout(Duration::from_millis(200)),
    );
    // ~20 unbounded scans ≈ 32 MB of replies: far beyond what the
    // kernel socket buffers absorb, and this client never reads.
    for _ in 0..20 {
        let _ = client
            .send(&Request::RangeScan {
                lo: 0,
                hi: u64::MAX,
                limit: usize::MAX,
                desc: false,
            })
            .unwrap();
    }
    // Wait until the server has decoded them all, so the drain really
    // has undrainable write backlog to abandon.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().frames_in < 20 {
        assert!(Instant::now() < deadline, "server never saw the frames");
        std::thread::yield_now();
    }
    let started = Instant::now();
    let _ = server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown must be bounded by the drain timeout"
    );
    let _ = unwrap_service(service).shutdown();
}

/// The write-backlog cap paces reply encoding: with a cap far smaller
/// than the response volume, a slowly reaping client still receives
/// every reply intact — completed responses wait in the pending set
/// instead of ballooning the connection's buffer.
#[test]
fn write_backlog_paces_large_replies_without_loss() {
    let pairs: Vec<(u64, u64)> = (0..50_000u64).map(|k| (k, k * 7)).collect();
    let (service, server, mut client) = stack(
        &pairs,
        2,
        64,
        NetConfig::default().with_max_write_backlog(64 * 1024), // ~1/12 of one reply
    );
    let scans = 16u64;
    let ids: Vec<u64> = (0..scans)
        .map(|_| {
            client
                .send(&Request::RangeScan {
                    lo: 0,
                    hi: u64::MAX,
                    limit: usize::MAX,
                    desc: false,
                })
                .unwrap()
        })
        .collect();
    for id in ids {
        match client.recv(id).expect("paced, not dropped") {
            Response::RangeScan { entries } => assert_eq!(entries.len(), pairs.len()),
            other => panic!("wrong variant: {other:?}"),
        }
    }
    let net = server.shutdown();
    assert_eq!(net.frames_out, scans);
    let _ = unwrap_service(service).shutdown();
}

/// A corrupt reply frame with a sound envelope costs the client one
/// `recv` error, not the connection: the frame is skipped and
/// everything pipelined behind it still arrives (the spec's resync
/// contract, exercised against a hand-rolled server).
#[test]
fn client_skips_corrupt_reply_frames_and_resyncs() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake_server = std::thread::spawn(move || {
        let (mut peer, _) = listener.accept().unwrap();
        // Reply to id 0 with a frame from "the future" (unknown
        // version), then to id 1 with a valid response.
        let mut bad = Vec::new();
        wire::encode_response(
            &mut bad,
            0,
            &Response::Lookup {
                key: 1,
                payloads: vec![2],
            },
        );
        bad[4] = 9; // future version byte; envelope still sound
        peer.write_all(&bad).unwrap();
        let mut good = Vec::new();
        wire::encode_response(
            &mut good,
            1,
            &Response::Lookup {
                key: 3,
                payloads: vec![4],
            },
        );
        peer.write_all(&good).unwrap();
        // Hold the socket open until the client is done reading.
        let mut sink = [0u8; 1024];
        while peer.read(&mut sink).map(|n| n > 0).unwrap_or(false) {}
    });

    let mut client = WidxClient::connect(addr).unwrap();
    let id0 = client.send(&Request::Lookup { key: 1 }).unwrap();
    let id1 = client.send(&Request::Lookup { key: 3 }).unwrap();
    match client.recv(id0) {
        Err(ClientError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        other => panic!("corrupt frame must surface an error, got {other:?}"),
    }
    assert_eq!(
        client.recv(id1).expect("the connection resynced"),
        Response::Lookup {
            key: 3,
            payloads: vec![4]
        }
    );
    drop(client);
    fake_server.join().unwrap();
}

/// A `RangeScan` against a point-only service answers the typed
/// `NoOrderedIndex` error over the wire.
#[test]
fn range_scan_without_ordered_tier_is_a_typed_error() {
    let config = ServeConfig::default().with_shards(2);
    let service = Arc::new(ProbeService::build(
        HashRecipe::robust64(),
        (0..100u64).map(|k| (k, k)),
        &config,
    ));
    let server =
        WidxServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default()).unwrap();
    let mut client = WidxClient::connect(server.local_addr()).unwrap();
    match client.range_scan(0, 10, usize::MAX) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::NoOrderedIndex),
        other => panic!("expected NoOrderedIndex, got {other:?}"),
    }
    assert_eq!(client.lookup(5).unwrap(), vec![5], "point path unaffected");
    let _ = server.shutdown();
    let _ = unwrap_service(service).shutdown();
}

/// Reads one reply frame from a raw socket (for the malformed-frame
/// test, which cannot use `WidxClient` — it needs to write garbage).
fn read_reply_raw(stream: &mut TcpStream) -> (u64, Result<Response, widx_net::ErrorReply>) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match wire::decode_reply(&buf).expect("reply framing holds") {
            Decoded::Frame { id, value, .. } => {
                return (
                    id,
                    value.map(|reply| match reply {
                        widx_net::Reply::Response(response) => response,
                        other => panic!("unexpected stream frame: {other:?}"),
                    }),
                )
            }
            Decoded::Corrupt { error, .. } => panic!("corrupt reply: {error:?}"),
            Decoded::Incomplete => {
                let n = stream.read(&mut chunk).expect("read reply");
                assert!(n > 0, "connection closed before a full reply");
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    }
}
