//! Regression tests for the event loop's lost-wakeup race.
//!
//! The pre-poller loop made a final reap pass, saw no progress, and
//! went to `thread::sleep(idle_backoff)` — so a `ResponseState` waker
//! that fired *between that check and the sleep* (a shard worker
//! completing a request on its own thread) was not observed until the
//! sleep expired. With the poller, the waker rings the wake handle and
//! the blocking `poller.wait` returns immediately: these tests pin an
//! `idle_backoff` far above the service's completion time and assert
//! the reply still arrives at completion speed. Against the old sleep
//! loop they fail by construction — the reply cannot beat the sleep.

use std::sync::Arc;
use std::time::{Duration, Instant};

use widx_db::hash::HashRecipe;
use widx_net::{NetConfig, WidxClient, WidxServer};
use widx_serve::{ProbeService, ServeConfig};

/// A service whose completions are gated on the batch deadline: with a
/// size target no single request can reach, the shard worker flushes
/// the batch (and fires the completion waker) `deadline` after the
/// submit — a completion that lands squarely inside the server's idle
/// wait.
fn deadline_gated_service(deadline: Duration) -> Arc<ProbeService> {
    Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        (0..1000u64).map(|k| (k, k + 1)),
        &ServeConfig::default()
            .with_shards(2)
            .with_batch_size(1 << 20)
            .with_batch_deadline(deadline),
    ))
}

/// The real-readiness backends available on this platform. The
/// `timeout` backend is deliberately absent: it notices request
/// *arrival* only at its polling cadence (that is its documented
/// degradation), so pinning a huge `idle_backoff` would measure that,
/// not the completion wake — whose delivery the poller's own unit
/// tests already pin for every backend.
fn readiness_backends() -> Vec<&'static str> {
    if cfg!(target_os = "linux") {
        vec!["epoll", "poll"]
    } else {
        vec!["poll"]
    }
}

#[test]
fn completion_landing_mid_wait_is_flushed_at_completion_speed() {
    let deadline = Duration::from_millis(100);
    let idle_backoff = Duration::from_millis(1500);
    for backend in readiness_backends() {
        let service = deadline_gated_service(deadline);
        let server = WidxServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig::default()
                .with_idle_backoff(idle_backoff)
                .with_poller_backend(backend),
        )
        .expect("bind");
        let mut client = WidxClient::connect(server.local_addr()).expect("connect");

        let started = Instant::now();
        assert_eq!(client.lookup(41).expect("lookup"), vec![42], "{backend}");
        let elapsed = started.elapsed();

        // The reply really was gated on the deadline flush (the race
        // window this test aims at)...
        assert!(
            elapsed >= deadline / 2,
            "{backend}: reply at {elapsed:?} beat the batch deadline — \
             the completion did not land inside the idle wait"
        );
        // ...and the wake handle cut the wait short: well under the
        // idle backoff the old loop would have slept out.
        assert!(
            elapsed < idle_backoff / 2,
            "{backend}: reply took {elapsed:?} with idle_backoff {idle_backoff:?} — \
             the completion wake was lost"
        );

        let _ = server.shutdown();
        drop(
            Arc::try_unwrap(service)
                .ok()
                .expect("sole owner")
                .shutdown(),
        );
    }
}

#[test]
fn pipelined_completions_mid_wait_all_flush_at_completion_speed() {
    // Same race, wider window: several requests in flight, each
    // completing on a worker thread while the loop blocks.
    let deadline = Duration::from_millis(60);
    let idle_backoff = Duration::from_millis(1500);
    for backend in readiness_backends() {
        let service = deadline_gated_service(deadline);
        let server = WidxServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig::default()
                .with_idle_backoff(idle_backoff)
                .with_poller_backend(backend),
        )
        .expect("bind");
        let mut client = WidxClient::connect(server.local_addr()).expect("connect");

        let started = Instant::now();
        let ids: Vec<u64> = (0..8)
            .map(|k| {
                client
                    .send(&widx_net::Request::Lookup { key: k })
                    .expect("send")
            })
            .collect();
        for (k, id) in ids.into_iter().enumerate() {
            match client.recv(id).expect("recv") {
                widx_net::Response::Lookup { payloads, .. } => {
                    assert_eq!(payloads, vec![k as u64 + 1], "{backend}");
                }
                other => panic!("{backend}: wrong variant {other:?}"),
            }
        }
        let elapsed = started.elapsed();
        assert!(
            elapsed < idle_backoff / 2,
            "{backend}: pipelined replies took {elapsed:?} — a wake was lost"
        );

        let _ = server.shutdown();
        drop(
            Arc::try_unwrap(service)
                .ok()
                .expect("sole owner")
                .shutdown(),
        );
    }
}

#[test]
fn shutdown_interrupts_a_blocked_idle_wait() {
    // A fully quiet server blocks in `poller.wait` for up to its quiet
    // cap (one second). Shutdown rings the wake handle, so it must
    // return long before that — the old loop's flag check also only
    // happened once per sleep, which this inherits a guarantee against.
    for backend in readiness_backends() {
        let service = deadline_gated_service(Duration::from_millis(10));
        let server = WidxServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig::default().with_poller_backend(backend),
        )
        .expect("bind");
        // Let the loop settle into its quiet blocking wait.
        std::thread::sleep(Duration::from_millis(30));
        let started = Instant::now();
        let _ = server.shutdown();
        assert!(
            started.elapsed() < Duration::from_millis(700),
            "{backend}: shutdown waited out the quiet cap ({:?})",
            started.elapsed()
        );
        drop(
            Arc::try_unwrap(service)
                .ok()
                .expect("sole owner")
                .shutdown(),
        );
    }
}

#[test]
fn bind_rejects_an_unknown_poller_backend() {
    let service = deadline_gated_service(Duration::from_millis(10));
    match WidxServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetConfig::default().with_poller_backend("no-such-backend"),
    ) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput),
        Ok(_) => panic!("unknown backend must fail bind, not the event loop"),
    }
}
