//! End-to-end tests for the per-request tracing seam over TCP: a
//! deliberately slow request must land in the flight recorder with the
//! full span seam (net-read → queue-wait → walk → gather → reply-write)
//! and non-trivial walker counters, the `Trace` wire opcode must
//! round-trip the recorder's JSON document, and a server with tracing
//! unarmed must record nothing. The suite runs under whatever poller
//! backend `WIDX_POLLER` selects, so CI exercises it on both epoll and
//! poll.

use std::sync::Arc;
use std::time::Duration;

use widx_db::hash::HashRecipe;
use widx_net::{NetConfig, WidxClient, WidxServer};
use widx_obs::json::find_u64;
use widx_serve::{ProbeService, RequestTrace, ServeConfig, TraceStage};

const ENTRIES: u64 = 8192;

fn start(serve: ServeConfig) -> (Arc<ProbeService>, WidxServer) {
    let service = Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        (0..ENTRIES).map(|k| (k, k + 1)),
        &serve,
    ));
    let server = WidxServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("bind server");
    (service, server)
}

fn span_of(trace: &RequestTrace, stage: TraceStage) -> Option<(u64, u64)> {
    trace
        .spans
        .iter()
        .find(|s| s.stage == stage)
        .map(|s| (s.start_ns, s.dur_ns))
}

#[test]
fn slow_request_is_tail_recorded_with_the_full_span_seam() {
    // Head sampling off; a tiny slow threshold makes the big scan below
    // tail-select itself while the warm-up lookups may or may not.
    let (service, server) = start(
        ServeConfig::default()
            .with_shards(2)
            .with_batch_deadline(Duration::from_micros(100))
            .with_slow_threshold(Some(Duration::from_micros(50))),
    );
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");

    // A deliberately slow request: scan the whole table.
    let entries = client
        .range_scan(0, ENTRIES, ENTRIES as usize)
        .expect("range_scan");
    assert_eq!(entries.len(), ENTRIES as usize);

    // A net-armed trace commits on the reactor thread once the reply
    // bytes flush — an instant *after* the client can observe the
    // reply. `flush` waits out every armed trace's commit ticket, so
    // the asserts below are deterministic, not racy lower bounds.
    let recorder = service.flight_recorder();
    recorder.flush();
    let stats = recorder.stats();
    assert_eq!(stats.recorded, 1, "slow scan not tail-recorded");
    assert_eq!(stats.slow, 1, "slow counter did not move");

    let traces = recorder.snapshot();
    let trace = traces
        .iter()
        .find(|t| t.kind == "range_scan")
        .expect("the slow scan's trace is in the recorder");
    assert!(trace.slow, "the scan exceeded the threshold");
    assert_eq!(trace.reactor, Some(0), "frame decoded by reactor 0");
    assert!(!trace.shards.is_empty(), "no shard recorded");
    assert!(trace.walk.nodes > 0, "walker visited no nodes");
    assert!(trace.walk.rounds > 0, "walker ran no rounds");

    // The seam covers the request's life: every serve/net stage spanned,
    // and every span fits inside the end-to-end latency.
    for stage in [
        TraceStage::NetRead,
        TraceStage::QueueWait,
        TraceStage::BatchWait,
        TraceStage::Walk,
        TraceStage::Gather,
        TraceStage::ReplyWrite,
    ] {
        let (start_ns, dur_ns) =
            span_of(trace, stage).unwrap_or_else(|| panic!("trace missing {} span", stage.name()));
        assert!(
            start_ns.saturating_add(dur_ns) <= trace.total_ns,
            "{} span [{start_ns}, +{dur_ns}] overruns total_ns={}",
            stage.name(),
            trace.total_ns
        );
    }
    // And the stages appear in causal order on the shared timeline.
    let queue = span_of(trace, TraceStage::QueueWait).expect("queue span").0;
    let walk = span_of(trace, TraceStage::Walk).expect("walk span").0;
    let reply = span_of(trace, TraceStage::ReplyWrite)
        .expect("reply span")
        .0;
    assert!(queue <= walk, "walk began before queue-wait");
    assert!(walk <= reply, "reply-write began before the walk");

    drop(client);
    let _ = server.shutdown();
    let _ = Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
}

#[test]
fn trace_opcode_round_trips_over_tcp() {
    let (service, server) = start(
        ServeConfig::default()
            .with_shards(2)
            .with_batch_deadline(Duration::from_micros(100))
            .with_trace_sample(1),
    );
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");

    // A scrape before any load parses and reports an empty ring.
    let json = client.traces_json().expect("trace scrape");
    assert_eq!(find_u64(&json, "recorded"), Some(0), "idle scrape: {json}");
    assert!(json.contains("\"traces\":[]"), "idle scrape: {json}");

    for key in 0..32u64 {
        assert_eq!(client.lookup(key).expect("lookup"), vec![key + 1]);
    }
    let json = client.traces_json().expect("trace scrape");
    assert!(
        find_u64(&json, "recorded").expect("recorded gauge") >= 32,
        "every head-sampled request recorded: {json}"
    );
    assert!(json.contains("\"kind\":\"lookup\""), "{json}");
    assert!(json.contains("\"reactor\":0"), "{json}");
    assert!(json.contains("\"stage\":\"reply_write\""), "{json}");
    assert!(json.contains("\"walk\":{\"nodes\":"), "{json}");

    // The wire document matches the in-process recorder's rendering.
    assert_eq!(json, service.traces_json());

    // Recorder gauges also surface in the Stats opcode's snapshot.
    let stats = client.stats_json().expect("stats scrape");
    let at = stats.find("\"trace\"").expect("trace block in stats");
    assert!(find_u64(&stats[at..], "recorded").expect("gauge") >= 32);

    drop(client);
    let _ = server.shutdown();
    let _ = Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
}

#[test]
fn unarmed_server_records_nothing() {
    // No head sampling, no slow threshold: the tracing seam must stay
    // entirely cold — the recorder sees no traces at all.
    let (service, server) = start(ServeConfig::default().with_shards(2));
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");

    for key in 0..64u64 {
        assert_eq!(client.lookup(key).expect("lookup"), vec![key + 1]);
    }
    let entries = client.range_scan(0, 1000, 500).expect("range_scan");
    assert_eq!(entries.len(), 500);

    let stats = service.flight_recorder().stats();
    assert_eq!(stats.recorded, 0, "unarmed server recorded a trace");
    assert_eq!(stats.depth, 0);
    let json = client.traces_json().expect("trace scrape");
    assert!(json.contains("\"traces\":[]"), "{json}");

    drop(client);
    let _ = server.shutdown();
    let _ = Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
}
