//! The blocking client library: a pipelining `send`/`recv` split over
//! one TCP connection, plus a convenience synchronous `call`.
//!
//! The client assigns each request a fresh id and the server echoes it,
//! so replies may arrive in **any order**: [`WidxClient::recv`] stashes
//! frames for other ids until the requested one arrives, and
//! [`WidxClient::recv_any`] hands back whatever completes next. Keep
//! the pipeline depth bounded (the server's per-connection in-flight
//! cap answers `Busy` beyond its window, and unread replies eventually
//! exert TCP backpressure on `send`).

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use widx_serve::{Request, Response};

use crate::wire::{self, Decoded, ErrorReply};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection itself failed (or the peer broke framing).
    Io(std::io::Error),
    /// The server answered this request with a typed error frame — the
    /// connection is still usable.
    Remote(ErrorReply),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

fn protocol_violation(what: &str) -> ClientError {
    ClientError::Io(std::io::Error::new(
        ErrorKind::InvalidData,
        what.to_string(),
    ))
}

/// A blocking connection to a [`WidxServer`](crate::WidxServer).
pub struct WidxClient {
    stream: TcpStream,
    /// Unconsumed reply bytes.
    rbuf: Vec<u8>,
    /// Replies received while waiting for a different id, in arrival
    /// order.
    stash: VecDeque<(u64, Result<Response, ErrorReply>)>,
    /// Scratch encode buffer, reused across sends.
    ebuf: Vec<u8>,
    next_id: u64,
}

impl WidxClient {
    /// Connects to a server (Nagle disabled — frames are the batching
    /// unit here, the service's own batcher does the rest).
    ///
    /// # Errors
    ///
    /// Any socket-level connect/configure failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<WidxClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(WidxClient {
            stream,
            rbuf: Vec::new(),
            stash: VecDeque::new(),
            ebuf: Vec::new(),
            next_id: 0,
        })
    }

    /// Pipelines one request without waiting; returns the id to pass to
    /// [`recv`](WidxClient::recv).
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the request's key list is too large to frame
    /// (over [`wire::MAX_BODY_LEN`]; nothing was sent — split it), or a
    /// socket-level write failure.
    pub fn send(&mut self, request: &Request) -> std::io::Result<u64> {
        if !wire::request_fits(request) {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "request exceeds the maximum frame size; split the key list",
            ));
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.ebuf.clear();
        wire::encode_request(&mut self.ebuf, id, request);
        self.stream.write_all(&self.ebuf)?;
        Ok(id)
    }

    /// Blocks for the reply to `id`, stashing replies to other ids for
    /// their own `recv`/[`recv_any`](WidxClient::recv_any) calls.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the server answered `id` with an
    /// error frame; [`ClientError::Io`] on connection failure.
    pub fn recv(&mut self, id: u64) -> Result<Response, ClientError> {
        if let Some(at) = self.stash.iter().position(|(got, _)| *got == id) {
            let (_, reply) = self.stash.remove(at).expect("position just found");
            return reply.map_err(ClientError::Remote);
        }
        loop {
            let (got, reply) = self.read_frame()?;
            if got == id {
                return reply.map_err(ClientError::Remote);
            }
            self.stash.push_back((got, reply));
        }
    }

    /// Blocks for whichever reply completes next (stashed frames
    /// first, in arrival order), returning `(id, reply)`.
    ///
    /// # Errors
    ///
    /// Socket-level failure or broken framing.
    pub fn recv_any(&mut self) -> std::io::Result<(u64, Result<Response, ErrorReply>)> {
        if let Some(front) = self.stash.pop_front() {
            return Ok(front);
        }
        self.read_frame()
    }

    /// Synchronous convenience: send one request and wait for its reply.
    ///
    /// # Errors
    ///
    /// As [`recv`](WidxClient::recv).
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.send(request)?;
        self.recv(id)
    }

    /// Blocking convenience mirroring
    /// [`ProbeService::lookup`](widx_serve::ProbeService::lookup).
    ///
    /// # Errors
    ///
    /// As [`recv`](WidxClient::recv).
    pub fn lookup(&mut self, key: u64) -> Result<Vec<u64>, ClientError> {
        match self.call(&Request::Lookup { key })? {
            Response::Lookup { payloads, .. } => Ok(payloads),
            _ => Err(protocol_violation("mismatched reply variant for Lookup")),
        }
    }

    /// Blocking convenience mirroring
    /// [`ProbeService::multi_lookup`](widx_serve::ProbeService::multi_lookup).
    ///
    /// # Errors
    ///
    /// As [`recv`](WidxClient::recv).
    pub fn multi_lookup(&mut self, keys: &[u64]) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.call(&Request::MultiLookup {
            keys: keys.to_vec(),
        })? {
            Response::MultiLookup { matches } => Ok(matches),
            _ => Err(protocol_violation(
                "mismatched reply variant for MultiLookup",
            )),
        }
    }

    /// Blocking convenience mirroring
    /// [`ProbeService::join_probe`](widx_serve::ProbeService::join_probe).
    ///
    /// # Errors
    ///
    /// As [`recv`](WidxClient::recv).
    pub fn join_probe(&mut self, keys: &[u64]) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.call(&Request::JoinProbe {
            keys: keys.to_vec(),
        })? {
            Response::JoinProbe { pairs } => Ok(pairs),
            _ => Err(protocol_violation("mismatched reply variant for JoinProbe")),
        }
    }

    /// Blocking convenience mirroring
    /// [`ProbeService::range_scan`](widx_serve::ProbeService::range_scan).
    ///
    /// # Errors
    ///
    /// As [`recv`](WidxClient::recv).
    pub fn range_scan(
        &mut self,
        lo: u64,
        hi: u64,
        limit: usize,
    ) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.call(&Request::RangeScan { lo, hi, limit })? {
            Response::RangeScan { entries } => Ok(entries),
            _ => Err(protocol_violation("mismatched reply variant for RangeScan")),
        }
    }

    /// Reads exactly one reply frame off the wire (blocking).
    fn read_frame(&mut self) -> std::io::Result<(u64, Result<Response, ErrorReply>)> {
        loop {
            match wire::decode_reply(&self.rbuf) {
                Ok(Decoded::Frame {
                    consumed,
                    id,
                    value,
                }) => {
                    self.rbuf.drain(..consumed);
                    return Ok((id, value));
                }
                Ok(Decoded::Corrupt {
                    consumed, error, ..
                }) => {
                    // The envelope held, so skip the frame and keep the
                    // connection — the wire spec's resync contract. The
                    // caller loses this one reply (reported as an
                    // error); everything pipelined behind it survives.
                    self.rbuf.drain(..consumed);
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        format!("undecodable reply frame (skipped): {error}"),
                    ));
                }
                Err(frame_error) => {
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        format!("reply framing lost: {frame_error}"),
                    ));
                }
                Ok(Decoded::Incomplete) => {
                    let mut chunk = [0u8; 16 * 1024];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(std::io::Error::new(
                                ErrorKind::UnexpectedEof,
                                "server closed mid-frame",
                            ));
                        }
                        Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }
}
