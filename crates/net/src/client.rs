//! The blocking client library: a pipelining `send`/`recv` split over
//! one TCP connection, plus a convenience synchronous `call` and a
//! chunk-streaming [`range_stream`](WidxClient::range_stream) iterator.
//!
//! The client assigns each request a fresh id and the server echoes it,
//! so replies may arrive in **any order**: [`WidxClient::recv`] stashes
//! frames for other ids until the requested one arrives, and
//! [`WidxClient::recv_any`] hands back whatever completes next. Chunked
//! replies route into per-stream stashes keyed by request id, so a
//! stream's chunks can interleave with other replies on the wire while
//! every consumer still sees its own frames in order. Keep the pipeline
//! depth bounded (the server's per-connection in-flight cap answers
//! `Busy` beyond its window, and unread replies eventually exert TCP
//! backpressure on `send`).
//!
//! Pipelined batches can additionally be **corked**
//! ([`WidxClient::set_corked`]): sends buffer into the client's encode
//! buffer instead of hitting the socket one frame at a time, and the
//! whole batch goes out in one write on [`flush`](WidxClient::flush) —
//! or automatically the moment a `recv` needs the wire (so corking can
//! never deadlock a request behind its own reply).

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use widx_serve::{Request, Response};

use crate::wire::{self, Decoded, ErrorReply, Reply};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection itself failed (or the peer broke framing).
    Io(std::io::Error),
    /// The server answered this request with a typed error frame — the
    /// connection is still usable.
    Remote(ErrorReply),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

fn protocol_violation(what: &str) -> ClientError {
    ClientError::Io(std::io::Error::new(
        ErrorKind::InvalidData,
        what.to_string(),
    ))
}

/// Why a stream slot stopped accepting frames.
enum StreamFault {
    /// The server answered the stream's id with a typed error frame.
    Remote(ErrorReply),
    /// The per-stream stash cap was hit: the consumer let too many
    /// unread chunks pile up while reaping other ids. Buffered chunks
    /// were dropped; the stream is unrecoverable (but the connection
    /// survives).
    Overflow,
}

/// Client-side state of one in-flight chunked scan: chunks that arrived
/// while the consumer was reading other ids, stashed in arrival order.
struct StreamSlot {
    chunks: VecDeque<Vec<(u64, u64)>>,
    /// Entries received so far (checked against the `RangeEnd` total).
    received: u64,
    /// The `RangeEnd` total, once seen.
    ended: Option<u64>,
    fault: Option<StreamFault>,
    /// The consumer walked away (`RangeStream` dropped mid-stream):
    /// drop every further chunk on arrival and remove the slot when the
    /// stream's final frame lands — the drain that keeps an abandoned
    /// stream from growing the stash without bound.
    abandoned: bool,
}

impl StreamSlot {
    fn new() -> StreamSlot {
        StreamSlot {
            chunks: VecDeque::new(),
            received: 0,
            ended: None,
            fault: None,
            abandoned: false,
        }
    }

    /// A final frame (end or error) has arrived: nothing further will.
    fn terminated(&self) -> bool {
        self.ended.is_some() || self.fault.is_some()
    }
}

/// Hard bound on chunks stashed per *live* stream (abandoned streams
/// stash nothing). A consumer that pipelines streams but reads only
/// some of them cannot grow the client's memory without bound: past the
/// cap the stream faults with an overflow error and its stash is
/// dropped.
const STREAM_STASH_CAP: usize = 4096;

/// Corked sends self-flush past this many buffered bytes — a cork is a
/// batching hint, not permission to buffer a whole workload.
const CORK_FLUSH_BYTES: usize = 64 << 10;

/// A blocking connection to a [`WidxServer`](crate::WidxServer).
pub struct WidxClient {
    stream: TcpStream,
    /// Unconsumed reply bytes.
    rbuf: Vec<u8>,
    /// Buffered replies received while waiting for a different id, in
    /// arrival order.
    stash: VecDeque<(u64, Result<Response, ErrorReply>)>,
    /// Per-stream chunk stashes, keyed by request id.
    streams: HashMap<u64, StreamSlot>,
    /// Scratch encode buffer, reused across sends; while corked it
    /// accumulates whole frames awaiting one batched write.
    ebuf: Vec<u8>,
    corked: bool,
    next_id: u64,
}

impl WidxClient {
    /// Connects to a server (Nagle disabled — frames are the batching
    /// unit here, the service's own batcher does the rest).
    ///
    /// # Errors
    ///
    /// Any socket-level connect/configure failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<WidxClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(WidxClient {
            stream,
            rbuf: Vec::new(),
            stash: VecDeque::new(),
            streams: HashMap::new(),
            ebuf: Vec::new(),
            corked: false,
            next_id: 0,
        })
    }

    /// Toggles cork (batch) mode. While corked, `send`-family calls
    /// buffer their frames instead of writing them, so a pipelined
    /// burst leaves in one syscall; the batch flushes on
    /// [`flush`](WidxClient::flush), when it outgrows an internal
    /// threshold, when the cork is removed, or automatically before any
    /// blocking read. Removing the cork flushes whatever is buffered.
    ///
    /// # Errors
    ///
    /// Socket-level write failure flushing the buffered batch.
    pub fn set_corked(&mut self, corked: bool) -> std::io::Result<()> {
        self.corked = corked;
        if corked {
            Ok(())
        } else {
            self.flush()
        }
    }

    /// Writes every buffered frame to the socket now. A no-op when
    /// nothing is buffered (in particular, always, when uncorked).
    ///
    /// # Errors
    ///
    /// Socket-level write failure.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.ebuf.is_empty() {
            self.stream.write_all(&self.ebuf)?;
            self.ebuf.clear();
            if self.ebuf.capacity() > 4 * CORK_FLUSH_BYTES {
                self.ebuf.shrink_to(CORK_FLUSH_BYTES);
            }
        }
        Ok(())
    }

    /// Bytes currently corked (encoded but unsent) — diagnostics for
    /// batching tests.
    #[must_use]
    pub fn corked_bytes(&self) -> usize {
        self.ebuf.len()
    }

    /// Sends or (when corked) retains the frames just encoded into
    /// `ebuf`, self-flushing an overgrown cork.
    fn dispatch_encoded(&mut self) -> std::io::Result<()> {
        if self.corked && self.ebuf.len() < CORK_FLUSH_BYTES {
            return Ok(());
        }
        self.flush()
    }

    /// Pipelines one request without waiting; returns the id to pass to
    /// [`recv`](WidxClient::recv).
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the request's key list is too large to frame
    /// (over [`wire::MAX_BODY_LEN`]; nothing was sent — split it), or a
    /// socket-level write failure.
    pub fn send(&mut self, request: &Request) -> std::io::Result<u64> {
        if !wire::request_fits(request) {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "request exceeds the maximum frame size; split the key list",
            ));
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        wire::encode_request(&mut self.ebuf, id, request);
        self.dispatch_encoded()?;
        Ok(id)
    }

    /// Pipelines one chunked range scan without waiting; the reply
    /// arrives as `RangeChunk` frames reaped with
    /// [`recv_chunk`](WidxClient::recv_chunk) (or through the
    /// [`range_stream`](WidxClient::range_stream) iterator). Returns
    /// the stream's request id.
    ///
    /// # Errors
    ///
    /// Socket-level write failure.
    pub fn send_range_stream(
        &mut self,
        lo: u64,
        hi: u64,
        limit: usize,
        desc: bool,
    ) -> std::io::Result<u64> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        wire::encode_range_stream(&mut self.ebuf, id, lo, hi, limit, desc);
        self.dispatch_encoded()?;
        self.streams.insert(id, StreamSlot::new());
        Ok(id)
    }

    /// Blocks for the next chunk of stream `id`: `Ok(Some(chunk))`
    /// yields entries in stream order, `Ok(None)` is the clean end of
    /// the stream (the `RangeEnd` total verified). Replies to *other*
    /// ids arriving meanwhile are stashed for their own `recv` calls —
    /// the pipelining contract, stream or not.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the server ended this stream with a
    /// typed error frame; [`ClientError::Io`] on connection failure, a
    /// `RangeEnd` total that contradicts the received entries, an
    /// unknown stream id, or a stream whose stash overflowed.
    pub fn recv_chunk(&mut self, id: u64) -> Result<Option<Vec<(u64, u64)>>, ClientError> {
        loop {
            let Some(slot) = self.streams.get_mut(&id) else {
                return Err(protocol_violation("not an open stream id"));
            };
            if let Some(chunk) = slot.chunks.pop_front() {
                return Ok(Some(chunk));
            }
            match (&slot.fault, slot.ended) {
                (Some(StreamFault::Remote(_)), _) => {
                    // Surface the server's error once, then forget the
                    // stream.
                    let slot = self.streams.remove(&id).expect("slot just seen");
                    let Some(StreamFault::Remote(error)) = slot.fault else {
                        unreachable!("fault variant just matched");
                    };
                    return Err(ClientError::Remote(error));
                }
                (Some(StreamFault::Overflow), _) => {
                    self.streams.remove(&id);
                    return Err(protocol_violation(
                        "stream stash overflowed; chunks were dropped",
                    ));
                }
                (None, Some(total)) => {
                    let received = slot.received;
                    self.streams.remove(&id);
                    if received != total {
                        return Err(protocol_violation(
                            "stream end total disagrees with received entries",
                        ));
                    }
                    return Ok(None);
                }
                (None, None) => {
                    let frame = self.read_frame()?;
                    if let Some(reply) = self.route_frame(frame) {
                        self.stash.push_back(reply);
                    }
                }
            }
        }
    }

    /// Abandons stream `id`: buffered chunks are dropped now, and
    /// chunks still in flight are dropped on arrival until the stream's
    /// final frame lands — bounding what a walked-away consumer can
    /// cost. Dropping a [`RangeStream`] mid-stream does this
    /// automatically. No-op for unknown (or already finished) ids.
    pub fn abandon_stream(&mut self, id: u64) {
        if let Some(slot) = self.streams.get_mut(&id) {
            if slot.terminated() {
                self.streams.remove(&id);
            } else {
                slot.chunks.clear();
                slot.chunks.shrink_to_fit();
                slot.abandoned = true;
            }
        }
    }

    /// Chunks currently stashed across every open stream — diagnostics
    /// for stash-bounding tests and memory accounting.
    #[must_use]
    pub fn stashed_chunks(&self) -> usize {
        self.streams.values().map(|s| s.chunks.len()).sum()
    }

    /// Routes one decoded reply frame: stream frames land in their
    /// slot (respecting abandonment and the stash cap) and yield
    /// `None`; buffered replies come back to the caller.
    fn route_frame(
        &mut self,
        (id, reply): (u64, Result<Reply, ErrorReply>),
    ) -> Option<(u64, Result<Response, ErrorReply>)> {
        if let Some(slot) = self.streams.get_mut(&id) {
            match reply {
                Ok(Reply::RangeChunk(chunk)) => {
                    slot.received += chunk.len() as u64;
                    if slot.abandoned {
                        // Drained, not stashed.
                    } else if slot.chunks.len() >= STREAM_STASH_CAP {
                        slot.chunks.clear();
                        slot.chunks.shrink_to_fit();
                        slot.fault = Some(StreamFault::Overflow);
                    } else if slot.fault.is_none() {
                        slot.chunks.push_back(chunk);
                    }
                }
                Ok(Reply::RangeEnd { entries }) => {
                    slot.ended = Some(entries);
                    if slot.abandoned {
                        self.streams.remove(&id);
                    }
                }
                Ok(
                    Reply::Response(_)
                    | Reply::Stats { .. }
                    | Reply::Trace { .. }
                    | Reply::Profile { .. },
                ) => {
                    // A buffered reply on a stream id: protocol
                    // violation; fault the stream rather than lose sync.
                    slot.fault = Some(StreamFault::Remote(ErrorReply::new(
                        crate::wire::ErrorCode::Malformed,
                        "buffered reply frame on a stream id",
                    )));
                    if slot.abandoned {
                        self.streams.remove(&id);
                    }
                }
                Err(error) => {
                    slot.fault = Some(StreamFault::Remote(error));
                    if slot.abandoned {
                        self.streams.remove(&id);
                    }
                }
            }
            return None;
        }
        match reply {
            Ok(Reply::Response(response)) => Some((id, Ok(response))),
            // Stream frames for an id we never opened (or already
            // forgot), and stats/trace snapshots nobody is waiting on
            // ([`stats_json`](WidxClient::stats_json) and
            // [`traces_json`](WidxClient::traces_json) reap their own):
            // dropping them keeps the connection usable.
            Ok(
                Reply::RangeChunk(_)
                | Reply::RangeEnd { .. }
                | Reply::Stats { .. }
                | Reply::Trace { .. }
                | Reply::Profile { .. },
            ) => None,
            Err(error) => Some((id, Err(error))),
        }
    }

    /// Blocks for the reply to `id`, stashing replies to other ids for
    /// their own `recv`/[`recv_any`](WidxClient::recv_any) calls.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the server answered `id` with an
    /// error frame; [`ClientError::Io`] on connection failure.
    pub fn recv(&mut self, id: u64) -> Result<Response, ClientError> {
        if let Some(at) = self.stash.iter().position(|(got, _)| *got == id) {
            let (_, reply) = self.stash.remove(at).expect("position just found");
            return reply.map_err(ClientError::Remote);
        }
        loop {
            let frame = self.read_frame()?;
            let Some((got, reply)) = self.route_frame(frame) else {
                continue;
            };
            if got == id {
                return reply.map_err(ClientError::Remote);
            }
            self.stash.push_back((got, reply));
        }
    }

    /// Blocks for whichever *buffered* reply completes next (stashed
    /// frames first, in arrival order), returning `(id, reply)`.
    /// Chunked-stream frames are routed to their per-id stashes along
    /// the way — reap those with [`recv_chunk`](WidxClient::recv_chunk).
    ///
    /// # Errors
    ///
    /// Socket-level failure or broken framing.
    pub fn recv_any(&mut self) -> std::io::Result<(u64, Result<Response, ErrorReply>)> {
        if let Some(front) = self.stash.pop_front() {
            return Ok(front);
        }
        loop {
            let frame = self.read_frame().map_err(|e| match e {
                ClientError::Io(io) => io,
                ClientError::Remote(_) => unreachable!("read_frame yields io errors only"),
            })?;
            if let Some(reply) = self.route_frame(frame) {
                return Ok(reply);
            }
        }
    }

    /// Synchronous convenience: send one request and wait for its reply.
    ///
    /// # Errors
    ///
    /// As [`recv`](WidxClient::recv).
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.send(request)?;
        self.recv(id)
    }

    /// Blocking convenience mirroring
    /// [`ProbeService::lookup`](widx_serve::ProbeService::lookup).
    ///
    /// # Errors
    ///
    /// As [`recv`](WidxClient::recv).
    pub fn lookup(&mut self, key: u64) -> Result<Vec<u64>, ClientError> {
        match self.call(&Request::Lookup { key })? {
            Response::Lookup { payloads, .. } => Ok(payloads),
            _ => Err(protocol_violation("mismatched reply variant for Lookup")),
        }
    }

    /// Blocking convenience mirroring
    /// [`ProbeService::multi_lookup`](widx_serve::ProbeService::multi_lookup).
    ///
    /// # Errors
    ///
    /// As [`recv`](WidxClient::recv).
    pub fn multi_lookup(&mut self, keys: &[u64]) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.call(&Request::MultiLookup {
            keys: keys.to_vec(),
        })? {
            Response::MultiLookup { matches } => Ok(matches),
            _ => Err(protocol_violation(
                "mismatched reply variant for MultiLookup",
            )),
        }
    }

    /// Blocking convenience mirroring
    /// [`ProbeService::join_probe`](widx_serve::ProbeService::join_probe).
    ///
    /// # Errors
    ///
    /// As [`recv`](WidxClient::recv).
    pub fn join_probe(&mut self, keys: &[u64]) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.call(&Request::JoinProbe {
            keys: keys.to_vec(),
        })? {
            Response::JoinProbe { pairs } => Ok(pairs),
            _ => Err(protocol_violation("mismatched reply variant for JoinProbe")),
        }
    }

    /// Blocking convenience mirroring
    /// [`ProbeService::range_scan`](widx_serve::ProbeService::range_scan).
    ///
    /// # Errors
    ///
    /// As [`recv`](WidxClient::recv).
    pub fn range_scan(
        &mut self,
        lo: u64,
        hi: u64,
        limit: usize,
    ) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.call(&Request::RangeScan {
            lo,
            hi,
            limit,
            desc: false,
        })? {
            Response::RangeScan { entries } => Ok(entries),
            _ => Err(protocol_violation("mismatched reply variant for RangeScan")),
        }
    }

    /// Blocking convenience mirroring
    /// [`ProbeService::range_scan_desc`](widx_serve::ProbeService::range_scan_desc):
    /// the `ORDER BY key DESC` scan, buffered.
    ///
    /// # Errors
    ///
    /// As [`recv`](WidxClient::recv).
    pub fn range_scan_desc(
        &mut self,
        lo: u64,
        hi: u64,
        limit: usize,
    ) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.call(&Request::RangeScan {
            lo,
            hi,
            limit,
            desc: true,
        })? {
            Response::RangeScan { entries } => Ok(entries),
            _ => Err(protocol_violation("mismatched reply variant for RangeScan")),
        }
    }

    /// Blocking convenience mirroring
    /// [`ProbeService::insert`](widx_serve::ProbeService::insert), batched:
    /// inserts every `(key, payload)` pair and returns one ack per pair
    /// in request order (always `true` — inserts cannot miss).
    ///
    /// # Errors
    ///
    /// As [`recv`](WidxClient::recv); an `Unsupported` remote error
    /// means a read-only (pre-writes) server.
    pub fn insert(&mut self, pairs: &[(u64, u64)]) -> Result<Vec<bool>, ClientError> {
        match self.call(&Request::Insert {
            pairs: pairs.to_vec(),
        })? {
            Response::Write { acks } => Ok(acks),
            _ => Err(protocol_violation("mismatched reply variant for Insert")),
        }
    }

    /// Blocking convenience mirroring
    /// [`ProbeService::delete`](widx_serve::ProbeService::delete), batched:
    /// removes every entry under each key and returns one ack per key
    /// (`true` when the key existed).
    ///
    /// # Errors
    ///
    /// As [`insert`](WidxClient::insert).
    pub fn delete(&mut self, keys: &[u64]) -> Result<Vec<bool>, ClientError> {
        match self.call(&Request::Delete {
            keys: keys.to_vec(),
        })? {
            Response::Write { acks } => Ok(acks),
            _ => Err(protocol_violation("mismatched reply variant for Delete")),
        }
    }

    /// Blocking convenience mirroring
    /// [`ProbeService::update`](widx_serve::ProbeService::update), batched:
    /// rewrites the payload under each existing key — a miss is acked
    /// `false` and never inserts.
    ///
    /// # Errors
    ///
    /// As [`insert`](WidxClient::insert).
    pub fn update(&mut self, pairs: &[(u64, u64)]) -> Result<Vec<bool>, ClientError> {
        match self.call(&Request::Update {
            pairs: pairs.to_vec(),
        })? {
            Response::Write { acks } => Ok(acks),
            _ => Err(protocol_violation("mismatched reply variant for Update")),
        }
    }

    /// Scrapes the server's live telemetry: sends one `Stats` frame and
    /// blocks for the JSON snapshot (the server answers it from the
    /// event loop, ahead of queued probe work). Replies to other
    /// pipelined ids arriving meanwhile are stashed for their own
    /// `recv` calls, as usual. Parse the document with `widx_obs::json`
    /// (or any real JSON parser).
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the server answered with an error
    /// frame — an `Unsupported` code means a pre-telemetry server;
    /// [`ClientError::Io`] on connection failure or a non-stats reply
    /// on this id.
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        wire::encode_stats_request(&mut self.ebuf, id);
        self.dispatch_encoded()?;
        loop {
            let (got, reply) = self.read_frame()?;
            if got != id {
                if let Some(stashed) = self.route_frame((got, reply)) {
                    self.stash.push_back(stashed);
                }
                continue;
            }
            return match reply {
                Ok(Reply::Stats { json }) => Ok(json),
                Ok(_) => Err(protocol_violation("mismatched reply variant for Stats")),
                Err(error) => Err(ClientError::Remote(error)),
            };
        }
    }

    /// Scrapes the server's flight recorder: sends one `Trace` frame
    /// and blocks for the JSON document of recorded per-request traces
    /// (answered inline from the event loop, like
    /// [`stats_json`](WidxClient::stats_json)). The scrape is
    /// non-destructive — the ring keeps its traces until newer ones
    /// evict them. Replies to other pipelined ids arriving meanwhile
    /// are stashed for their own `recv` calls.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the server answered with an error
    /// frame — an `Unsupported` code means a pre-tracing server;
    /// [`ClientError::Io`] on connection failure or a non-trace reply
    /// on this id.
    pub fn traces_json(&mut self) -> Result<String, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        wire::encode_trace_request(&mut self.ebuf, id);
        self.dispatch_encoded()?;
        loop {
            let (got, reply) = self.read_frame()?;
            if got != id {
                if let Some(stashed) = self.route_frame((got, reply)) {
                    self.stash.push_back(stashed);
                }
                continue;
            }
            return match reply {
                Ok(Reply::Trace { json }) => Ok(json),
                Ok(_) => Err(protocol_violation("mismatched reply variant for Trace")),
                Err(error) => Err(ClientError::Remote(error)),
            };
        }
    }

    /// Scrapes the server's hardware-profiling counters: sends one
    /// `Profile` frame and blocks for the JSON document of per-stage
    /// counter totals and derived ratios (answered inline from the
    /// event loop, like [`stats_json`](WidxClient::stats_json)). A
    /// server built without `--profile` answers
    /// `{"enabled": false}` rather than an error. Replies to other
    /// pipelined ids arriving meanwhile are stashed for their own
    /// `recv` calls.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the server answered with an error
    /// frame — an `Unsupported` code means a pre-profiling server;
    /// [`ClientError::Io`] on connection failure or a non-profile reply
    /// on this id.
    pub fn profile_json(&mut self) -> Result<String, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        wire::encode_profile_request(&mut self.ebuf, id);
        self.dispatch_encoded()?;
        loop {
            let (got, reply) = self.read_frame()?;
            if got != id {
                if let Some(stashed) = self.route_frame((got, reply)) {
                    self.stash.push_back(stashed);
                }
                continue;
            }
            return match reply {
                Ok(Reply::Profile { json }) => Ok(json),
                Ok(_) => Err(protocol_violation("mismatched reply variant for Profile")),
                Err(error) => Err(ClientError::Remote(error)),
            };
        }
    }

    /// Starts a chunked range scan and returns an iterator over its
    /// chunks: entries arrive in key order (descending when `desc`)
    /// *while the server is still scanning* — the first chunk lands
    /// long before a buffered [`range_scan`](WidxClient::range_scan)
    /// of the same interval would return. Requests pipelined before
    /// this call stay reapable afterwards; replies for them arriving
    /// mid-stream are stashed as usual. Dropping the iterator before
    /// the end abandons the stream (late chunks are drained, not
    /// stashed).
    ///
    /// # Errors
    ///
    /// Socket-level write failure.
    pub fn range_stream(
        &mut self,
        lo: u64,
        hi: u64,
        limit: usize,
        desc: bool,
    ) -> std::io::Result<RangeStream<'_>> {
        let id = self.send_range_stream(lo, hi, limit, desc)?;
        Ok(RangeStream {
            client: self,
            id,
            done: false,
        })
    }

    /// Reads exactly one reply frame off the wire (blocking).
    fn read_frame(&mut self) -> Result<(u64, Result<Reply, ErrorReply>), ClientError> {
        loop {
            match wire::decode_reply(&self.rbuf) {
                Ok(Decoded::Frame {
                    consumed,
                    id,
                    value,
                }) => {
                    self.rbuf.drain(..consumed);
                    return Ok((id, value));
                }
                Ok(Decoded::Corrupt {
                    consumed, error, ..
                }) => {
                    // The envelope held, so skip the frame and keep the
                    // connection — the wire spec's resync contract. The
                    // caller loses this one reply (reported as an
                    // error); everything pipelined behind it survives.
                    self.rbuf.drain(..consumed);
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::InvalidData,
                        format!("undecodable reply frame (skipped): {error}"),
                    )));
                }
                Err(frame_error) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::InvalidData,
                        format!("reply framing lost: {frame_error}"),
                    )));
                }
                Ok(Decoded::Incomplete) => {
                    // About to block on the socket: corked frames must
                    // go out first, or a request could deadlock behind
                    // its own unsent bytes.
                    self.flush()?;
                    let mut chunk = [0u8; 16 * 1024];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(ClientError::Io(std::io::Error::new(
                                ErrorKind::UnexpectedEof,
                                "server closed mid-frame",
                            )));
                        }
                        Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e) => return Err(ClientError::Io(e)),
                    }
                }
            }
        }
    }
}

/// An iterator over one chunked range scan's chunks (see
/// [`WidxClient::range_stream`]). Borrows the client: send other
/// requests *before* starting the stream, reap them after (or use the
/// [`send_range_stream`](WidxClient::send_range_stream) /
/// [`recv_chunk`](WidxClient::recv_chunk) split to drive several
/// streams at once). Dropping it mid-stream abandons the stream.
pub struct RangeStream<'a> {
    client: &'a mut WidxClient,
    id: u64,
    done: bool,
}

impl RangeStream<'_> {
    /// The stream's request id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks for the next chunk; `Ok(None)` is the clean end of the
    /// stream. After the end (or an error) the iterator is finished.
    ///
    /// # Errors
    ///
    /// As [`WidxClient::recv_chunk`].
    pub fn next_chunk(&mut self) -> Result<Option<Vec<(u64, u64)>>, ClientError> {
        if self.done {
            return Ok(None);
        }
        match self.client.recv_chunk(self.id) {
            Ok(Some(chunk)) => Ok(Some(chunk)),
            Ok(None) => {
                self.done = true;
                Ok(None)
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    /// Blocks to the end of the stream, concatenating every remaining
    /// chunk.
    ///
    /// # Errors
    ///
    /// As [`WidxClient::recv_chunk`].
    pub fn collect_remaining(mut self) -> Result<Vec<(u64, u64)>, ClientError> {
        let mut out = Vec::new();
        while let Some(chunk) = self.next_chunk()? {
            out.extend(chunk);
        }
        Ok(out)
    }
}

impl Iterator for RangeStream<'_> {
    type Item = Result<Vec<(u64, u64)>, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_chunk().transpose()
    }
}

impl Drop for RangeStream<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.client.abandon_stream(self.id);
        }
    }
}
