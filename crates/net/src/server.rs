//! The non-blocking socket server: one event-loop thread multiplexing
//! every connection over `std` non-blocking sockets with readiness
//! polling — accept, decode pipelined frames, `try_submit` into the
//! probe service's batching queues, and write replies back as they
//! complete, **possibly out of order** (request ids make that safe).
//!
//! Backpressure is never buffered away: when a shard queue is at
//! capacity ([`SubmitError::Busy`]) or a connection exceeds its
//! in-flight window, the server answers a typed `Busy` error frame
//! instead of queueing without bound, and when a connection's peer
//! stops reading, the write-backlog cap stops the server reading from
//! it — TCP pushes back the rest of the way.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use widx_serve::{NetStats, PendingResponse, PendingStream, ProbeService, StreamPoll, SubmitError};

use crate::wire::{self, Decoded, ErrorCode, ErrorReply, WireRequest};

/// Tuning knobs for a [`WidxServer`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Decoded-but-unanswered requests allowed per connection before the
    /// server replies `Busy` (the pipelining window it will honour).
    pub max_inflight_per_conn: usize,
    /// Unflushed reply bytes allowed per connection before the server
    /// stops reading from it (slow-consumer backpressure).
    pub max_write_backlog: usize,
    /// Event-loop sleep when a full pass over every connection makes no
    /// progress (the readiness-polling interval).
    pub idle_backoff: Duration,
    /// How long a graceful shutdown waits for connections to drain
    /// before abandoning the stragglers. A peer that stops reading its
    /// replies can never drain; without this bound,
    /// [`WidxServer::shutdown`] (and `Drop`) would hang on it forever.
    pub drain_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_inflight_per_conn: 256,
            max_write_backlog: 4 << 20,
            idle_backoff: Duration::from_micros(100),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

impl NetConfig {
    /// Sets the per-connection in-flight request cap.
    #[must_use]
    pub fn with_max_inflight(mut self, max: usize) -> NetConfig {
        self.max_inflight_per_conn = max;
        self
    }

    /// Sets the per-connection write-backlog cap in bytes.
    #[must_use]
    pub fn with_max_write_backlog(mut self, bytes: usize) -> NetConfig {
        self.max_write_backlog = bytes;
        self
    }

    /// Sets the idle readiness-polling interval.
    #[must_use]
    pub fn with_idle_backoff(mut self, backoff: Duration) -> NetConfig {
        self.idle_backoff = backoff;
        self
    }

    /// Sets the graceful-shutdown drain bound.
    #[must_use]
    pub fn with_drain_timeout(mut self, timeout: Duration) -> NetConfig {
        self.drain_timeout = timeout;
        self
    }
}

/// Shared atomic counters behind [`NetStats`] snapshots.
#[derive(Default)]
struct NetCounters {
    connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    busy_rejects: AtomicU64,
    decode_errors: AtomicU64,
}

impl NetCounters {
    fn snapshot(&self) -> NetStats {
        NetStats {
            connections: self.connections.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            busy_rejects: self.busy_rejects.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// An in-flight chunked scan being written back to one connection.
struct OpenStream {
    id: u64,
    stream: PendingStream,
    /// Entries streamed so far (reported in the `RangeEnd` frame).
    entries: u64,
}

/// One client connection's state machine: buffered input awaiting
/// decode, in-flight requests awaiting completion, and buffered output
/// awaiting a writable socket.
struct Connection {
    stream: TcpStream,
    /// Unconsumed input bytes.
    rbuf: Vec<u8>,
    /// Reply bytes not yet written; `wpos` is the flush cursor.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Requests submitted to the service, awaiting completion. Scanned
    /// for readiness after a wakeup — completion order, not submission
    /// order, decides reply order.
    pending: Vec<(u64, PendingResponse)>,
    /// Chunked scans submitted to the service: chunks are written as
    /// the gather seam releases them, interleaved with other replies.
    streams: Vec<OpenStream>,
    /// Completion-wakeup counter: every pending request and stream on
    /// this connection carries a waker that bumps it, so the reap pass
    /// can skip connections (and avoid scanning their whole pending
    /// lists) when nothing completed since the last look.
    wakes: Arc<AtomicU64>,
    /// The counter value the last reap pass observed.
    wakes_seen: u64,
    /// A reap pass stopped early on write backlog: ready work may
    /// remain without a fresh wake, so reap again once room opens.
    reap_stalled: bool,
    /// Set on peer EOF, server shutdown, or lost framing: no more reads.
    closed_for_reads: bool,
    /// Set on an unrecoverable socket error: drop the connection now.
    dead: bool,
}

impl Connection {
    fn new(stream: TcpStream) -> Connection {
        Connection {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: Vec::new(),
            streams: Vec::new(),
            wakes: Arc::new(AtomicU64::new(0)),
            wakes_seen: 0,
            reap_stalled: false,
            closed_for_reads: false,
            dead: false,
        }
    }

    fn write_backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// In-flight work counted against the per-connection window.
    fn inflight(&self) -> usize {
        self.pending.len() + self.streams.len()
    }

    /// The completion wakeup installed on every submitted request and
    /// stream: bumps this connection's counter, which is what lets the
    /// reap pass skip quiet connections instead of polling every
    /// pending entry every tick.
    fn waker(&self) -> impl Fn() + Send + Sync + 'static {
        let wakes = Arc::clone(&self.wakes);
        move || {
            wakes.fetch_add(1, Ordering::Release);
        }
    }

    /// All accepted work answered and flushed — nothing left to drain.
    fn drained(&self) -> bool {
        self.pending.is_empty() && self.streams.is_empty() && self.write_backlog() == 0
    }

    /// Whether the connection should be dropped from the loop.
    fn finished(&self) -> bool {
        self.dead || (self.closed_for_reads && self.drained())
    }

    /// Reads whatever the socket has ready. Returns true on progress.
    fn fill(&mut self, config: &NetConfig) -> bool {
        if self.closed_for_reads || self.write_backlog() > config.max_write_backlog {
            return false;
        }
        let mut progress = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer half-closed: serve what we already have, then
                    // let `finished` reap the connection once drained.
                    self.closed_for_reads = true;
                    return true;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return progress;
                }
            }
        }
    }

    /// Decodes every complete frame buffered so far and submits it (or
    /// replies with an error frame). Returns true on progress.
    fn decode_and_submit(
        &mut self,
        service: &ProbeService,
        config: &NetConfig,
        counters: &NetCounters,
    ) -> bool {
        let mut consumed_total = 0usize;
        loop {
            match wire::decode_request(&self.rbuf[consumed_total..]) {
                Ok(Decoded::Incomplete) => break,
                Ok(Decoded::Frame {
                    consumed,
                    id,
                    value,
                }) => {
                    consumed_total += consumed;
                    counters.frames_in.fetch_add(1, Ordering::Relaxed);
                    if self.inflight() >= config.max_inflight_per_conn {
                        counters.busy_rejects.fetch_add(1, Ordering::Relaxed);
                        self.reply_error(
                            id,
                            &ErrorReply::new(ErrorCode::Busy, "connection in-flight cap"),
                            counters,
                        );
                        continue;
                    }
                    let submitted = match value {
                        WireRequest::Plain(request) => service.try_submit(request).map(|pending| {
                            pending.set_waker(self.waker());
                            self.pending.push((id, pending));
                        }),
                        WireRequest::Stream {
                            lo,
                            hi,
                            limit,
                            desc,
                        } => service.try_range_stream(lo, hi, limit, desc).map(|stream| {
                            stream.set_waker(self.waker());
                            self.streams.push(OpenStream {
                                id,
                                stream,
                                entries: 0,
                            });
                        }),
                    };
                    match submitted {
                        Ok(()) => {}
                        Err(SubmitError::Busy) => {
                            counters.busy_rejects.fetch_add(1, Ordering::Relaxed);
                            self.reply_error(
                                id,
                                &ErrorReply::new(ErrorCode::Busy, "shard queue at capacity"),
                                counters,
                            );
                        }
                        Err(SubmitError::Stopped) => {
                            self.reply_error(
                                id,
                                &ErrorReply::new(ErrorCode::Stopped, "service is shutting down"),
                                counters,
                            );
                        }
                        Err(SubmitError::NoOrderedIndex) => {
                            self.reply_error(
                                id,
                                &ErrorReply::new(
                                    ErrorCode::NoOrderedIndex,
                                    "no ordered tier for range scans",
                                ),
                                counters,
                            );
                        }
                    }
                }
                Ok(Decoded::Corrupt {
                    consumed,
                    id,
                    error,
                }) => {
                    consumed_total += consumed;
                    counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                    let code = match error {
                        wire::DecodeError::Version(_) | wire::DecodeError::Opcode(_) => {
                            ErrorCode::Unsupported
                        }
                        _ => ErrorCode::Malformed,
                    };
                    self.reply_error(id, &ErrorReply::new(code, error.to_string()), counters);
                }
                Err(frame_error) => {
                    // Framing lost: answer once (on the reserved
                    // connection-level id — id 0 is a real request id),
                    // then close after the flush; nothing further on
                    // this socket can be trusted to be frame-aligned.
                    counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.reply_error(
                        wire::CONNECTION_ERROR_ID,
                        &ErrorReply::new(ErrorCode::Malformed, frame_error.to_string()),
                        counters,
                    );
                    self.rbuf.clear();
                    consumed_total = 0;
                    self.closed_for_reads = true;
                    break;
                }
            }
        }
        if consumed_total > 0 {
            self.rbuf.drain(..consumed_total);
            true
        } else {
            false
        }
    }

    fn reply_error(&mut self, id: u64, error: &ErrorReply, counters: &NetCounters) {
        wire::encode_error(&mut self.wbuf, id, error);
        counters.frames_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Writes completed responses and released stream chunks into the
    /// output buffer, in completion order. Returns true on progress.
    ///
    /// The scan is gated on the connection's wakeup counter: workers
    /// bump it (through the `ResponseState` waker hook) whenever a
    /// request completes or a chunk becomes consumable, so a pass over
    /// a quiet connection is one atomic load instead of a walk of its
    /// whole pending list.
    fn reap_completions(&mut self, config: &NetConfig, counters: &NetCounters) -> bool {
        let wakes = self.wakes.load(Ordering::Acquire);
        if wakes == self.wakes_seen && !self.reap_stalled {
            return false;
        }
        // Observe the counter *before* scanning: a wake that lands
        // mid-scan leaves it ahead of `wakes_seen`, forcing a rescan
        // next pass rather than being lost.
        self.wakes_seen = wakes;
        self.reap_stalled = false;
        let mut progress = false;
        let mut i = 0;
        while i < self.pending.len() {
            // Pace encoding by the write backlog: a completed reply the
            // peer has no room for stays in `pending` until the buffer
            // flushes. Without this, a non-reading peer could turn its
            // whole in-flight window of large replies into buffered
            // bytes at once — the unbounded buffering this server
            // promises not to do.
            if self.write_backlog() >= config.max_write_backlog {
                self.reap_stalled = true;
                break;
            }
            if self.pending[i].1.is_ready() {
                let (id, pending) = self.pending.swap_remove(i);
                // `wait` cannot block: readiness was just observed.
                let response = pending.wait();
                if wire::response_fits(&response) {
                    wire::encode_response(&mut self.wbuf, id, &response);
                    counters.frames_out.fetch_add(1, Ordering::Relaxed);
                } else {
                    // A legal request (e.g. an unbounded RangeScan) can
                    // complete with more entries than any frame may
                    // carry — answer TooLarge rather than letting the
                    // encoder's cap assert kill the event loop.
                    self.reply_error(
                        id,
                        &ErrorReply::new(
                            ErrorCode::TooLarge,
                            "reply exceeds the maximum frame size; narrow the request",
                        ),
                        counters,
                    );
                }
                progress = true;
            } else {
                i += 1;
            }
        }
        progress |= self.reap_streams(config, counters);
        progress
    }

    /// Writes every consumable chunk of every open stream (then the
    /// `RangeEnd` marker), under the same write-backlog pacing as
    /// buffered replies — a slow reader's chunks wait in the gather
    /// seam instead of ballooning the connection buffer (the seam's
    /// footprint is bounded by the scan's own size, as a buffered
    /// reply's would be; the shards scan to completion either way).
    /// Returns true on progress.
    fn reap_streams(&mut self, config: &NetConfig, counters: &NetCounters) -> bool {
        let mut progress = false;
        let mut i = 0;
        while i < self.streams.len() {
            let mut finished = false;
            loop {
                if self.write_backlog() >= config.max_write_backlog {
                    self.reap_stalled = true;
                    break;
                }
                let open = &mut self.streams[i];
                match open.stream.try_next() {
                    StreamPoll::Chunk(chunk) => {
                        // The serve tier caps chunks at `stream_chunk`
                        // entries; split defensively anyway so a huge
                        // configured chunk cannot trip the frame cap.
                        for piece in chunk.chunks(wire::MAX_CHUNK_ENTRIES) {
                            wire::encode_range_chunk(&mut self.wbuf, open.id, piece);
                            counters.frames_out.fetch_add(1, Ordering::Relaxed);
                        }
                        open.entries += chunk.len() as u64;
                        progress = true;
                    }
                    StreamPoll::End => {
                        wire::encode_range_end(&mut self.wbuf, open.id, open.entries);
                        counters.frames_out.fetch_add(1, Ordering::Relaxed);
                        finished = true;
                        progress = true;
                        break;
                    }
                    StreamPoll::Pending => break,
                }
            }
            if finished {
                self.streams.swap_remove(i);
            } else {
                i += 1;
            }
        }
        progress
    }

    /// Flushes as much buffered output as the socket accepts. Returns
    /// true on progress.
    fn flush(&mut self) -> bool {
        let mut progress = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return progress;
                }
                Ok(n) => {
                    self.wpos += n;
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return progress;
                }
            }
        }
        if self.wpos > 0 {
            self.wbuf.clear();
            self.wpos = 0;
        }
        progress
    }

    /// One full pass: read, decode+submit, reap completions, flush.
    fn pump(&mut self, service: &ProbeService, config: &NetConfig, counters: &NetCounters) -> bool {
        let mut progress = self.fill(config);
        progress |= self.decode_and_submit(service, config, counters);
        progress |= self.reap_completions(config, counters);
        progress |= self.flush();
        progress
    }
}

/// A running socket front-end over a [`ProbeService`]: one event-loop
/// thread serving every connection.
///
/// # Shutdown
///
/// [`shutdown`](WidxServer::shutdown) stops accepting, stops *reading*,
/// and drains: every request frame already received is still decoded,
/// submitted, answered, and flushed before the loop exits — no
/// accepted request is dropped. The underlying [`ProbeService`] is
/// caller-owned and keeps running; in-flight frames drain through its
/// own poison-pill shutdown if the caller stops it afterwards (or
/// concurrently — accepted submissions complete either way).
pub struct WidxServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    thread: Option<JoinHandle<()>>,
}

impl WidxServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the event loop over `service`.
    ///
    /// # Errors
    ///
    /// Any socket-level failure to bind or configure the listener.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<ProbeService>,
        config: NetConfig,
    ) -> std::io::Result<WidxServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::default());
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("widx-net".to_string())
                .spawn(move || run_event_loop(&listener, &service, &config, &shutdown, &counters))
                .expect("spawn net event loop")
        };
        Ok(WidxServer {
            addr,
            shutdown,
            counters,
            thread: Some(thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the network-tier counters; attach the final
    /// one to the service's stats with
    /// [`ServiceStats::with_net`](widx_serve::ServiceStats::with_net).
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.counters.snapshot()
    }

    /// Graceful shutdown: stop accepting and reading, drain every
    /// accepted frame through to a flushed reply, then join the event
    /// loop. Returns the final counter snapshot.
    #[must_use]
    pub fn shutdown(mut self) -> NetStats {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        self.counters.snapshot()
    }
}

impl Drop for WidxServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn run_event_loop(
    listener: &TcpListener,
    service: &ProbeService,
    config: &NetConfig,
    shutdown: &AtomicBool,
    counters: &NetCounters,
) {
    let mut conns: Vec<Connection> = Vec::new();
    let mut draining: Option<std::time::Instant> = None;
    loop {
        let mut progress = false;
        if draining.is_none() && shutdown.load(Ordering::Relaxed) {
            // Shutdown begins: stop accepting and reading. Frames whose
            // bytes already arrived still decode, submit, and answer
            // below — drain, then halt, like the service itself.
            draining = Some(std::time::Instant::now());
            for conn in &mut conns {
                conn.closed_for_reads = true;
            }
            progress = true;
        }
        if draining.is_none() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        counters.connections.fetch_add(1, Ordering::Relaxed);
                        conns.push(Connection::new(stream));
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }
        for conn in &mut conns {
            progress |= conn.pump(service, config, counters);
        }
        conns.retain(|conn| !conn.finished());
        if let Some(since) = draining {
            if conns.is_empty() {
                return;
            }
            if since.elapsed() > config.drain_timeout {
                // A peer that will not read its replies can never
                // drain; abandoning it bounds shutdown (and `Drop`).
                return;
            }
        }
        if !progress {
            std::thread::sleep(config.idle_backoff);
        }
    }
}
