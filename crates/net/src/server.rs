//! The non-blocking socket front-end: a dedicated acceptor thread plus
//! `NetConfig::reactors` event-loop threads, each owning its own
//! `compat/` [`poller`] instance, connection slab, and event buffer —
//! the MICA-style partitioning where a connection is pinned to one
//! reactor for life and no cross-thread state is shared on the hot
//! path (see `docs/net-reactors.md`).
//!
//! The acceptor registers only the listener with its poller; accepted
//! sockets are handed off round-robin through a per-reactor inbox, and
//! the target reactor's wake handle is rung so a blocked `wait` picks
//! the socket up immediately. Within a reactor the loop is unchanged
//! from the single-threaded design: every connection is registered with
//! *that reactor's* poller, write interest is toggled on only while a
//! connection has unflushed reply bytes, and read interest is parked
//! while its write backlog is over the cap (slow-consumer backpressure)
//! or after EOF. Completions from the serving tier ring the owning
//! reactor's wake handle through the `ResponseState` waker hook —
//! routing falls out by construction, because each connection's waker
//! captures the poller it registered with — so the idle path is a
//! *blocking* `poller.wait` with no lost-wakeup window (see
//! `docs/poller.md`).
//!
//! The wire path avoids per-frame allocation: replies are encoded into
//! a per-connection segmented [`WriteBuf`] whose segments are recycled
//! after flushing (one `writev` per flush batches small pipelined
//! replies into one syscall), streaming chunks serialize straight out
//! of the gather seam's buffers (`PendingStream::try_next_with` — no
//! intermediate owned `Vec` per chunk), and every buffer shrinks back
//! to the [`BUF_HIGH_WATER`] cap once a burst drains, so one large scan
//! does not pin memory for the connection's lifetime.
//!
//! Backpressure is never buffered away: when a shard queue is at
//! capacity ([`SubmitError::Busy`]) or a connection exceeds its
//! in-flight window, the server answers a typed `Busy` error frame
//! instead of queueing without bound, and when a connection's peer
//! stops reading, the write-backlog cap stops the server reading from
//! it — TCP pushes back the rest of the way.

use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use poller::{Event, Poller};
use widx_serve::{
    NetStats, NetTraceCtx, PendingResponse, PendingStream, ProbeService, ReactorGauges,
    ReactorStats, Stage, StageTimes, StreamConsumed, SubmitError, TraceFinisher,
};

use crate::wire::{self, Decoded, ErrorCode, ErrorReply, WireRequest};

/// The listener's key on the *acceptor's* poller; reactors register
/// connection slot `i` as `i + CONN_KEY_BASE` on their own pollers.
const LISTENER_KEY: usize = 0;
const CONN_KEY_BASE: usize = 1;

/// Wait cap when a loop is fully quiet (no in-flight work anywhere):
/// pure insurance — every state change (a new connection, socket
/// readiness, a completion, shutdown) arrives as a poller event or a
/// wake, so correctness never rides on this timer firing.
const QUIET_WAIT_CAP: Duration = Duration::from_secs(1);

/// High-water cap on per-connection buffer capacity retained across
/// bursts: once a flush empties the write backlog, read/write buffers
/// above this shrink back down, so one large range scan cannot pin
/// megabytes for the connection's lifetime.
pub const BUF_HIGH_WATER: usize = 256 << 10;

/// Target size of one [`WriteBuf`] segment. Frames are never split
/// across segments (a frame larger than this simply makes an oversized
/// segment), so a flush can gather whole segments into one `writev`.
const SEG_TARGET: usize = 64 << 10;

/// Most segments gathered into a single `writev`.
const MAX_IOV: usize = 16;

/// Flushed segments kept for reuse per connection.
const SPARE_SEGS: usize = 4;

/// How long the acceptor backs off when `accept()` reports descriptor
/// exhaustion (`EMFILE`/`ENFILE`) — long enough for the fd pressure to
/// ease, short enough not to stall a recovering listener.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(10);

/// Tuning knobs for a [`WidxServer`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Decoded-but-unanswered requests allowed per connection before the
    /// server replies `Busy` (the pipelining window it will honour).
    pub max_inflight_per_conn: usize,
    /// Unflushed reply bytes allowed per connection before the server
    /// stops reading from it (slow-consumer backpressure).
    pub max_write_backlog: usize,
    /// Cap on one blocking `poller.wait` while in-flight work exists —
    /// the loop's housekeeping cadence and the worst-case staleness
    /// bound should a readiness edge ever be missed, **not** a latency
    /// knob: completions and socket readiness interrupt the wait
    /// immediately through the poller. Values below
    /// [`NetConfig::MIN_IDLE_BACKOFF`] (zero especially, which would
    /// turn the idle path into a hot spin) are clamped up to it.
    pub idle_backoff: Duration,
    /// How long a graceful shutdown waits for connections to drain
    /// before abandoning the stragglers. A peer that stops reading its
    /// replies can never drain; without this bound,
    /// [`WidxServer::shutdown`] (and `Drop`) would hang on it forever.
    pub drain_timeout: Duration,
    /// Poller backend override (`"epoll"` / `"poll"` / `"timeout"`).
    /// `None` picks the platform default, which the `WIDX_POLLER`
    /// environment variable can override — the switch the CI tiers use
    /// to run the loopback suites against every backend.
    pub poller_backend: Option<String>,
    /// Reactor (event-loop) threads the server runs. The acceptor pins
    /// connections to reactors round-robin; each reactor owns its own
    /// poller, slab, and event buffer. Zero is clamped to one.
    pub reactors: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_inflight_per_conn: 256,
            max_write_backlog: 4 << 20,
            idle_backoff: Duration::from_micros(100),
            drain_timeout: Duration::from_secs(5),
            poller_backend: None,
            reactors: 1,
        }
    }
}

impl NetConfig {
    /// Floor for [`idle_backoff`](NetConfig::idle_backoff): a zero wait
    /// cap would make every idle `poller.wait` return immediately — the
    /// hot spin the poller exists to eliminate.
    pub const MIN_IDLE_BACKOFF: Duration = Duration::from_micros(10);

    /// Sets the per-connection in-flight request cap.
    #[must_use]
    pub fn with_max_inflight(mut self, max: usize) -> NetConfig {
        self.max_inflight_per_conn = max;
        self
    }

    /// Sets the per-connection write-backlog cap in bytes.
    #[must_use]
    pub fn with_max_write_backlog(mut self, bytes: usize) -> NetConfig {
        self.max_write_backlog = bytes;
        self
    }

    /// Sets the idle wait-timeout cap, clamped up to
    /// [`MIN_IDLE_BACKOFF`](NetConfig::MIN_IDLE_BACKOFF) (rejecting the
    /// zero that would turn the idle path into a hot spin).
    #[must_use]
    pub fn with_idle_backoff(mut self, backoff: Duration) -> NetConfig {
        self.idle_backoff = backoff.max(NetConfig::MIN_IDLE_BACKOFF);
        self
    }

    /// Sets the graceful-shutdown drain bound.
    #[must_use]
    pub fn with_drain_timeout(mut self, timeout: Duration) -> NetConfig {
        self.drain_timeout = timeout;
        self
    }

    /// Forces a poller backend (`"epoll"` / `"poll"` / `"timeout"`)
    /// instead of the platform default / `WIDX_POLLER` selection.
    #[must_use]
    pub fn with_poller_backend(mut self, backend: impl Into<String>) -> NetConfig {
        self.poller_backend = Some(backend.into());
        self
    }

    /// Sets the reactor-thread count (clamped up to one).
    #[must_use]
    pub fn with_reactors(mut self, reactors: usize) -> NetConfig {
        self.reactors = reactors.max(1);
        self
    }

    /// The configuration the event loops actually run: public fields
    /// mean the builder clamps can be bypassed, so [`WidxServer::bind`]
    /// re-applies them here.
    fn normalized(mut self) -> NetConfig {
        self.idle_backoff = self.idle_backoff.max(NetConfig::MIN_IDLE_BACKOFF);
        self.reactors = self.reactors.max(1);
        self
    }
}

/// Shared counters behind [`NetStats`] snapshots. The five monotone
/// counters are written from the acceptor and every reactor; the gauge
/// table holds one padded [`ReactorGauges`] cell per reactor, each
/// re-published by its owning loop every pass, so a scrape sees values
/// at most one loop pass stale.
struct NetCounters {
    connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    busy_rejects: AtomicU64,
    decode_errors: AtomicU64,
    reactors: Vec<ReactorGauges>,
}

impl NetCounters {
    fn new(reactors: usize) -> NetCounters {
        NetCounters {
            connections: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            busy_rejects: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            reactors: (0..reactors).map(|_| ReactorGauges::new()).collect(),
        }
    }

    fn snapshot(&self) -> NetStats {
        let reactors: Vec<ReactorStats> = self
            .reactors
            .iter()
            .map(|g| ReactorStats {
                open_connections: g.open_connections(),
                write_backlog_bytes: g.write_backlog_bytes(),
            })
            .collect();
        NetStats {
            connections: self.connections.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            busy_rejects: self.busy_rejects.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            open_connections: reactors.iter().map(|r| r.open_connections).sum(),
            write_backlog_bytes: reactors.iter().map(|r| r.write_backlog_bytes).sum(),
            reactors,
        }
    }
}

/// A segmented output buffer flushed with vectored writes. Frames are
/// encoded whole into the current tail segment; a flush gathers up to
/// [`MAX_IOV`] segments into one `writev`, and fully-written segments
/// are recycled into a small spare pool instead of reallocated — the
/// per-connection reply path allocates only while a burst is actively
/// outgrowing what earlier bursts left behind.
struct WriteBuf {
    segs: VecDeque<Vec<u8>>,
    /// Flush cursor within the front segment.
    head_pos: usize,
    /// Total unflushed bytes across all segments.
    len: usize,
    spare: Vec<Vec<u8>>,
}

impl WriteBuf {
    fn new() -> WriteBuf {
        WriteBuf {
            segs: VecDeque::new(),
            head_pos: 0,
            len: 0,
            spare: Vec::new(),
        }
    }

    /// Unflushed bytes buffered.
    fn backlog(&self) -> usize {
        self.len
    }

    /// Appends one or more whole frames via `encode`, which receives
    /// the tail segment to extend. Starts a fresh (recycled when
    /// possible) segment once the tail passes [`SEG_TARGET`].
    fn encode_with(&mut self, encode: impl FnOnce(&mut Vec<u8>)) {
        let need_fresh = match self.segs.back() {
            None => true,
            Some(seg) => seg.len() >= SEG_TARGET,
        };
        if need_fresh {
            self.segs.push_back(self.spare.pop().unwrap_or_default());
        }
        let seg = self.segs.back_mut().expect("tail segment");
        let before = seg.len();
        encode(seg);
        self.len += seg.len() - before;
    }

    /// Flushes as much as the socket accepts, one `writev` per syscall.
    /// Returns `(bytes_flushed, dead)`; `dead` means an unrecoverable
    /// socket error (including a zero-length write).
    fn flush(&mut self, stream: &mut TcpStream) -> (usize, bool) {
        let mut total = 0usize;
        while self.len > 0 {
            let written = {
                let mut iov = [IoSlice::new(&[]); MAX_IOV];
                let mut n = 0;
                for (i, seg) in self.segs.iter().enumerate() {
                    if n == MAX_IOV {
                        break;
                    }
                    let slice = if i == 0 {
                        &seg[self.head_pos..]
                    } else {
                        &seg[..]
                    };
                    if slice.is_empty() {
                        continue;
                    }
                    iov[n] = IoSlice::new(slice);
                    n += 1;
                }
                stream.write_vectored(&iov[..n])
            };
            match written {
                Ok(0) => return (total, true),
                Ok(n) => {
                    self.advance(n);
                    total += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return (total, true),
            }
        }
        (total, false)
    }

    /// Consumes `written` flushed bytes from the front, recycling
    /// fully-written segments.
    fn advance(&mut self, mut written: usize) {
        self.len -= written;
        while written > 0 {
            let head = self.segs.front().expect("flushed past the backlog");
            let remaining = head.len() - self.head_pos;
            if written >= remaining {
                written -= remaining;
                self.head_pos = 0;
                let mut seg = self.segs.pop_front().expect("head segment");
                // Oversized segments (one giant frame) are dropped, not
                // pooled — the pool is for steady-state reply traffic.
                if self.spare.len() < SPARE_SEGS && seg.capacity() <= 2 * SEG_TARGET {
                    seg.clear();
                    self.spare.push(seg);
                }
            } else {
                self.head_pos += written;
                written = 0;
            }
        }
    }

    /// Total heap capacity this buffer retains (live segments plus the
    /// spare pool) — what [`shrink_to`](WriteBuf::shrink_to) bounds.
    fn retained_capacity(&self) -> usize {
        self.segs.iter().map(Vec::capacity).sum::<usize>()
            + self.spare.iter().map(Vec::capacity).sum::<usize>()
    }

    /// Drops spare segments until the retained capacity is at most
    /// `cap`. Called once a flush empties the backlog (live segments
    /// are gone by then), so a one-off burst cannot pin memory.
    fn shrink_to(&mut self, cap: usize) {
        while self.retained_capacity() > cap {
            if self.spare.pop().is_none() {
                break;
            }
        }
    }
}

/// An in-flight chunked scan being written back to one connection.
struct OpenStream {
    id: u64,
    stream: PendingStream,
    /// Entries streamed so far (reported in the `RangeEnd` frame).
    entries: u64,
}

/// One client connection's state machine: buffered input awaiting
/// decode, in-flight requests awaiting completion, and buffered output
/// awaiting a writable socket. Pinned to one reactor for life — every
/// field is owned by that reactor's thread.
struct Connection {
    stream: TcpStream,
    /// Unconsumed input bytes; `rpos` is the decode cursor (compacted
    /// periodically rather than draining per decode pass).
    rbuf: Vec<u8>,
    rpos: usize,
    /// Reply bytes not yet written, segmented for vectored flushes.
    wbuf: WriteBuf,
    /// Requests submitted to the service, awaiting completion. Scanned
    /// for readiness after a wakeup — completion order, not submission
    /// order, decides reply order. The `WriteKind` (present on mutation
    /// requests) picks the mirrored reply opcode, which the completed
    /// `Response::Write` alone cannot.
    pending: Vec<(u64, Option<wire::WriteKind>, PendingResponse)>,
    /// Chunked scans submitted to the service: chunks are written as
    /// the gather seam releases them, interleaved with other replies.
    streams: Vec<OpenStream>,
    /// Completion-wakeup counter: every pending request and stream on
    /// this connection carries a waker that bumps it (and rings the
    /// owning reactor's poller), so the reap pass can skip connections
    /// (and avoid scanning their whole pending lists) when nothing
    /// completed since the last look.
    wakes: Arc<AtomicU64>,
    /// The counter value the last reap pass observed.
    wakes_seen: u64,
    /// The owning reactor's poller — the edge source the wakers ring,
    /// which is what routes a completion wakeup to the right reactor:
    /// the waker closure captures this exact poller.
    poller: Arc<Poller>,
    /// Readiness reported by the last `wait`, consumed by `pump`.
    io_readable: bool,
    io_writable: bool,
    /// The `(readable, writable)` interest currently registered with
    /// the poller; `(false, false)` is the *parked* state (registered
    /// but never reported — `Event::none`).
    interest: (bool, bool),
    /// A reap pass stopped early on write backlog: ready work may
    /// remain without a fresh wake, so reap again once room opens.
    reap_stalled: bool,
    /// Set on peer EOF, server shutdown, or lost framing: no more reads.
    closed_for_reads: bool,
    /// Set on an unrecoverable socket error: drop the connection now.
    dead: bool,
    /// The service's stage histograms — this connection records the
    /// `reply_write` stage (encode-to-flushed time) into them.
    stages: Arc<StageTimes>,
    /// Total bytes ever flushed on this socket (the coordinate system
    /// for `wmarks`, immune to the write buffer recycling segments).
    flushed_total: u64,
    /// Reply-write marks: `(offset, encoded_at, trace)` entries meaning
    /// "the frame encoded at `encoded_at` is fully on the socket once
    /// `flushed_total` reaches `offset`". Popped in flush order —
    /// offsets are pushed non-decreasing, so the front is always the
    /// next to complete. A mark may carry the request's deferred trace,
    /// which the flush closes (reply-write span) and commits to the
    /// flight recorder.
    wmarks: VecDeque<(u64, Instant, Option<TraceFinisher>)>,
    /// The index of the reactor this connection is pinned to, recorded
    /// into sampled request traces.
    rix: u32,
}

/// Cap on queued reply-write marks per connection: past this, new
/// frames simply go unmeasured (the histogram is a sample, not a
/// ledger) rather than letting a slow reader grow the queue without
/// bound.
const MAX_WMARKS: usize = 1024;

/// Compact the read buffer once this many consumed bytes sit in front
/// of the cursor (amortizes the memmove the old drain-per-pass did on
/// every decode).
const RBUF_COMPACT: usize = 32 << 10;

impl Connection {
    fn new(
        stream: TcpStream,
        poller: Arc<Poller>,
        stages: Arc<StageTimes>,
        rix: u32,
    ) -> Connection {
        Connection {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: WriteBuf::new(),
            pending: Vec::new(),
            streams: Vec::new(),
            wakes: Arc::new(AtomicU64::new(0)),
            wakes_seen: 0,
            poller,
            io_readable: false,
            io_writable: false,
            interest: (true, false),
            reap_stalled: false,
            closed_for_reads: false,
            dead: false,
            stages,
            flushed_total: 0,
            wmarks: VecDeque::new(),
            rix,
        }
    }

    /// Records a reply-write mark for the frame(s) just encoded: the
    /// stage completes when every byte currently buffered has flushed.
    /// A deferred request trace rides the mark so the flush can close
    /// it with the frame's true on-socket time; past the mark cap the
    /// frame goes unmeasured and the trace commits without a
    /// reply-write span rather than being lost.
    fn mark_reply_written(&mut self, trace: Option<TraceFinisher>) {
        if self.wmarks.len() < MAX_WMARKS {
            self.wmarks.push_back((
                self.flushed_total + self.write_backlog() as u64,
                Instant::now(),
                trace,
            ));
        } else if let Some(trace) = trace {
            trace.commit();
        }
    }

    fn write_backlog(&self) -> usize {
        self.wbuf.backlog()
    }

    /// In-flight work counted against the per-connection window.
    fn inflight(&self) -> usize {
        self.pending.len() + self.streams.len()
    }

    /// Whether anything on this connection is still waiting to happen
    /// without a socket edge to announce it — the loop tightens its
    /// wait cap while any connection says yes.
    fn has_pending_work(&self) -> bool {
        !self.pending.is_empty()
            || !self.streams.is_empty()
            || self.reap_stalled
            || self.write_backlog() > 0
    }

    /// The completion wakeup installed on every submitted request and
    /// stream: bumps this connection's counter (so the reap pass knows
    /// *which* connection to scan) and rings the owning reactor's wake
    /// handle (so a blocked `wait` learns *that* there is something to
    /// scan — immediately, even if the completion lands in the instant
    /// before the loop blocks, and on the right reactor, because the
    /// closure captures this connection's own poller).
    fn waker(&self) -> impl Fn() + Send + Sync + 'static {
        let wakes = Arc::clone(&self.wakes);
        let poller = Arc::clone(&self.poller);
        move || {
            wakes.fetch_add(1, Ordering::Release);
            let _ = poller.notify();
        }
    }

    /// All accepted work answered and flushed — nothing left to drain.
    fn drained(&self) -> bool {
        self.pending.is_empty() && self.streams.is_empty() && self.write_backlog() == 0
    }

    /// Whether the connection should be dropped from the loop.
    fn finished(&self) -> bool {
        self.dead || (self.closed_for_reads && self.drained())
    }

    /// Reads whatever the socket has ready. Returns true on progress.
    fn fill(&mut self, config: &NetConfig) -> bool {
        if self.closed_for_reads || self.write_backlog() > config.max_write_backlog {
            return false;
        }
        let mut progress = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer half-closed: serve what we already have, then
                    // let `finished` reap the connection once drained.
                    self.closed_for_reads = true;
                    return true;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return progress;
                }
            }
        }
    }

    /// Decodes every complete frame buffered so far and submits it (or
    /// replies with an error frame). Returns true on progress.
    fn decode_and_submit(
        &mut self,
        service: &ProbeService,
        config: &NetConfig,
        counters: &NetCounters,
    ) -> bool {
        let mut consumed_total = 0usize;
        loop {
            match wire::decode_request(&self.rbuf[self.rpos + consumed_total..]) {
                Ok(Decoded::Incomplete) => break,
                Ok(Decoded::Frame {
                    consumed,
                    id,
                    value,
                }) => {
                    consumed_total += consumed;
                    counters.frames_in.fetch_add(1, Ordering::Relaxed);
                    if matches!(value, WireRequest::Stats) {
                        // Answered inline from the event loop, ahead of
                        // the in-flight cap: a scrape must not wait
                        // behind the shard queues (or the pipelining
                        // window) it is there to observe, and it never
                        // occupies a window slot.
                        let stats = service.live_stats().with_net(counters.snapshot());
                        self.wbuf
                            .encode_with(|b| wire::encode_stats_reply(b, id, &stats.to_json()));
                        counters.frames_out.fetch_add(1, Ordering::Relaxed);
                        self.mark_reply_written(None);
                        continue;
                    }
                    if matches!(value, WireRequest::Trace) {
                        // Same inline contract as Stats: the flight
                        // recorder is there to observe the queues, so a
                        // scrape never waits behind them.
                        let json = service.traces_json();
                        self.wbuf
                            .encode_with(|b| wire::encode_trace_reply(b, id, &json));
                        counters.frames_out.fetch_add(1, Ordering::Relaxed);
                        self.mark_reply_written(None);
                        continue;
                    }
                    if matches!(value, WireRequest::Profile) {
                        // Same inline contract as Stats: the counter
                        // snapshot is a handful of atomic loads, and a
                        // profiling scrape must not perturb the queues
                        // it is attributing stalls to.
                        let json = service.profile_json();
                        self.wbuf
                            .encode_with(|b| wire::encode_profile_reply(b, id, &json));
                        counters.frames_out.fetch_add(1, Ordering::Relaxed);
                        self.mark_reply_written(None);
                        continue;
                    }
                    if self.inflight() >= config.max_inflight_per_conn {
                        counters.busy_rejects.fetch_add(1, Ordering::Relaxed);
                        self.reply_error(
                            id,
                            &ErrorReply::new(ErrorCode::Busy, "connection in-flight cap"),
                            counters,
                        );
                        continue;
                    }
                    let waker = self.waker();
                    // When tracing is armed, anchor the trace timeline
                    // at frame-decode time and tag the owning reactor;
                    // the service decides (head sample or tail slow
                    // threshold) whether the request actually records.
                    let net_ctx = service.tracing_armed().then(|| NetTraceCtx {
                        reactor: self.rix,
                        id,
                        decoded_at: Instant::now(),
                    });
                    let submitted = match value {
                        WireRequest::Plain(request) => {
                            let wkind = wire::WriteKind::of(&request);
                            service.try_submit_traced(request, net_ctx).map(|pending| {
                                pending.set_waker(waker);
                                self.pending.push((id, wkind, pending));
                            })
                        }
                        WireRequest::Stream {
                            lo,
                            hi,
                            limit,
                            desc,
                        } => service
                            .try_range_stream_traced(lo, hi, limit, desc, net_ctx)
                            .map(|stream| {
                                stream.set_waker(waker);
                                self.streams.push(OpenStream {
                                    id,
                                    stream,
                                    entries: 0,
                                });
                            }),
                        WireRequest::Stats | WireRequest::Trace | WireRequest::Profile => {
                            unreachable!("answered before the in-flight cap")
                        }
                    };
                    match submitted {
                        Ok(()) => {}
                        Err(SubmitError::Busy) => {
                            counters.busy_rejects.fetch_add(1, Ordering::Relaxed);
                            self.reply_error(
                                id,
                                &ErrorReply::new(ErrorCode::Busy, "shard queue at capacity"),
                                counters,
                            );
                        }
                        Err(SubmitError::Stopped) => {
                            self.reply_error(
                                id,
                                &ErrorReply::new(ErrorCode::Stopped, "service is shutting down"),
                                counters,
                            );
                        }
                        Err(SubmitError::NoOrderedIndex) => {
                            self.reply_error(
                                id,
                                &ErrorReply::new(
                                    ErrorCode::NoOrderedIndex,
                                    "no ordered tier for range scans",
                                ),
                                counters,
                            );
                        }
                    }
                }
                Ok(Decoded::Corrupt {
                    consumed,
                    id,
                    error,
                }) => {
                    consumed_total += consumed;
                    counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                    let code = match error {
                        wire::DecodeError::Version(_) | wire::DecodeError::Opcode(_) => {
                            ErrorCode::Unsupported
                        }
                        _ => ErrorCode::Malformed,
                    };
                    self.reply_error(id, &ErrorReply::new(code, error.to_string()), counters);
                }
                Err(frame_error) => {
                    // Framing lost: answer once (on the reserved
                    // connection-level id — id 0 is a real request id),
                    // then close after the flush; nothing further on
                    // this socket can be trusted to be frame-aligned.
                    counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.reply_error(
                        wire::CONNECTION_ERROR_ID,
                        &ErrorReply::new(ErrorCode::Malformed, frame_error.to_string()),
                        counters,
                    );
                    self.rbuf.clear();
                    self.rpos = 0;
                    consumed_total = 0;
                    self.closed_for_reads = true;
                    break;
                }
            }
        }
        let progress = consumed_total > 0;
        self.rpos += consumed_total;
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        } else if self.rpos >= RBUF_COMPACT {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        progress
    }

    fn reply_error(&mut self, id: u64, error: &ErrorReply, counters: &NetCounters) {
        self.wbuf.encode_with(|b| wire::encode_error(b, id, error));
        counters.frames_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Writes completed responses and released stream chunks into the
    /// output buffer, in completion order. Returns true on progress.
    ///
    /// The scan is gated on the connection's wakeup counter: workers
    /// bump it (through the `ResponseState` waker hook) whenever a
    /// request completes or a chunk becomes consumable, so a pass over
    /// a quiet connection is one atomic load instead of a walk of its
    /// whole pending list.
    fn reap_completions(&mut self, config: &NetConfig, counters: &NetCounters) -> bool {
        let wakes = self.wakes.load(Ordering::Acquire);
        if wakes == self.wakes_seen && !self.reap_stalled {
            return false;
        }
        // Observe the counter *before* scanning: a wake that lands
        // mid-scan leaves it ahead of `wakes_seen`, forcing a rescan
        // next pass rather than being lost.
        self.wakes_seen = wakes;
        self.reap_stalled = false;
        let mut progress = false;
        let mut i = 0;
        while i < self.pending.len() {
            // Pace encoding by the write backlog: a completed reply the
            // peer has no room for stays in `pending` until the buffer
            // flushes. Without this, a non-reading peer could turn its
            // whole in-flight window of large replies into buffered
            // bytes at once — the unbounded buffering this server
            // promises not to do.
            if self.write_backlog() >= config.max_write_backlog {
                self.reap_stalled = true;
                break;
            }
            if self.pending[i].2.is_ready() {
                let (id, wkind, pending) = self.pending.swap_remove(i);
                // A deferred trace detaches here, before `wait` consumes
                // the handle, and rides the reply-write mark to its
                // commit at flush time.
                let trace = pending.take_trace();
                // `wait` cannot block: readiness was just observed.
                let response = pending.wait();
                if wire::response_fits(&response) {
                    self.wbuf.encode_with(|b| {
                        if let (widx_serve::Response::Write { acks }, Some(kind)) =
                            (&response, wkind)
                        {
                            wire::encode_write_reply(b, id, kind, acks);
                        } else {
                            wire::encode_response(b, id, &response);
                        }
                    });
                    counters.frames_out.fetch_add(1, Ordering::Relaxed);
                    self.mark_reply_written(trace);
                } else {
                    // The trace still commits — an oversized reply is
                    // exactly the kind of request worth a flight-recorder
                    // entry — just without a reply-write span.
                    if let Some(trace) = trace {
                        trace.commit();
                    }
                    // A legal request (e.g. an unbounded RangeScan) can
                    // complete with more entries than any frame may
                    // carry — answer TooLarge rather than letting the
                    // encoder's cap assert kill the event loop.
                    self.reply_error(
                        id,
                        &ErrorReply::new(
                            ErrorCode::TooLarge,
                            "reply exceeds the maximum frame size; narrow the request",
                        ),
                        counters,
                    );
                }
                progress = true;
            } else {
                i += 1;
            }
        }
        progress |= self.reap_streams(config, counters);
        progress
    }

    /// Writes every consumable chunk of every open stream (then the
    /// `RangeEnd` marker), under the same write-backlog pacing as
    /// buffered replies — a slow reader's chunks wait in the gather
    /// seam instead of ballooning the connection buffer. Chunks
    /// serialize straight out of the seam's own buffers
    /// ([`PendingStream::try_next_with`]): the bytes go from the
    /// worker-built chunk into the wire buffer with no owned-`Vec`
    /// handoff in between, and the chunk's allocation recycles back to
    /// the pushing worker. Returns true on progress.
    fn reap_streams(&mut self, config: &NetConfig, counters: &NetCounters) -> bool {
        let mut progress = false;
        let mut i = 0;
        while i < self.streams.len() {
            let mut finished = false;
            loop {
                if self.wbuf.backlog() >= config.max_write_backlog {
                    self.reap_stalled = true;
                    break;
                }
                // Split borrows: the sink serializes into the write
                // buffer while the stream handle is held mutably.
                let Connection { streams, wbuf, .. } = self;
                let open = &mut streams[i];
                let id = open.id;
                let mut frames = 0u64;
                let poll = open.stream.try_next_with(|chunk| {
                    // The serve tier caps chunks at `stream_chunk`
                    // entries; split defensively anyway so a huge
                    // configured chunk cannot trip the frame cap.
                    for piece in chunk.chunks(wire::MAX_CHUNK_ENTRIES) {
                        wbuf.encode_with(|b| wire::encode_range_chunk(b, id, piece));
                        frames += 1;
                    }
                });
                match poll {
                    StreamConsumed::Consumed(entries) => {
                        open.entries += entries as u64;
                        counters.frames_out.fetch_add(frames, Ordering::Relaxed);
                        progress = true;
                    }
                    StreamConsumed::End => {
                        let total = open.entries;
                        wbuf.encode_with(|b| wire::encode_range_end(b, id, total));
                        counters.frames_out.fetch_add(1, Ordering::Relaxed);
                        finished = true;
                        progress = true;
                        break;
                    }
                    StreamConsumed::Pending => break,
                }
            }
            if finished {
                // The stream's reply-write stage spans its final frame:
                // one mark at the `RangeEnd`, not one per chunk. The
                // trace (if any) rides the same mark.
                let trace = self.streams[i].stream.take_trace();
                self.mark_reply_written(trace);
                self.streams.swap_remove(i);
            } else {
                i += 1;
            }
        }
        progress
    }

    /// Flushes as much buffered output as the socket accepts (one
    /// `writev` per syscall), completing reply-write marks as their
    /// bytes reach the socket, and shrinking oversized buffers once the
    /// backlog fully drains. Returns true on progress.
    fn flush(&mut self) -> bool {
        let (flushed, dead) = self.wbuf.flush(&mut self.stream);
        if dead {
            self.dead = true;
        }
        self.flushed_total += flushed as u64;
        while self
            .wmarks
            .front()
            .is_some_and(|mark| mark.0 <= self.flushed_total)
        {
            let (_, encoded_at, trace) = self.wmarks.pop_front().expect("front just checked");
            self.stages.record(Stage::ReplyWrite, encoded_at.elapsed());
            if let Some(mut trace) = trace {
                trace.note_reply_write(encoded_at);
                trace.commit();
            }
        }
        if flushed > 0 && self.wbuf.backlog() == 0 {
            self.shrink_after_drain();
        }
        flushed > 0
    }

    /// Sheds capacity a finished burst left behind: every per-connection
    /// buffer above [`BUF_HIGH_WATER`] shrinks back to it, so one large
    /// range scan does not pin megabytes for the connection's lifetime.
    fn shrink_after_drain(&mut self) {
        self.wbuf.shrink_to(BUF_HIGH_WATER);
        if self.rbuf.capacity() > BUF_HIGH_WATER {
            self.rbuf.shrink_to(BUF_HIGH_WATER);
        }
        if self.pending.is_empty() && self.pending.capacity() > 64 {
            self.pending.shrink_to(16);
        }
        if self.streams.is_empty() && self.streams.capacity() > 64 {
            self.streams.shrink_to(16);
        }
        if self.wmarks.is_empty() && self.wmarks.capacity() > 256 {
            self.wmarks.shrink_to(64);
        }
    }

    /// Total buffer capacity this connection currently retains — what
    /// the high-water shrink bounds between bursts.
    #[cfg(test)]
    fn retained_capacity(&self) -> usize {
        self.rbuf.capacity() + self.wbuf.retained_capacity()
    }

    /// One pass over whatever the last `wait` reported (plus completion
    /// wakes): read if the socket was readable, decode+submit, reap
    /// completions, flush. Returns true on progress.
    fn pump(&mut self, service: &ProbeService, config: &NetConfig, counters: &NetCounters) -> bool {
        let read_ready = std::mem::take(&mut self.io_readable);
        let write_ready = std::mem::take(&mut self.io_writable);
        let mut progress = false;
        if read_ready {
            progress |= self.fill(config);
            progress |= self.decode_and_submit(service, config, counters);
        }
        progress |= self.reap_completions(config, counters);
        if write_ready || self.write_backlog() > 0 {
            progress |= self.flush();
        }
        progress
    }

    /// The `(readable, writable)` interest this connection should hold
    /// right now: reads park under EOF or a write backlog over the cap;
    /// write interest exists only while a backlog does.
    fn desired_interest(&self, config: &NetConfig) -> (bool, bool) {
        (
            !self.closed_for_reads && self.write_backlog() <= config.max_write_backlog,
            self.write_backlog() > 0,
        )
    }

    /// Reconciles the poller registration with the desired interest.
    /// `(false, false)` parks the registration (`Event::none`) — the
    /// backends keep parked sources out of their readiness sweeps, so a
    /// hung-up peer cannot storm the loop with HUP events.
    fn update_interest(&mut self, key: usize, config: &NetConfig) {
        let desired = self.desired_interest(config);
        if desired == self.interest {
            return;
        }
        let event = Event {
            key,
            readable: desired.0,
            writable: desired.1,
        };
        if self.poller.modify(&self.stream, event).is_ok() {
            self.interest = desired;
        } else {
            // Registration failure starves this connection of edges —
            // kill it rather than leaving it silently stuck.
            self.dead = true;
        }
    }

    /// Drops the connection's poller registration.
    fn deregister(&mut self) {
        let _ = self.poller.delete(&self.stream);
    }
}

/// One reactor's cross-thread surface: the poller the acceptor rings
/// and the inbox it hands accepted sockets through. Everything else a
/// reactor owns lives on its own stack.
struct ReactorHandle {
    poller: Arc<Poller>,
    inbox: Mutex<VecDeque<TcpStream>>,
}

/// A running socket front-end over a [`ProbeService`]: an acceptor
/// thread plus [`NetConfig::reactors`] event-loop threads, connections
/// pinned round-robin.
///
/// # Shutdown
///
/// [`shutdown`](WidxServer::shutdown) stops accepting, stops *reading*,
/// and drains: every request frame already received is still decoded,
/// submitted, answered, and flushed before the loops exit — no
/// accepted request is dropped, on any reactor, even when its write
/// backlog is nonempty at the moment shutdown begins. The underlying
/// [`ProbeService`] is caller-owned and keeps running; in-flight frames
/// drain through its own poison-pill shutdown if the caller stops it
/// afterwards (or concurrently — accepted submissions complete either
/// way).
pub struct WidxServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    accept_poller: Arc<Poller>,
    reactors: Vec<Arc<ReactorHandle>>,
    threads: Vec<JoinHandle<()>>,
}

impl WidxServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port),
    /// builds one readiness poller per reactor plus the acceptor's
    /// (honouring [`NetConfig::poller_backend`] / `WIDX_POLLER`),
    /// registers the listener, and starts the event loops over
    /// `service`.
    ///
    /// # Errors
    ///
    /// Any socket-level failure to bind or configure the listener, or
    /// failure to set up a poller backend.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<ProbeService>,
        config: NetConfig,
    ) -> std::io::Result<WidxServer> {
        let config = config.normalized();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let build_poller = |config: &NetConfig| -> std::io::Result<Arc<Poller>> {
            Ok(Arc::new(match &config.poller_backend {
                Some(backend) => Poller::with_backend(backend)?,
                None => Poller::new()?,
            }))
        };
        let accept_poller = build_poller(&config)?;
        accept_poller.add(&listener, Event::readable(LISTENER_KEY))?;
        let mut reactors = Vec::with_capacity(config.reactors);
        for _ in 0..config.reactors {
            reactors.push(Arc::new(ReactorHandle {
                poller: build_poller(&config)?,
                inbox: Mutex::new(VecDeque::new()),
            }));
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::new(config.reactors));
        let mut threads = Vec::with_capacity(config.reactors + 1);
        for (rix, handle) in reactors.iter().enumerate() {
            let handle = Arc::clone(handle);
            let service = Arc::clone(&service);
            let config = config.clone();
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("widx-net-r{rix}"))
                    .spawn(move || {
                        run_reactor(rix, &handle, &service, &config, &shutdown, &counters);
                    })
                    .expect("spawn net reactor"),
            );
        }
        {
            let accept_poller = Arc::clone(&accept_poller);
            let reactors = reactors.clone();
            let config = config.clone();
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            threads.push(
                std::thread::Builder::new()
                    .name("widx-net-accept".to_string())
                    .spawn(move || {
                        run_acceptor(
                            &listener,
                            &accept_poller,
                            &reactors,
                            &config,
                            &shutdown,
                            &counters,
                        );
                    })
                    .expect("spawn net acceptor"),
            );
        }
        Ok(WidxServer {
            addr,
            shutdown,
            counters,
            accept_poller,
            reactors,
            threads,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the network-tier counters (per-reactor gauges
    /// included); attach the final one to the service's stats with
    /// [`ServiceStats::with_net`](widx_serve::ServiceStats::with_net).
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.counters.snapshot()
    }

    /// Graceful shutdown: stop accepting and reading, drain every
    /// accepted frame through to a flushed reply on every reactor, then
    /// join the threads. Returns the final counter snapshot.
    #[must_use]
    pub fn shutdown(mut self) -> NetStats {
        self.begin_shutdown();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        self.counters.snapshot()
    }

    /// Publishes the shutdown flag, then rings every loop's wake handle
    /// so loops blocked in `poller.wait` observe it now rather than at
    /// the wait cap — the same no-lost-wakeup contract completions get.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.accept_poller.notify();
        for reactor in &self.reactors {
            let _ = reactor.poller.notify();
        }
    }
}

impl Drop for WidxServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// How the accept loop reacts to an `accept()` error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AcceptErr {
    /// `EAGAIN`: the pending queue is drained; end this pass.
    Exhausted,
    /// Transient, scoped to one would-be connection (`EINTR`,
    /// `ECONNABORTED`, a peer that vanished mid-handshake): skip it and
    /// keep accepting — the rest of the queue is fine.
    Transient,
    /// Out of file descriptors (`EMFILE`/`ENFILE`): back off briefly so
    /// fd pressure can ease, then keep accepting. Aborting here (the
    /// old behaviour for *every* non-`WouldBlock` error) would wedge
    /// the listener forever on a recoverable condition.
    Descriptors,
}

fn classify_accept_error(e: &std::io::Error) -> AcceptErr {
    if e.kind() == ErrorKind::WouldBlock {
        return AcceptErr::Exhausted;
    }
    // ENFILE (23) / EMFILE (24): no stable `ErrorKind` maps these.
    if matches!(e.raw_os_error(), Some(23 | 24)) {
        return AcceptErr::Descriptors;
    }
    AcceptErr::Transient
}

/// Most accept errors tolerated in one pass before yielding back to the
/// poller — a persistently failing listener must not spin this pass
/// forever (level-triggered readiness re-reports it next wait).
const MAX_ACCEPT_ERRORS_PER_PASS: usize = 64;

/// Accepts until the listener is drained, feeding sockets to `sink`.
/// Errors other than `WouldBlock` never abort the loop: transient ones
/// are logged and skipped, descriptor exhaustion invokes `backoff`
/// before continuing, and a bounded error budget ends the pass instead
/// of spinning. Returns true when at least one socket was accepted.
fn drain_accepts(
    accept: &mut dyn FnMut() -> std::io::Result<TcpStream>,
    sink: &mut dyn FnMut(TcpStream),
    backoff: &mut dyn FnMut(),
    log: &mut dyn FnMut(&std::io::Error),
) -> bool {
    let mut progress = false;
    let mut errors = 0usize;
    loop {
        match accept() {
            Ok(stream) => {
                progress = true;
                sink(stream);
            }
            Err(e) => {
                match classify_accept_error(&e) {
                    AcceptErr::Exhausted => break,
                    AcceptErr::Transient => log(&e),
                    AcceptErr::Descriptors => {
                        log(&e);
                        backoff();
                    }
                }
                errors += 1;
                if errors >= MAX_ACCEPT_ERRORS_PER_PASS {
                    break;
                }
            }
        }
    }
    progress
}

/// The acceptor thread: blocks on its own poller (listener readability
/// or the shutdown wake), accepts every pending connection, and hands
/// each off round-robin to a reactor's inbox, ringing that reactor's
/// wake handle so the pinning takes effect immediately.
fn run_acceptor(
    listener: &TcpListener,
    poller: &Arc<Poller>,
    reactors: &[Arc<ReactorHandle>],
    config: &NetConfig,
    shutdown: &AtomicBool,
    counters: &NetCounters,
) {
    let mut events: Vec<Event> = Vec::new();
    let mut next = 0usize;
    let mut last_log: Option<Instant> = None;
    loop {
        // An assume-ready backend has no readiness source: hold it at
        // polling cadence so accepts are still noticed promptly.
        let cap = if poller.has_readiness_source() {
            QUIET_WAIT_CAP
        } else {
            config.idle_backoff
        };
        if poller.wait(&mut events, Some(cap)).is_err() {
            events.clear();
            std::thread::sleep(config.idle_backoff);
        }
        if shutdown.load(Ordering::Relaxed) {
            let _ = poller.delete(listener);
            return;
        }
        // Level-triggered: whatever woke us, draining the accept queue
        // is always safe (an unready listener answers `WouldBlock`).
        drain_accepts(
            &mut || listener.accept().map(|(stream, _)| stream),
            &mut |stream| {
                if stream.set_nonblocking(true).is_err() {
                    return;
                }
                let _ = stream.set_nodelay(true);
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let reactor = &reactors[next % reactors.len()];
                next = next.wrapping_add(1);
                reactor
                    .inbox
                    .lock()
                    .expect("reactor inbox")
                    .push_back(stream);
                let _ = reactor.poller.notify();
            },
            &mut || std::thread::sleep(ACCEPT_BACKOFF),
            &mut |e| {
                // Rate-limited: fd exhaustion arrives in storms.
                let now = Instant::now();
                if last_log.is_none_or(|at| now.duration_since(at) >= Duration::from_secs(1)) {
                    last_log = Some(now);
                    eprintln!("widx-net: accept error (continuing): {e}");
                }
            },
        );
    }
}

/// One reactor's event loop: registers sockets handed off by the
/// acceptor with its own poller, then serves them exactly as the old
/// single-threaded loop did — decode, submit, reap, flush — publishing
/// its gauges into its own [`ReactorGauges`] cell each pass.
fn run_reactor(
    rix: usize,
    handle: &ReactorHandle,
    service: &ProbeService,
    config: &NetConfig,
    shutdown: &AtomicBool,
    counters: &NetCounters,
) {
    let stages = service.stage_times();
    let poller = &handle.poller;
    let mut slots: Vec<Option<Connection>> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut draining: Option<Instant> = None;
    // First iteration polls with a zero timeout: service the state that
    // existed before the loop started, then settle into blocking waits.
    let mut progress = true;
    loop {
        // The wait is the old idle sleep, inverted: instead of sleeping
        // blind and hoping to notice work afterwards, block *in* the
        // readiness source. Timeouts are insurance, not signal — tight
        // (idle_backoff) while work is in flight, long when fully quiet,
        // zero when the last pass made progress (drain the backlog of
        // edges without sleeping).
        let timeout = if progress {
            Duration::ZERO
        } else {
            let quiet = !slots.iter().flatten().any(Connection::has_pending_work);
            // An assume-ready backend (no real readiness source) only
            // notices socket activity when the wait expires: hold it at
            // polling cadence even when quiet.
            let mut cap = if quiet && poller.has_readiness_source() {
                QUIET_WAIT_CAP
            } else {
                config.idle_backoff
            };
            if let Some(since) = draining {
                cap = cap.min(config.drain_timeout.saturating_sub(since.elapsed()));
            }
            cap
        };
        if poller.wait(&mut events, Some(timeout)).is_err() {
            // A broken poller must not hot-spin the loop; degrade to
            // the old polling cadence for this pass.
            events.clear();
            std::thread::sleep(config.idle_backoff);
        }
        progress = false;
        if draining.is_none() && shutdown.load(Ordering::Relaxed) {
            // Shutdown begins: stop reading (the acceptor has already
            // stopped accepting). Frames whose bytes already arrived
            // still decode, submit, and answer below — and a connection
            // with a nonempty write backlog keeps flushing until every
            // accepted frame is on the socket: drain, then halt.
            draining = Some(Instant::now());
            for conn in slots.iter_mut().flatten() {
                conn.closed_for_reads = true;
            }
            progress = true;
        }
        // Adopt connections the acceptor handed off: register each with
        // *this* reactor's poller — the pinning decision is permanent.
        // Handoffs racing the start of a drain are closed unserved: a
        // socket this reactor never read from has no accepted frames.
        loop {
            let stream = handle.inbox.lock().expect("reactor inbox").pop_front();
            let Some(stream) = stream else { break };
            if draining.is_some() {
                continue;
            }
            let slot = match slots.iter().position(Option::is_none) {
                Some(free) => free,
                None => {
                    slots.push(None);
                    slots.len() - 1
                }
            };
            let conn = Connection::new(stream, Arc::clone(poller), Arc::clone(&stages), rix as u32);
            if poller
                .add(&conn.stream, Event::readable(slot + CONN_KEY_BASE))
                .is_err()
            {
                // No registration, no edges: refuse the connection
                // rather than strand it.
                continue;
            }
            slots[slot] = Some(conn);
            progress = true;
        }
        for event in &events {
            if let Some(Some(conn)) = slots.get_mut(event.key.wrapping_sub(CONN_KEY_BASE)) {
                conn.io_readable |= event.readable;
                conn.io_writable |= event.writable;
            }
        }
        // Pump every live connection: ones with socket readiness do IO,
        // ones whose waker fired reap completions, quiet ones cost one
        // atomic load. Then reconcile each connection's poller interest
        // with what this pass left behind (write interest only while a
        // backlog exists, reads parked under backpressure).
        for (index, slot) in slots.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            progress |= conn.pump(service, config, counters);
            if conn.finished() {
                conn.deregister();
                *slot = None;
            } else {
                conn.update_interest(index + CONN_KEY_BASE, config);
            }
        }
        // Re-publish this reactor's gauges: how many connections it
        // owns and how many reply bytes sit unflushed across them. A
        // scrape (the Stats opcode, or `WidxServer::stats`) sees values
        // at most one loop pass stale; totals are summed at snapshot.
        let mut open = 0u64;
        let mut backlog = 0u64;
        for conn in slots.iter().flatten() {
            open += 1;
            backlog += conn.write_backlog() as u64;
        }
        counters.reactors[rix].publish(open, backlog);
        if let Some(since) = draining {
            if slots.iter().all(Option::is_none) {
                return;
            }
            if since.elapsed() > config.drain_timeout {
                // A peer that will not read its replies can never
                // drain; abandoning it bounds shutdown (and `Drop`).
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_backoff_zero_is_clamped_not_honoured() {
        // Zero would make every idle `poller.wait` return immediately —
        // a hot spin. The builder clamps...
        let config = NetConfig::default().with_idle_backoff(Duration::ZERO);
        assert_eq!(config.idle_backoff, NetConfig::MIN_IDLE_BACKOFF);
        // ...and `normalized` (what `bind` runs) re-clamps a value
        // poked directly through the public field.
        let config = NetConfig {
            idle_backoff: Duration::ZERO,
            ..NetConfig::default()
        };
        assert_eq!(
            config.normalized().idle_backoff,
            NetConfig::MIN_IDLE_BACKOFF
        );
        // Values above the floor pass through untouched.
        let config = NetConfig::default().with_idle_backoff(Duration::from_millis(2));
        assert_eq!(config.normalized().idle_backoff, Duration::from_millis(2));
    }

    #[test]
    fn poller_backend_override_is_carried() {
        let config = NetConfig::default().with_poller_backend("timeout");
        assert_eq!(config.poller_backend.as_deref(), Some("timeout"));
        assert!(NetConfig::default().poller_backend.is_none());
    }

    #[test]
    fn reactor_count_is_clamped_to_at_least_one() {
        assert_eq!(NetConfig::default().reactors, 1);
        assert_eq!(NetConfig::default().with_reactors(0).reactors, 1);
        assert_eq!(NetConfig::default().with_reactors(4).reactors, 4);
        let config = NetConfig {
            reactors: 0,
            ..NetConfig::default()
        };
        assert_eq!(config.normalized().reactors, 1);
    }

    fn raw_err(code: i32) -> std::io::Error {
        std::io::Error::from_raw_os_error(code)
    }

    /// A connected loopback pair: `(server side, client side)`.
    fn sock_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (server, client)
    }

    #[test]
    fn accept_errors_do_not_abort_the_accept_loop() {
        // Regression for the old `Err(_) => break`: a scripted accept
        // path yielding EMFILE, ECONNABORTED, and EIO between real
        // sockets must still deliver every socket.
        let (s1, _c1) = sock_pair();
        let (s2, _c2) = sock_pair();
        let (s3, _c3) = sock_pair();
        let mut script: VecDeque<std::io::Result<TcpStream>> = VecDeque::from([
            Err(raw_err(103)), // ECONNABORTED: peer gave up mid-handshake
            Ok(s1),
            Err(raw_err(24)), // EMFILE: out of fds — back off, continue
            Ok(s2),
            Err(raw_err(5)), // EIO: unknown transient
            Ok(s3),
            Err(std::io::Error::from(ErrorKind::WouldBlock)),
        ]);
        let mut accepted = 0usize;
        let mut backoffs = 0usize;
        let mut logged = 0usize;
        let progress = drain_accepts(
            &mut || script.pop_front().expect("script exhausted"),
            &mut |_stream| accepted += 1,
            &mut || backoffs += 1,
            &mut |_e| logged += 1,
        );
        assert!(progress);
        assert_eq!(accepted, 3, "every socket behind the errors got through");
        assert_eq!(backoffs, 1, "EMFILE backed off exactly once");
        assert_eq!(logged, 3, "each non-WouldBlock error was surfaced");
        assert!(script.is_empty(), "loop ran to the WouldBlock");
    }

    #[test]
    fn persistent_accept_errors_end_the_pass_instead_of_spinning() {
        let mut calls = 0usize;
        let progress = drain_accepts(
            &mut || {
                calls += 1;
                Err(raw_err(5))
            },
            &mut |_stream| {},
            &mut || {},
            &mut |_e| {},
        );
        assert!(!progress);
        assert_eq!(calls, MAX_ACCEPT_ERRORS_PER_PASS, "bounded, not infinite");
    }

    #[test]
    fn classify_accept_error_buckets() {
        assert_eq!(
            classify_accept_error(&std::io::Error::from(ErrorKind::WouldBlock)),
            AcceptErr::Exhausted
        );
        assert_eq!(classify_accept_error(&raw_err(24)), AcceptErr::Descriptors);
        assert_eq!(classify_accept_error(&raw_err(23)), AcceptErr::Descriptors);
        assert_eq!(classify_accept_error(&raw_err(103)), AcceptErr::Transient);
        assert_eq!(
            classify_accept_error(&std::io::Error::from(ErrorKind::Interrupted)),
            AcceptErr::Transient
        );
    }

    #[test]
    fn write_buf_batches_frames_and_recycles_segments() {
        let (mut server, mut client) = sock_pair();
        server.set_nonblocking(true).expect("nonblocking");
        let mut wbuf = WriteBuf::new();
        // Many small "frames" — they should pack into few segments.
        let mut sent = Vec::new();
        for i in 0..100u32 {
            wbuf.encode_with(|b| {
                b.extend_from_slice(&i.to_le_bytes());
                sent.extend_from_slice(&i.to_le_bytes());
            });
        }
        assert_eq!(wbuf.backlog(), 400);
        assert!(wbuf.segs.len() <= 1 + 400 / SEG_TARGET, "small frames pack");
        let (flushed, dead) = wbuf.flush(&mut server);
        assert!(!dead);
        assert_eq!(flushed, 400);
        assert_eq!(wbuf.backlog(), 0);
        assert!(wbuf.segs.is_empty());
        assert!(!wbuf.spare.is_empty(), "flushed segment was recycled");
        let mut got = vec![0u8; 400];
        client.read_exact(&mut got).expect("read");
        assert_eq!(got, sent, "vectored flush preserved byte order");
    }

    #[test]
    fn write_buf_shrinks_retained_capacity_to_the_cap() {
        let (mut server, client) = sock_pair();
        server.set_nonblocking(true).expect("nonblocking");
        let mut wbuf = WriteBuf::new();
        // One burst far above the high-water cap.
        let big = vec![0xABu8; 2 << 20];
        wbuf.encode_with(|b| b.extend_from_slice(&big));
        let reader = std::thread::spawn(move || {
            let mut stream = client;
            let mut sink = [0u8; 64 << 10];
            let mut total = 0usize;
            while total < 2 << 20 {
                match stream.read(&mut sink) {
                    Ok(0) => break,
                    Ok(n) => total += n,
                    Err(_) => break,
                }
            }
            total
        });
        while wbuf.backlog() > 0 {
            let (_, dead) = wbuf.flush(&mut server);
            assert!(!dead);
            if wbuf.backlog() > 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        wbuf.shrink_to(BUF_HIGH_WATER);
        assert!(
            wbuf.retained_capacity() <= BUF_HIGH_WATER,
            "retained {} > cap {}",
            wbuf.retained_capacity(),
            BUF_HIGH_WATER
        );
        drop(server);
        assert_eq!(reader.join().expect("reader"), 2 << 20);
    }

    #[test]
    fn connection_buffers_shrink_after_a_large_burst_drains() {
        // Satellite regression: rbuf/wbuf grew to the largest burst
        // ever seen and never shrank. Push a multi-megabyte burst
        // through a real loopback connection, drain it, and assert the
        // retained capacity came back under the high-water cap.
        let (server, client) = sock_pair();
        server.set_nonblocking(true).expect("nonblocking");
        let poller = Arc::new(Poller::with_backend("timeout").expect("poller"));
        let mut conn = Connection::new(server, poller, Arc::new(StageTimes::new()), 0);
        // Simulate a large decoded request having passed through rbuf.
        conn.rbuf = vec![0u8; 3 << 20];
        conn.rbuf.clear();
        assert!(conn.retained_capacity() > BUF_HIGH_WATER);
        // A burst of reply bytes far over the cap.
        let payload = vec![0x5Au8; 4 << 20];
        conn.wbuf.encode_with(|b| b.extend_from_slice(&payload));
        conn.mark_reply_written(None);
        let reader = std::thread::spawn(move || {
            let mut stream = client;
            let mut sink = [0u8; 64 << 10];
            let mut total = 0usize;
            while total < 4 << 20 {
                match stream.read(&mut sink) {
                    Ok(0) => break,
                    Ok(n) => total += n,
                    Err(_) => break,
                }
            }
            total
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while conn.write_backlog() > 0 {
            assert!(Instant::now() < deadline, "drain stalled");
            conn.flush();
            if conn.write_backlog() > 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert!(!conn.dead);
        assert!(
            conn.retained_capacity() <= BUF_HIGH_WATER,
            "retained {} bytes > {} cap after the burst drained",
            conn.retained_capacity(),
            BUF_HIGH_WATER
        );
        assert!(conn.wmarks.is_empty(), "reply-write mark completed");
        drop(conn);
        assert_eq!(reader.join().expect("reader"), 4 << 20);
    }
}
