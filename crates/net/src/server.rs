//! The non-blocking socket server: one event-loop thread multiplexing
//! every connection over `std` non-blocking sockets, driven by a
//! readiness poller (the `compat/` [`poller`] crate: epoll on Linux,
//! `poll(2)` elsewhere) — accept, decode pipelined frames, `try_submit`
//! into the probe service's batching queues, and write replies back as
//! they complete, **possibly out of order** (request ids make that
//! safe).
//!
//! The listener and every connection are registered with the poller;
//! write interest is toggled on only while a connection has unflushed
//! reply bytes, and read interest is parked while its write backlog is
//! over the cap (slow-consumer backpressure) or after EOF. Completions
//! from the serving tier ring the poller's user-space wake handle
//! through the `ResponseState` waker hook, so the idle path is a
//! *blocking* `poller.wait` — no periodic sleep to burn CPU at zero
//! load, and no check-then-sleep window for a completion to slip
//! through unobserved (the lost-wakeup race the old readiness-polling
//! loop had; see `docs/poller.md`).
//!
//! Backpressure is never buffered away: when a shard queue is at
//! capacity ([`SubmitError::Busy`]) or a connection exceeds its
//! in-flight window, the server answers a typed `Busy` error frame
//! instead of queueing without bound, and when a connection's peer
//! stops reading, the write-backlog cap stops the server reading from
//! it — TCP pushes back the rest of the way.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use poller::{Event, Poller};
use widx_serve::{
    NetStats, PendingResponse, PendingStream, ProbeService, Stage, StageTimes, StreamPoll,
    SubmitError,
};

use crate::wire::{self, Decoded, ErrorCode, ErrorReply, WireRequest};

/// The listener's poller key; connection slot `i` registers as `i + 1`.
const LISTENER_KEY: usize = 0;
const CONN_KEY_BASE: usize = 1;

/// Wait cap when the loop is fully quiet (no in-flight work anywhere):
/// pure insurance — every state change (a new connection, socket
/// readiness, a completion, shutdown) arrives as a poller event or a
/// wake, so correctness never rides on this timer firing.
const QUIET_WAIT_CAP: Duration = Duration::from_secs(1);

/// Tuning knobs for a [`WidxServer`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Decoded-but-unanswered requests allowed per connection before the
    /// server replies `Busy` (the pipelining window it will honour).
    pub max_inflight_per_conn: usize,
    /// Unflushed reply bytes allowed per connection before the server
    /// stops reading from it (slow-consumer backpressure).
    pub max_write_backlog: usize,
    /// Cap on one blocking `poller.wait` while in-flight work exists —
    /// the loop's housekeeping cadence and the worst-case staleness
    /// bound should a readiness edge ever be missed, **not** a latency
    /// knob: completions and socket readiness interrupt the wait
    /// immediately through the poller. Values below
    /// [`NetConfig::MIN_IDLE_BACKOFF`] (zero especially, which would
    /// turn the idle path into a hot spin) are clamped up to it.
    pub idle_backoff: Duration,
    /// How long a graceful shutdown waits for connections to drain
    /// before abandoning the stragglers. A peer that stops reading its
    /// replies can never drain; without this bound,
    /// [`WidxServer::shutdown`] (and `Drop`) would hang on it forever.
    pub drain_timeout: Duration,
    /// Poller backend override (`"epoll"` / `"poll"` / `"timeout"`).
    /// `None` picks the platform default, which the `WIDX_POLLER`
    /// environment variable can override — the switch the CI tiers use
    /// to run the loopback suites against every backend.
    pub poller_backend: Option<String>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_inflight_per_conn: 256,
            max_write_backlog: 4 << 20,
            idle_backoff: Duration::from_micros(100),
            drain_timeout: Duration::from_secs(5),
            poller_backend: None,
        }
    }
}

impl NetConfig {
    /// Floor for [`idle_backoff`](NetConfig::idle_backoff): a zero wait
    /// cap would make every idle `poller.wait` return immediately — the
    /// hot spin the poller exists to eliminate.
    pub const MIN_IDLE_BACKOFF: Duration = Duration::from_micros(10);

    /// Sets the per-connection in-flight request cap.
    #[must_use]
    pub fn with_max_inflight(mut self, max: usize) -> NetConfig {
        self.max_inflight_per_conn = max;
        self
    }

    /// Sets the per-connection write-backlog cap in bytes.
    #[must_use]
    pub fn with_max_write_backlog(mut self, bytes: usize) -> NetConfig {
        self.max_write_backlog = bytes;
        self
    }

    /// Sets the idle wait-timeout cap, clamped up to
    /// [`MIN_IDLE_BACKOFF`](NetConfig::MIN_IDLE_BACKOFF) (rejecting the
    /// zero that would turn the idle path into a hot spin).
    #[must_use]
    pub fn with_idle_backoff(mut self, backoff: Duration) -> NetConfig {
        self.idle_backoff = backoff.max(NetConfig::MIN_IDLE_BACKOFF);
        self
    }

    /// Sets the graceful-shutdown drain bound.
    #[must_use]
    pub fn with_drain_timeout(mut self, timeout: Duration) -> NetConfig {
        self.drain_timeout = timeout;
        self
    }

    /// Forces a poller backend (`"epoll"` / `"poll"` / `"timeout"`)
    /// instead of the platform default / `WIDX_POLLER` selection.
    #[must_use]
    pub fn with_poller_backend(mut self, backend: impl Into<String>) -> NetConfig {
        self.poller_backend = Some(backend.into());
        self
    }

    /// The configuration the event loop actually runs: public fields
    /// mean the builder clamps can be bypassed, so [`WidxServer::bind`]
    /// re-applies them here.
    fn normalized(mut self) -> NetConfig {
        self.idle_backoff = self.idle_backoff.max(NetConfig::MIN_IDLE_BACKOFF);
        self
    }
}

/// Shared atomic counters behind [`NetStats`] snapshots. The first five
/// are monotone counters; the last two are gauges the event loop
/// re-publishes every iteration, so a scrape sees values at most one
/// loop pass stale.
#[derive(Default)]
struct NetCounters {
    connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    busy_rejects: AtomicU64,
    decode_errors: AtomicU64,
    open_connections: AtomicU64,
    write_backlog_bytes: AtomicU64,
}

impl NetCounters {
    fn snapshot(&self) -> NetStats {
        NetStats {
            connections: self.connections.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            busy_rejects: self.busy_rejects.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            write_backlog_bytes: self.write_backlog_bytes.load(Ordering::Relaxed),
        }
    }
}

/// An in-flight chunked scan being written back to one connection.
struct OpenStream {
    id: u64,
    stream: PendingStream,
    /// Entries streamed so far (reported in the `RangeEnd` frame).
    entries: u64,
}

/// One client connection's state machine: buffered input awaiting
/// decode, in-flight requests awaiting completion, and buffered output
/// awaiting a writable socket.
struct Connection {
    stream: TcpStream,
    /// Unconsumed input bytes.
    rbuf: Vec<u8>,
    /// Reply bytes not yet written; `wpos` is the flush cursor.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Requests submitted to the service, awaiting completion. Scanned
    /// for readiness after a wakeup — completion order, not submission
    /// order, decides reply order.
    pending: Vec<(u64, PendingResponse)>,
    /// Chunked scans submitted to the service: chunks are written as
    /// the gather seam releases them, interleaved with other replies.
    streams: Vec<OpenStream>,
    /// Completion-wakeup counter: every pending request and stream on
    /// this connection carries a waker that bumps it (and rings the
    /// poller), so the reap pass can skip connections (and avoid
    /// scanning their whole pending lists) when nothing completed since
    /// the last look.
    wakes: Arc<AtomicU64>,
    /// The counter value the last reap pass observed.
    wakes_seen: u64,
    /// The poller the wakers ring — the edge source that makes a
    /// completion landing mid-`wait` cut the wait short instead of
    /// going unobserved until a timeout.
    poller: Arc<Poller>,
    /// Readiness reported by the last `wait`, consumed by `pump`.
    io_readable: bool,
    io_writable: bool,
    /// The `(readable, writable)` interest currently registered with
    /// the poller; `(false, false)` is the *parked* state (registered
    /// but never reported — `Event::none`).
    interest: (bool, bool),
    /// A reap pass stopped early on write backlog: ready work may
    /// remain without a fresh wake, so reap again once room opens.
    reap_stalled: bool,
    /// Set on peer EOF, server shutdown, or lost framing: no more reads.
    closed_for_reads: bool,
    /// Set on an unrecoverable socket error: drop the connection now.
    dead: bool,
    /// The service's stage histograms — this connection records the
    /// `reply_write` stage (encode-to-flushed time) into them.
    stages: Arc<StageTimes>,
    /// Total bytes ever flushed on this socket (the coordinate system
    /// for `wmarks`, immune to `wbuf` being cleared and reused).
    flushed_total: u64,
    /// Reply-write marks: `(offset, encoded_at)` pairs meaning "the
    /// frame encoded at `encoded_at` is fully on the socket once
    /// `flushed_total` reaches `offset`". Popped in flush order —
    /// offsets are pushed non-decreasing, so the front is always the
    /// next to complete.
    wmarks: VecDeque<(u64, Instant)>,
}

/// Cap on queued reply-write marks per connection: past this, new
/// frames simply go unmeasured (the histogram is a sample, not a
/// ledger) rather than letting a slow reader grow the queue without
/// bound.
const MAX_WMARKS: usize = 1024;

impl Connection {
    fn new(stream: TcpStream, poller: Arc<Poller>, stages: Arc<StageTimes>) -> Connection {
        Connection {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: Vec::new(),
            streams: Vec::new(),
            wakes: Arc::new(AtomicU64::new(0)),
            wakes_seen: 0,
            poller,
            io_readable: false,
            io_writable: false,
            interest: (true, false),
            reap_stalled: false,
            closed_for_reads: false,
            dead: false,
            stages,
            flushed_total: 0,
            wmarks: VecDeque::new(),
        }
    }

    /// Records a reply-write mark for the frame(s) just encoded: the
    /// stage completes when every byte currently buffered has flushed.
    fn mark_reply_written(&mut self) {
        if self.wmarks.len() < MAX_WMARKS {
            self.wmarks.push_back((
                self.flushed_total + self.write_backlog() as u64,
                Instant::now(),
            ));
        }
    }

    fn write_backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// In-flight work counted against the per-connection window.
    fn inflight(&self) -> usize {
        self.pending.len() + self.streams.len()
    }

    /// Whether anything on this connection is still waiting to happen
    /// without a socket edge to announce it — the loop tightens its
    /// wait cap while any connection says yes.
    fn has_pending_work(&self) -> bool {
        !self.pending.is_empty()
            || !self.streams.is_empty()
            || self.reap_stalled
            || self.write_backlog() > 0
    }

    /// The completion wakeup installed on every submitted request and
    /// stream: bumps this connection's counter (so the reap pass knows
    /// *which* connection to scan) and rings the poller's wake handle
    /// (so a blocked `wait` learns *that* there is something to scan —
    /// immediately, even if the completion lands in the instant before
    /// the loop blocks).
    fn waker(&self) -> impl Fn() + Send + Sync + 'static {
        let wakes = Arc::clone(&self.wakes);
        let poller = Arc::clone(&self.poller);
        move || {
            wakes.fetch_add(1, Ordering::Release);
            let _ = poller.notify();
        }
    }

    /// All accepted work answered and flushed — nothing left to drain.
    fn drained(&self) -> bool {
        self.pending.is_empty() && self.streams.is_empty() && self.write_backlog() == 0
    }

    /// Whether the connection should be dropped from the loop.
    fn finished(&self) -> bool {
        self.dead || (self.closed_for_reads && self.drained())
    }

    /// Reads whatever the socket has ready. Returns true on progress.
    fn fill(&mut self, config: &NetConfig) -> bool {
        if self.closed_for_reads || self.write_backlog() > config.max_write_backlog {
            return false;
        }
        let mut progress = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer half-closed: serve what we already have, then
                    // let `finished` reap the connection once drained.
                    self.closed_for_reads = true;
                    return true;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return progress;
                }
            }
        }
    }

    /// Decodes every complete frame buffered so far and submits it (or
    /// replies with an error frame). Returns true on progress.
    fn decode_and_submit(
        &mut self,
        service: &ProbeService,
        config: &NetConfig,
        counters: &NetCounters,
    ) -> bool {
        let mut consumed_total = 0usize;
        loop {
            match wire::decode_request(&self.rbuf[consumed_total..]) {
                Ok(Decoded::Incomplete) => break,
                Ok(Decoded::Frame {
                    consumed,
                    id,
                    value,
                }) => {
                    consumed_total += consumed;
                    counters.frames_in.fetch_add(1, Ordering::Relaxed);
                    if matches!(value, WireRequest::Stats) {
                        // Answered inline from the event loop, ahead of
                        // the in-flight cap: a scrape must not wait
                        // behind the shard queues (or the pipelining
                        // window) it is there to observe, and it never
                        // occupies a window slot.
                        let stats = service.live_stats().with_net(counters.snapshot());
                        wire::encode_stats_reply(&mut self.wbuf, id, &stats.to_json());
                        counters.frames_out.fetch_add(1, Ordering::Relaxed);
                        self.mark_reply_written();
                        continue;
                    }
                    if self.inflight() >= config.max_inflight_per_conn {
                        counters.busy_rejects.fetch_add(1, Ordering::Relaxed);
                        self.reply_error(
                            id,
                            &ErrorReply::new(ErrorCode::Busy, "connection in-flight cap"),
                            counters,
                        );
                        continue;
                    }
                    let submitted = match value {
                        WireRequest::Plain(request) => service.try_submit(request).map(|pending| {
                            pending.set_waker(self.waker());
                            self.pending.push((id, pending));
                        }),
                        WireRequest::Stream {
                            lo,
                            hi,
                            limit,
                            desc,
                        } => service.try_range_stream(lo, hi, limit, desc).map(|stream| {
                            stream.set_waker(self.waker());
                            self.streams.push(OpenStream {
                                id,
                                stream,
                                entries: 0,
                            });
                        }),
                        WireRequest::Stats => unreachable!("answered before the in-flight cap"),
                    };
                    match submitted {
                        Ok(()) => {}
                        Err(SubmitError::Busy) => {
                            counters.busy_rejects.fetch_add(1, Ordering::Relaxed);
                            self.reply_error(
                                id,
                                &ErrorReply::new(ErrorCode::Busy, "shard queue at capacity"),
                                counters,
                            );
                        }
                        Err(SubmitError::Stopped) => {
                            self.reply_error(
                                id,
                                &ErrorReply::new(ErrorCode::Stopped, "service is shutting down"),
                                counters,
                            );
                        }
                        Err(SubmitError::NoOrderedIndex) => {
                            self.reply_error(
                                id,
                                &ErrorReply::new(
                                    ErrorCode::NoOrderedIndex,
                                    "no ordered tier for range scans",
                                ),
                                counters,
                            );
                        }
                    }
                }
                Ok(Decoded::Corrupt {
                    consumed,
                    id,
                    error,
                }) => {
                    consumed_total += consumed;
                    counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                    let code = match error {
                        wire::DecodeError::Version(_) | wire::DecodeError::Opcode(_) => {
                            ErrorCode::Unsupported
                        }
                        _ => ErrorCode::Malformed,
                    };
                    self.reply_error(id, &ErrorReply::new(code, error.to_string()), counters);
                }
                Err(frame_error) => {
                    // Framing lost: answer once (on the reserved
                    // connection-level id — id 0 is a real request id),
                    // then close after the flush; nothing further on
                    // this socket can be trusted to be frame-aligned.
                    counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.reply_error(
                        wire::CONNECTION_ERROR_ID,
                        &ErrorReply::new(ErrorCode::Malformed, frame_error.to_string()),
                        counters,
                    );
                    self.rbuf.clear();
                    consumed_total = 0;
                    self.closed_for_reads = true;
                    break;
                }
            }
        }
        if consumed_total > 0 {
            self.rbuf.drain(..consumed_total);
            true
        } else {
            false
        }
    }

    fn reply_error(&mut self, id: u64, error: &ErrorReply, counters: &NetCounters) {
        wire::encode_error(&mut self.wbuf, id, error);
        counters.frames_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Writes completed responses and released stream chunks into the
    /// output buffer, in completion order. Returns true on progress.
    ///
    /// The scan is gated on the connection's wakeup counter: workers
    /// bump it (through the `ResponseState` waker hook) whenever a
    /// request completes or a chunk becomes consumable, so a pass over
    /// a quiet connection is one atomic load instead of a walk of its
    /// whole pending list.
    fn reap_completions(&mut self, config: &NetConfig, counters: &NetCounters) -> bool {
        let wakes = self.wakes.load(Ordering::Acquire);
        if wakes == self.wakes_seen && !self.reap_stalled {
            return false;
        }
        // Observe the counter *before* scanning: a wake that lands
        // mid-scan leaves it ahead of `wakes_seen`, forcing a rescan
        // next pass rather than being lost.
        self.wakes_seen = wakes;
        self.reap_stalled = false;
        let mut progress = false;
        let mut i = 0;
        while i < self.pending.len() {
            // Pace encoding by the write backlog: a completed reply the
            // peer has no room for stays in `pending` until the buffer
            // flushes. Without this, a non-reading peer could turn its
            // whole in-flight window of large replies into buffered
            // bytes at once — the unbounded buffering this server
            // promises not to do.
            if self.write_backlog() >= config.max_write_backlog {
                self.reap_stalled = true;
                break;
            }
            if self.pending[i].1.is_ready() {
                let (id, pending) = self.pending.swap_remove(i);
                // `wait` cannot block: readiness was just observed.
                let response = pending.wait();
                if wire::response_fits(&response) {
                    wire::encode_response(&mut self.wbuf, id, &response);
                    counters.frames_out.fetch_add(1, Ordering::Relaxed);
                    self.mark_reply_written();
                } else {
                    // A legal request (e.g. an unbounded RangeScan) can
                    // complete with more entries than any frame may
                    // carry — answer TooLarge rather than letting the
                    // encoder's cap assert kill the event loop.
                    self.reply_error(
                        id,
                        &ErrorReply::new(
                            ErrorCode::TooLarge,
                            "reply exceeds the maximum frame size; narrow the request",
                        ),
                        counters,
                    );
                }
                progress = true;
            } else {
                i += 1;
            }
        }
        progress |= self.reap_streams(config, counters);
        progress
    }

    /// Writes every consumable chunk of every open stream (then the
    /// `RangeEnd` marker), under the same write-backlog pacing as
    /// buffered replies — a slow reader's chunks wait in the gather
    /// seam instead of ballooning the connection buffer (the seam's
    /// footprint is bounded by the scan's own size, as a buffered
    /// reply's would be; the shards scan to completion either way).
    /// Returns true on progress.
    fn reap_streams(&mut self, config: &NetConfig, counters: &NetCounters) -> bool {
        let mut progress = false;
        let mut i = 0;
        while i < self.streams.len() {
            let mut finished = false;
            loop {
                if self.write_backlog() >= config.max_write_backlog {
                    self.reap_stalled = true;
                    break;
                }
                let open = &mut self.streams[i];
                match open.stream.try_next() {
                    StreamPoll::Chunk(chunk) => {
                        // The serve tier caps chunks at `stream_chunk`
                        // entries; split defensively anyway so a huge
                        // configured chunk cannot trip the frame cap.
                        for piece in chunk.chunks(wire::MAX_CHUNK_ENTRIES) {
                            wire::encode_range_chunk(&mut self.wbuf, open.id, piece);
                            counters.frames_out.fetch_add(1, Ordering::Relaxed);
                        }
                        open.entries += chunk.len() as u64;
                        progress = true;
                    }
                    StreamPoll::End => {
                        wire::encode_range_end(&mut self.wbuf, open.id, open.entries);
                        counters.frames_out.fetch_add(1, Ordering::Relaxed);
                        finished = true;
                        progress = true;
                        break;
                    }
                    StreamPoll::Pending => break,
                }
            }
            if finished {
                // The stream's reply-write stage spans its final frame:
                // one mark at the `RangeEnd`, not one per chunk.
                self.mark_reply_written();
                self.streams.swap_remove(i);
            } else {
                i += 1;
            }
        }
        progress
    }

    /// Flushes as much buffered output as the socket accepts,
    /// completing reply-write marks as their bytes reach the socket.
    /// Returns true on progress.
    fn flush(&mut self) -> bool {
        let mut progress = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.wpos += n;
                    self.flushed_total += n as u64;
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        while let Some(&(offset, encoded_at)) = self.wmarks.front() {
            if offset > self.flushed_total {
                break;
            }
            self.stages.record(Stage::ReplyWrite, encoded_at.elapsed());
            self.wmarks.pop_front();
        }
        if self.wpos > 0 && self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        progress
    }

    /// One pass over whatever the last `wait` reported (plus completion
    /// wakes): read if the socket was readable, decode+submit, reap
    /// completions, flush. Returns true on progress.
    fn pump(&mut self, service: &ProbeService, config: &NetConfig, counters: &NetCounters) -> bool {
        let read_ready = std::mem::take(&mut self.io_readable);
        let write_ready = std::mem::take(&mut self.io_writable);
        let mut progress = false;
        if read_ready {
            progress |= self.fill(config);
            progress |= self.decode_and_submit(service, config, counters);
        }
        progress |= self.reap_completions(config, counters);
        if write_ready || self.write_backlog() > 0 {
            progress |= self.flush();
        }
        progress
    }

    /// The `(readable, writable)` interest this connection should hold
    /// right now: reads park under EOF or a write backlog over the cap;
    /// write interest exists only while a backlog does.
    fn desired_interest(&self, config: &NetConfig) -> (bool, bool) {
        (
            !self.closed_for_reads && self.write_backlog() <= config.max_write_backlog,
            self.write_backlog() > 0,
        )
    }

    /// Reconciles the poller registration with the desired interest.
    /// `(false, false)` parks the registration (`Event::none`) — the
    /// backends keep parked sources out of their readiness sweeps, so a
    /// hung-up peer cannot storm the loop with HUP events.
    fn update_interest(&mut self, key: usize, config: &NetConfig) {
        let desired = self.desired_interest(config);
        if desired == self.interest {
            return;
        }
        let event = Event {
            key,
            readable: desired.0,
            writable: desired.1,
        };
        if self.poller.modify(&self.stream, event).is_ok() {
            self.interest = desired;
        } else {
            // Registration failure starves this connection of edges —
            // kill it rather than leaving it silently stuck.
            self.dead = true;
        }
    }

    /// Drops the connection's poller registration.
    fn deregister(&mut self) {
        let _ = self.poller.delete(&self.stream);
    }
}

/// A running socket front-end over a [`ProbeService`]: one event-loop
/// thread serving every connection.
///
/// # Shutdown
///
/// [`shutdown`](WidxServer::shutdown) stops accepting, stops *reading*,
/// and drains: every request frame already received is still decoded,
/// submitted, answered, and flushed before the loop exits — no
/// accepted request is dropped. The underlying [`ProbeService`] is
/// caller-owned and keeps running; in-flight frames drain through its
/// own poison-pill shutdown if the caller stops it afterwards (or
/// concurrently — accepted submissions complete either way).
pub struct WidxServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    poller: Arc<Poller>,
    thread: Option<JoinHandle<()>>,
}

impl WidxServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port),
    /// builds the readiness poller (honouring
    /// [`NetConfig::poller_backend`] / `WIDX_POLLER`), registers the
    /// listener, and starts the event loop over `service`.
    ///
    /// # Errors
    ///
    /// Any socket-level failure to bind or configure the listener, or
    /// failure to set up the poller backend.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<ProbeService>,
        config: NetConfig,
    ) -> std::io::Result<WidxServer> {
        let config = config.normalized();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Arc::new(match &config.poller_backend {
            Some(backend) => Poller::with_backend(backend)?,
            None => Poller::new()?,
        });
        poller.add(&listener, Event::readable(LISTENER_KEY))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::default());
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let poller = Arc::clone(&poller);
            std::thread::Builder::new()
                .name("widx-net".to_string())
                .spawn(move || {
                    run_event_loop(&listener, &poller, &service, &config, &shutdown, &counters);
                })
                .expect("spawn net event loop")
        };
        Ok(WidxServer {
            addr,
            shutdown,
            counters,
            poller,
            thread: Some(thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the network-tier counters; attach the final
    /// one to the service's stats with
    /// [`ServiceStats::with_net`](widx_serve::ServiceStats::with_net).
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.counters.snapshot()
    }

    /// Graceful shutdown: stop accepting and reading, drain every
    /// accepted frame through to a flushed reply, then join the event
    /// loop. Returns the final counter snapshot.
    #[must_use]
    pub fn shutdown(mut self) -> NetStats {
        self.begin_shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        self.counters.snapshot()
    }

    /// Publishes the shutdown flag, then rings the wake handle so a
    /// loop blocked in `poller.wait` observes it now rather than at the
    /// wait cap — the same no-lost-wakeup contract completions get.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.poller.notify();
    }
}

impl Drop for WidxServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Accepts every pending connection, registering each with the poller.
/// Returns true on progress.
fn accept_burst(
    listener: &TcpListener,
    poller: &Arc<Poller>,
    stages: &Arc<StageTimes>,
    slots: &mut Vec<Option<Connection>>,
    counters: &NetCounters,
) -> bool {
    let mut progress = false;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let slot = match slots.iter().position(Option::is_none) {
                    Some(free) => free,
                    None => {
                        slots.push(None);
                        slots.len() - 1
                    }
                };
                let conn = Connection::new(stream, Arc::clone(poller), Arc::clone(stages));
                if poller
                    .add(&conn.stream, Event::readable(slot + CONN_KEY_BASE))
                    .is_err()
                {
                    // No registration, no edges: refuse the connection
                    // rather than strand it.
                    continue;
                }
                counters.connections.fetch_add(1, Ordering::Relaxed);
                slots[slot] = Some(conn);
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    progress
}

fn run_event_loop(
    listener: &TcpListener,
    poller: &Arc<Poller>,
    service: &ProbeService,
    config: &NetConfig,
    shutdown: &AtomicBool,
    counters: &NetCounters,
) {
    let stages = service.stage_times();
    let mut slots: Vec<Option<Connection>> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut draining: Option<std::time::Instant> = None;
    let mut accepting = true;
    // First iteration polls with a zero timeout: service the state that
    // existed before the loop started, then settle into blocking waits.
    let mut progress = true;
    loop {
        // The wait is the old idle sleep, inverted: instead of sleeping
        // blind and hoping to notice work afterwards, block *in* the
        // readiness source. Timeouts are insurance, not signal — tight
        // (idle_backoff) while work is in flight, long when fully quiet,
        // zero when the last pass made progress (drain the backlog of
        // edges without sleeping).
        let timeout = if progress {
            Duration::ZERO
        } else {
            let quiet = !slots.iter().flatten().any(Connection::has_pending_work);
            // An assume-ready backend (no real readiness source) only
            // notices socket activity when the wait expires: hold it at
            // polling cadence even when quiet.
            let mut cap = if quiet && poller.has_readiness_source() {
                QUIET_WAIT_CAP
            } else {
                config.idle_backoff
            };
            if let Some(since) = draining {
                cap = cap.min(config.drain_timeout.saturating_sub(since.elapsed()));
            }
            cap
        };
        if poller.wait(&mut events, Some(timeout)).is_err() {
            // A broken poller must not hot-spin the loop; degrade to
            // the old polling cadence for this pass.
            events.clear();
            std::thread::sleep(config.idle_backoff);
        }
        progress = false;
        if draining.is_none() && shutdown.load(Ordering::Relaxed) {
            // Shutdown begins: stop accepting and reading. Frames whose
            // bytes already arrived still decode, submit, and answer
            // below — drain, then halt, like the service itself.
            draining = Some(std::time::Instant::now());
            if accepting {
                let _ = poller.delete(listener);
                accepting = false;
            }
            for conn in slots.iter_mut().flatten() {
                conn.closed_for_reads = true;
            }
            progress = true;
        }
        let mut accept_ready = false;
        for event in &events {
            if event.key == LISTENER_KEY {
                accept_ready = true;
                continue;
            }
            if let Some(Some(conn)) = slots.get_mut(event.key - CONN_KEY_BASE) {
                conn.io_readable |= event.readable;
                conn.io_writable |= event.writable;
            }
        }
        if accept_ready && accepting {
            progress |= accept_burst(listener, poller, &stages, &mut slots, counters);
        }
        // Pump every live connection: ones with socket readiness do IO,
        // ones whose waker fired reap completions, quiet ones cost one
        // atomic load. Then reconcile each connection's poller interest
        // with what this pass left behind (write interest only while a
        // backlog exists, reads parked under backpressure).
        for (index, slot) in slots.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            progress |= conn.pump(service, config, counters);
            if conn.finished() {
                conn.deregister();
                *slot = None;
            } else {
                conn.update_interest(index + CONN_KEY_BASE, config);
            }
        }
        // Re-publish the loop's gauges: how many connections are live
        // and how many reply bytes sit unflushed across all of them. A
        // scrape (the Stats opcode, or `WidxServer::stats`) sees values
        // at most one loop pass stale.
        let mut open = 0u64;
        let mut backlog = 0u64;
        for conn in slots.iter().flatten() {
            open += 1;
            backlog += conn.write_backlog() as u64;
        }
        counters.open_connections.store(open, Ordering::Relaxed);
        counters
            .write_backlog_bytes
            .store(backlog, Ordering::Relaxed);
        if let Some(since) = draining {
            if slots.iter().all(Option::is_none) {
                return;
            }
            if since.elapsed() > config.drain_timeout {
                // A peer that will not read its replies can never
                // drain; abandoning it bounds shutdown (and `Drop`).
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_backoff_zero_is_clamped_not_honoured() {
        // Zero would make every idle `poller.wait` return immediately —
        // a hot spin. The builder clamps...
        let config = NetConfig::default().with_idle_backoff(Duration::ZERO);
        assert_eq!(config.idle_backoff, NetConfig::MIN_IDLE_BACKOFF);
        // ...and `normalized` (what `bind` runs) re-clamps a value
        // poked directly through the public field.
        let config = NetConfig {
            idle_backoff: Duration::ZERO,
            ..NetConfig::default()
        };
        assert_eq!(
            config.normalized().idle_backoff,
            NetConfig::MIN_IDLE_BACKOFF
        );
        // Values above the floor pass through untouched.
        let config = NetConfig::default().with_idle_backoff(Duration::from_millis(2));
        assert_eq!(config.normalized().idle_backoff, Duration::from_millis(2));
    }

    #[test]
    fn poller_backend_override_is_carried() {
        let config = NetConfig::default().with_poller_backend("timeout");
        assert_eq!(config.poller_backend.as_deref(), Some("timeout"));
        assert!(NetConfig::default().poller_backend.is_none());
    }
}
