//! # widx-net — a wire protocol and socket front-end for the probe service
//!
//! `widx-serve` turned the paper's walker pool into a service; this
//! crate puts that service on the network, the deployment shape the
//! walkers paper presumes — index probes dominating an in-memory
//! serving tier that real clients hit over sockets:
//!
//! * [`wire`] — a compact length-prefixed binary protocol with explicit
//!   request ids, a versioned frame header, a typed error frame, and
//!   chunked streaming opcodes (`RangeChunk`/`RangeEnd`) for range
//!   scans whose replies should not wait for the slowest shard (`std`
//!   only, consistent with the repo's `compat/` philosophy; the format
//!   is specified in `docs/wire-format.md`);
//! * [`WidxServer`] — a **multi-reactor** event-loop server over `std`
//!   non-blocking sockets driven by the `compat/` readiness poller
//!   (epoll on Linux, `poll(2)` elsewhere; see `docs/poller.md`): an
//!   acceptor thread pins connections round-robin onto
//!   [`NetConfig::reactors`] event-loop threads, each owning its own
//!   poller, connection slab, and event buffer (see
//!   `docs/net-reactors.md`). Each reactor decodes pipelined frames,
//!   submits into the [`ProbeService`](widx_serve::ProbeService)
//!   batching queues through the non-blocking
//!   [`try_submit`](widx_serve::ProbeService::try_submit) surface, and
//!   writes replies back as they complete — possibly **out of order**,
//!   which request ids make safe — batched into vectored writes from
//!   per-connection recycled buffers. Completions ring the *owning
//!   reactor's* wake handle, so the idle path blocks instead of
//!   sleeping blind (no lost wakeups, near-zero idle CPU). Queue
//!   backpressure comes back as a typed `Busy` error frame instead of
//!   unbounded buffering;
//! * [`WidxClient`] — a blocking client with a pipelining `send`/`recv`
//!   split (plus synchronous conveniences, an optional corked batch
//!   mode ([`set_corked`](WidxClient::set_corked)), and the
//!   chunk-streaming [`range_stream`](WidxClient::range_stream)
//!   iterator), used by the loopback parity tests, the
//!   `net_server`/`stream_scan` examples, and the
//!   `net_throughput`/`stream_throughput` sweeps.
//!
//! Pipelining is what connects the network layer back to the paper:
//! dozens of independent requests in flight on each connection are
//! exactly the inter-key parallelism the service's per-shard batchers
//! mine to keep every walker slot busy. A strictly synchronous
//! front-end would starve the pool; request ids + out-of-order replies
//! let one connection carry the concurrency the dispatcher needs.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use widx_net::{NetConfig, WidxClient, WidxServer};
//! use widx_serve::{ProbeService, ServeConfig};
//! use widx_db::hash::HashRecipe;
//!
//! let service = Arc::new(ProbeService::build_with_range(
//!     HashRecipe::robust64(),
//!     (0..1000u64).map(|k| (k, k + 1)),
//!     &ServeConfig::default().with_shards(2),
//! ));
//! let server = WidxServer::bind(
//!     "127.0.0.1:0",
//!     Arc::clone(&service),
//!     NetConfig::default(),
//! ).unwrap();
//!
//! let mut client = WidxClient::connect(server.local_addr()).unwrap();
//! assert_eq!(client.lookup(41).unwrap(), vec![42]);
//! assert_eq!(
//!     client.range_scan(10, 12, usize::MAX).unwrap(),
//!     vec![(10, 11), (11, 12), (12, 13)],
//! );
//!
//! // The same scan as a chunked stream, descending:
//! let streamed = client
//!     .range_stream(10, 12, usize::MAX, true)
//!     .unwrap()
//!     .collect_remaining()
//!     .unwrap();
//! assert_eq!(streamed, vec![(12, 13), (11, 12), (10, 11)]);
//!
//! let net = server.shutdown();
//! assert!(net.frames_in >= 2 && net.frames_out >= 2);
//! let stats = Arc::try_unwrap(service).ok().unwrap().shutdown().with_net(net);
//! assert_eq!(stats.net.connections, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
mod server;
pub mod wire;

pub use client::{ClientError, RangeStream, WidxClient};
pub use server::{NetConfig, WidxServer};
pub use wire::{DecodeError, Decoded, ErrorCode, ErrorReply, FrameError, Reply, WireRequest};

// Re-exported so client code can build requests and match responses
// without naming the serving crate.
pub use widx_serve::{Request, Response};
