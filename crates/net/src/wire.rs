//! The widx wire protocol: compact length-prefixed binary frames with
//! explicit request ids, a versioned header, and a typed error frame.
//!
//! Every frame — request or reply — shares one envelope (all integers
//! little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     body_len  (u32; bytes after this field, >= 12)
//! 4       1     version   (WIRE_VERSION)
//! 5       1     opcode
//! 6       2     reserved  (must be zero)
//! 8       8     request id (echoed verbatim in the reply)
//! 16      n     payload   (body_len - 12 bytes, opcode-specific)
//! ```
//!
//! The 4-byte length prefix and 12-byte header are **invariant across
//! protocol versions** — that is the compat contract that lets a peer
//! skip a frame it cannot understand (unknown version or opcode) while
//! keeping the connection, replying with an [`ErrorReply`] instead of
//! hanging up. Only a violated envelope (a declared body shorter than
//! the header, or longer than [`MAX_BODY_LEN`]) loses framing and
//! forces the connection closed.
//!
//! Request ids are chosen by the client and echoed by the server, which
//! may answer **out of order** — ids are what make pipelining safe.
//! The protocol attaches no meaning to them beyond the echo.
//!
//! See `docs/wire-format.md` for the full payload layouts.

use widx_serve::{Request, Response};

/// The protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;

/// Hard ceiling on a frame body (header + payload), giving decoders a
/// bound to distrust: a length above this cannot be resynchronized and
/// closes the connection.
pub const MAX_BODY_LEN: usize = 1 << 24;

/// Envelope bytes after the length prefix, before the payload.
const HEADER_LEN: usize = 12;

/// The request id carried by *connection-level* error frames — ones
/// that answer no particular request (lost framing). Reserved: clients
/// never reach it (ids count up from 0, and 2^64 sends on one
/// connection is out of reach), so it cannot collide with a real
/// in-flight request the way id 0 would.
pub const CONNECTION_ERROR_ID: u64 = u64::MAX;

/// Request opcodes (high bit clear).
const OP_LOOKUP: u8 = 0x01;
const OP_MULTI_LOOKUP: u8 = 0x02;
const OP_JOIN_PROBE: u8 = 0x03;
const OP_RANGE_SCAN: u8 = 0x04;
/// `RangeScan` with a flags byte (bit 0: descending). Encoders keep
/// emitting the flagless `0x04` for plain ascending scans, so a
/// pre-streaming peer only sees an unknown opcode when the new
/// capability is actually used.
const OP_RANGE_SCAN2: u8 = 0x05;
/// A chunked range scan: answered with zero or more `RangeChunk`
/// frames followed by one `RangeEnd` (or a single error frame).
const OP_RANGE_STREAM: u8 = 0x06;
/// A live-telemetry scrape (empty payload): answered immediately from
/// the event loop with one [`OP_R_STATS`] frame carrying a JSON
/// snapshot of the service's stats — no trip through the shard queues.
/// Like the streaming opcodes, this extends the opcode space without a
/// version bump: a pre-telemetry server answers `Unsupported` and the
/// connection survives.
const OP_STATS: u8 = 0x07;
/// A flight-recorder scrape (empty payload): answered immediately from
/// the event loop with one [`OP_R_TRACE`] frame carrying the recorder's
/// gauges plus its recent request traces as JSON. Rule-4 opcode
/// extension like [`OP_STATS`]: a pre-tracing server answers
/// `Unsupported` and the connection survives.
const OP_TRACE: u8 = 0x08;
/// A hardware-profiling scrape (empty payload): answered immediately
/// from the event loop with one [`OP_R_PROFILE`] frame carrying the
/// service's per-stage counter breakdown as JSON
/// (`ProbeService::profile_json`). Rule-4 opcode extension like
/// [`OP_STATS`]: a pre-profiling server answers `Unsupported` and the
/// connection survives.
const OP_PROFILE: u8 = 0x09;
/// Insert `(key, payload)` pairs (payload: pair list). Rule-4 opcode
/// extension like [`OP_STATS`]: a read-only peer answers `Unsupported`
/// and the connection survives. Answered with [`OP_R_INSERT`] carrying
/// one ack byte per pair, in request order.
const OP_INSERT: u8 = 0x0A;
/// Delete every entry under each key (payload: key list). Answered
/// with [`OP_R_DELETE`]; an ack byte is 1 when the key existed.
const OP_DELETE: u8 = 0x0B;
/// Update the payload under each key without inserting on miss
/// (payload: pair list). Answered with [`OP_R_UPDATE`]; an ack byte is
/// 1 when the key existed and was rewritten.
const OP_UPDATE: u8 = 0x0C;

/// Reply opcodes (high bit set) mirror their requests; `0xEE` is the
/// error frame.
const OP_R_LOOKUP: u8 = 0x81;
const OP_R_MULTI_LOOKUP: u8 = 0x82;
const OP_R_JOIN_PROBE: u8 = 0x83;
const OP_R_RANGE_SCAN: u8 = 0x84;
/// One key-ordered slice of a streaming scan's reply.
const OP_R_RANGE_CHUNK: u8 = 0x85;
/// End-of-stream marker carrying the total entry count.
const OP_R_RANGE_END: u8 = 0x86;
/// A stats snapshot: the payload is the remaining body, UTF-8 JSON.
const OP_R_STATS: u8 = 0x87;
/// A flight-recorder snapshot: the payload is the remaining body,
/// UTF-8 JSON (`FlightRecorder::to_json`).
const OP_R_TRACE: u8 = 0x88;
/// A profiling snapshot: the payload is the remaining body, UTF-8 JSON
/// (`ProbeService::profile_json`).
const OP_R_PROFILE: u8 = 0x89;
/// Per-key insert acks: `u32` count then one byte per submitted pair
/// (1 = applied), in request order.
const OP_R_INSERT: u8 = 0x8A;
/// Per-key delete acks: `u32` count then one byte per submitted key
/// (1 = the key existed and its entries were removed).
const OP_R_DELETE: u8 = 0x8B;
/// Per-key update acks: `u32` count then one byte per submitted pair
/// (1 = the key existed and its payload was rewritten; 0 = miss, no
/// insert happened).
const OP_R_UPDATE: u8 = 0x8C;
const OP_R_ERROR: u8 = 0xEE;

/// Scan-flag bits carried by [`OP_RANGE_SCAN2`] / [`OP_RANGE_STREAM`]
/// payloads. Undefined bits must be zero (the frame is `Malformed`
/// otherwise — they are reserved the same way header bits are).
const SCAN_FLAG_DESC: u8 = 0x01;

/// The most `(key, payload)` entries one `RangeChunk` (or buffered
/// `RangeScan` reply) frame can carry under [`MAX_BODY_LEN`]. Servers
/// split larger chunks; the serve tier's `stream_chunk` sits far below
/// this in practice.
pub const MAX_CHUNK_ENTRIES: usize = (MAX_BODY_LEN - HEADER_LEN - 4) / 16;

/// Which mutation opcode a request or reply frame travels under. A
/// `Response::Write` carries only the acks — not the verb — so the
/// server remembers the request's kind and passes it back to
/// [`encode_write_reply`] to pick the mirrored reply opcode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteKind {
    /// [`OP_INSERT`] / [`OP_R_INSERT`].
    Insert,
    /// [`OP_DELETE`] / [`OP_R_DELETE`].
    Delete,
    /// [`OP_UPDATE`] / [`OP_R_UPDATE`].
    Update,
}

impl WriteKind {
    /// The kind of a write request, `None` for read requests. Servers
    /// call this at decode time so the completed `Response::Write` can
    /// be answered under the mirrored opcode.
    #[must_use]
    pub fn of(request: &Request) -> Option<WriteKind> {
        match request {
            Request::Insert { .. } => Some(WriteKind::Insert),
            Request::Delete { .. } => Some(WriteKind::Delete),
            Request::Update { .. } => Some(WriteKind::Update),
            _ => None,
        }
    }

    fn reply_opcode(self) -> u8 {
        match self {
            WriteKind::Insert => OP_R_INSERT,
            WriteKind::Delete => OP_R_DELETE,
            WriteKind::Update => OP_R_UPDATE,
        }
    }
}

/// Machine-readable reason carried by an error frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Backpressure: a shard queue or the connection's in-flight window
    /// is at capacity. Retry later.
    Busy,
    /// The service has begun shutdown; no new work is accepted.
    Stopped,
    /// A `RangeScan` reached a service built without an ordered tier.
    NoOrderedIndex,
    /// The request frame could not be decoded (bad payload shape or
    /// reserved bits set).
    Malformed,
    /// Unknown protocol version or opcode — the frame was skipped.
    Unsupported,
    /// The request completed but its reply would exceed
    /// [`MAX_BODY_LEN`] — narrow the request (e.g. a smaller
    /// `RangeScan` limit) and retry.
    TooLarge,
    /// A code this build does not know (from a newer peer). Carried
    /// through verbatim so forward-compat peers can still classify.
    Other(u8),
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Busy => 1,
            ErrorCode::Stopped => 2,
            ErrorCode::NoOrderedIndex => 3,
            ErrorCode::Malformed => 4,
            ErrorCode::Unsupported => 5,
            ErrorCode::TooLarge => 6,
            ErrorCode::Other(code) => code,
        }
    }

    fn from_u8(code: u8) -> ErrorCode {
        match code {
            1 => ErrorCode::Busy,
            2 => ErrorCode::Stopped,
            3 => ErrorCode::NoOrderedIndex,
            4 => ErrorCode::Malformed,
            5 => ErrorCode::Unsupported,
            6 => ErrorCode::TooLarge,
            other => ErrorCode::Other(other),
        }
    }
}

/// A decoded request frame, as the server sees it: either a plain
/// request answered with one buffered reply frame, or a chunked range
/// scan whose reply is a *sequence* of frames (`RangeChunk*` then
/// `RangeEnd`, or one error frame).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireRequest {
    /// One of the buffered request kinds.
    Plain(Request),
    /// A chunked range scan ([`OP_RANGE_STREAM`]).
    Stream {
        /// Inclusive lower key bound.
        lo: u64,
        /// Inclusive upper key bound.
        hi: u64,
        /// Maximum entries streamed (`usize::MAX` for unbounded).
        limit: usize,
        /// Descending key order when set.
        desc: bool,
    },
    /// A live-telemetry scrape ([`OP_STATS`]): answered from the event
    /// loop itself, never submitted to a shard queue.
    Stats,
    /// A flight-recorder scrape ([`OP_TRACE`]): answered from the event
    /// loop itself, never submitted to a shard queue.
    Trace,
    /// A hardware-profiling scrape ([`OP_PROFILE`]): answered from the
    /// event loop itself, never submitted to a shard queue.
    Profile,
}

/// A decoded reply frame, as the client sees it: a buffered response,
/// or one piece of a chunked stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// A complete buffered response.
    Response(Response),
    /// One key-ordered slice of a streaming scan; slices concatenate,
    /// in arrival order, to exactly the buffered `RangeScan` reply.
    RangeChunk(Vec<(u64, u64)>),
    /// End of a stream: `entries` is the total streamed across every
    /// chunk (a client-side integrity check).
    RangeEnd {
        /// Total `(key, payload)` entries the stream carried.
        entries: u64,
    },
    /// A live-telemetry snapshot answering [`OP_STATS`].
    Stats {
        /// The stats document, as the server rendered it
        /// (`ServiceStats::to_json`).
        json: String,
    },
    /// A flight-recorder snapshot answering [`OP_TRACE`].
    Trace {
        /// The recorder document — gauges plus recent traces, newest
        /// first (`FlightRecorder::to_json`).
        json: String,
    },
    /// A profiling snapshot answering [`OP_PROFILE`].
    Profile {
        /// The profile document — backend, per-stage counters, and
        /// derived ratios (`ProbeService::profile_json`).
        json: String,
    },
}

/// The error frame's body: a code plus a short human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorReply {
    /// Machine-readable reason.
    pub code: ErrorCode,
    /// Diagnostic text (truncated to `u16::MAX` bytes on the wire).
    pub message: String,
}

impl ErrorReply {
    /// Convenience constructor.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ErrorReply {
        ErrorReply {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ErrorReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// Why a well-framed body failed to decode. All of these are
/// *resynchronizable*: the envelope told us where the frame ends, so
/// the peer can skip it and keep the connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown protocol version byte.
    Version(u8),
    /// Unknown (or wrong-direction) opcode for this decoder.
    Opcode(u8),
    /// Reserved header bits were set (a version-1 frame must zero them).
    Reserved(u16),
    /// The payload does not match the opcode's layout.
    Payload(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Version(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::Opcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::Reserved(bits) => write!(f, "reserved header bits set: {bits:#06x}"),
            DecodeError::Payload(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

/// A violated envelope: framing is lost and the connection must close.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Declared body length exceeds [`MAX_BODY_LEN`].
    Oversize(usize),
    /// Declared body length is shorter than the fixed header.
    Runt(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversize(len) => write!(f, "frame body of {len} bytes exceeds cap"),
            FrameError::Runt(len) => write!(f, "frame body of {len} bytes is under the header"),
        }
    }
}

/// The outcome of an incremental decode over a byte buffer.
#[derive(Debug)]
pub enum Decoded<T> {
    /// The buffer does not yet hold a complete frame — read more.
    Incomplete,
    /// A good frame: consume `consumed` bytes.
    Frame {
        /// Bytes the frame occupied (length prefix included).
        consumed: usize,
        /// The request id the peer chose.
        id: u64,
        /// The decoded body.
        value: T,
    },
    /// A well-framed but undecodable body: consume `consumed` bytes,
    /// report `error` (the connection survives).
    Corrupt {
        /// Bytes to skip (the whole frame).
        consumed: usize,
        /// The request id, so the error reply can still be matched.
        id: u64,
        /// What was wrong with the body.
        error: DecodeError,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends one frame: writes the envelope, lets `payload` append the
/// body, then backpatches the length prefix.
fn frame(buf: &mut Vec<u8>, opcode: u8, id: u64, payload: impl FnOnce(&mut Vec<u8>)) {
    let len_at = buf.len();
    put_u32(buf, 0); // placeholder
    buf.push(WIRE_VERSION);
    buf.push(opcode);
    put_u16(buf, 0); // reserved
    put_u64(buf, id);
    payload(buf);
    let body_len = buf.len() - len_at - 4;
    assert!(body_len <= MAX_BODY_LEN, "frame body exceeds MAX_BODY_LEN");
    let body_len = u32::try_from(body_len).expect("body length fits u32");
    buf[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
}

fn put_keys(buf: &mut Vec<u8>, keys: &[u64]) {
    put_u32(buf, u32::try_from(keys.len()).expect("key count fits u32"));
    for key in keys {
        put_u64(buf, *key);
    }
}

fn put_pairs(buf: &mut Vec<u8>, pairs: &[(u64, u64)]) {
    put_u32(
        buf,
        u32::try_from(pairs.len()).expect("pair count fits u32"),
    );
    // One reservation and one 16-byte append per pair: `put_pairs` is
    // the body of every chunk/range reply, so this is the hot serialize
    // loop of the streaming path.
    buf.reserve(pairs.len() * 16);
    for (a, b) in pairs {
        let mut entry = [0u8; 16];
        entry[..8].copy_from_slice(&a.to_le_bytes());
        entry[8..].copy_from_slice(&b.to_le_bytes());
        buf.extend_from_slice(&entry);
    }
}

/// `usize::MAX` (the unbounded-limit sentinel) travels as `u64::MAX`.
fn limit_to_wire(limit: usize) -> u64 {
    if limit == usize::MAX {
        u64::MAX
    } else {
        limit as u64
    }
}

fn limit_from_wire(limit: u64) -> usize {
    usize::try_from(limit).unwrap_or(usize::MAX)
}

/// Encodes one request frame onto `buf`. Ascending range scans keep
/// the version-1 flagless `0x04` layout; descending ones use the
/// flag-bearing `0x05` a pre-streaming peer answers `Unsupported`.
pub fn encode_request(buf: &mut Vec<u8>, id: u64, request: &Request) {
    match request {
        Request::Lookup { key } => frame(buf, OP_LOOKUP, id, |b| put_u64(b, *key)),
        Request::MultiLookup { keys } => frame(buf, OP_MULTI_LOOKUP, id, |b| put_keys(b, keys)),
        Request::JoinProbe { keys } => frame(buf, OP_JOIN_PROBE, id, |b| put_keys(b, keys)),
        Request::RangeScan {
            lo,
            hi,
            limit,
            desc: false,
        } => frame(buf, OP_RANGE_SCAN, id, |b| {
            put_u64(b, *lo);
            put_u64(b, *hi);
            put_u64(b, limit_to_wire(*limit));
        }),
        Request::RangeScan {
            lo,
            hi,
            limit,
            desc: true,
        } => frame(buf, OP_RANGE_SCAN2, id, |b| {
            put_u64(b, *lo);
            put_u64(b, *hi);
            put_u64(b, limit_to_wire(*limit));
            b.push(SCAN_FLAG_DESC);
        }),
        Request::Insert { pairs } => frame(buf, OP_INSERT, id, |b| put_pairs(b, pairs)),
        Request::Delete { keys } => frame(buf, OP_DELETE, id, |b| put_keys(b, keys)),
        Request::Update { pairs } => frame(buf, OP_UPDATE, id, |b| put_pairs(b, pairs)),
    }
}

/// Encodes one write-ack reply frame onto `buf`, under the reply
/// opcode mirroring `kind` — one ack byte per submitted key/pair, in
/// request order.
pub fn encode_write_reply(buf: &mut Vec<u8>, id: u64, kind: WriteKind, acks: &[bool]) {
    frame(buf, kind.reply_opcode(), id, |b| {
        put_u32(b, u32::try_from(acks.len()).expect("ack count fits u32"));
        b.extend(acks.iter().map(|ack| u8::from(*ack)));
    });
}

/// Encodes one chunked-scan request frame onto `buf` — the client side
/// of [`OP_RANGE_STREAM`].
pub fn encode_range_stream(buf: &mut Vec<u8>, id: u64, lo: u64, hi: u64, limit: usize, desc: bool) {
    frame(buf, OP_RANGE_STREAM, id, |b| {
        put_u64(b, lo);
        put_u64(b, hi);
        put_u64(b, limit_to_wire(limit));
        b.push(if desc { SCAN_FLAG_DESC } else { 0 });
    });
}

/// Encodes one stats-scrape request frame onto `buf` — the client side
/// of [`OP_STATS`]. The payload is empty; the reply carries the JSON.
pub fn encode_stats_request(buf: &mut Vec<u8>, id: u64) {
    frame(buf, OP_STATS, id, |_| {});
}

/// Encodes one stats-snapshot reply frame onto `buf`. The JSON is
/// truncated at the frame cap in the (practically unreachable) case a
/// snapshot outgrows it — a scrape must never kill the event loop.
pub fn encode_stats_reply(buf: &mut Vec<u8>, id: u64, json: &str) {
    let body = json.as_bytes();
    let body = &body[..body.len().min(MAX_BODY_LEN - HEADER_LEN)];
    frame(buf, OP_R_STATS, id, |b| b.extend_from_slice(body));
}

/// Encodes one flight-recorder scrape request frame onto `buf` — the
/// client side of [`OP_TRACE`]. The payload is empty; the reply carries
/// the JSON.
pub fn encode_trace_request(buf: &mut Vec<u8>, id: u64) {
    frame(buf, OP_TRACE, id, |_| {});
}

/// Encodes one flight-recorder reply frame onto `buf`. Like the stats
/// reply, the JSON is truncated at the frame cap rather than panicking
/// the event loop (unreachable with default recorder capacities).
pub fn encode_trace_reply(buf: &mut Vec<u8>, id: u64, json: &str) {
    let body = json.as_bytes();
    let body = &body[..body.len().min(MAX_BODY_LEN - HEADER_LEN)];
    frame(buf, OP_R_TRACE, id, |b| b.extend_from_slice(body));
}

/// Encodes one profiling scrape request frame onto `buf` — the client
/// side of [`OP_PROFILE`]. The payload is empty; the reply carries the
/// JSON.
pub fn encode_profile_request(buf: &mut Vec<u8>, id: u64) {
    frame(buf, OP_PROFILE, id, |_| {});
}

/// Encodes one profiling reply frame onto `buf`. Like the stats reply,
/// the JSON is truncated at the frame cap rather than panicking the
/// event loop (unreachable: a profile document is a few hundred bytes).
pub fn encode_profile_reply(buf: &mut Vec<u8>, id: u64, json: &str) {
    let body = json.as_bytes();
    let body = &body[..body.len().min(MAX_BODY_LEN - HEADER_LEN)];
    frame(buf, OP_R_PROFILE, id, |b| b.extend_from_slice(body));
}

/// Encodes one stream-chunk reply frame onto `buf`.
///
/// # Panics
///
/// Panics if `entries` exceeds [`MAX_CHUNK_ENTRIES`] (callers split
/// first).
pub fn encode_range_chunk(buf: &mut Vec<u8>, id: u64, entries: &[(u64, u64)]) {
    assert!(
        entries.len() <= MAX_CHUNK_ENTRIES,
        "chunk exceeds the frame cap; split it"
    );
    // Reserve the whole frame up front — the streaming fast path calls
    // this straight off the gather seam, so the append must not re-grow.
    buf.reserve(4 + HEADER_LEN + 4 + entries.len() * 16);
    frame(buf, OP_R_RANGE_CHUNK, id, |b| put_pairs(b, entries));
}

/// Encodes one end-of-stream reply frame onto `buf`.
pub fn encode_range_end(buf: &mut Vec<u8>, id: u64, entries: u64) {
    frame(buf, OP_R_RANGE_END, id, |b| put_u64(b, entries));
}

/// Encodes one response frame onto `buf`.
pub fn encode_response(buf: &mut Vec<u8>, id: u64, response: &Response) {
    match response {
        Response::Lookup { key, payloads } => frame(buf, OP_R_LOOKUP, id, |b| {
            put_u64(b, *key);
            put_keys(b, payloads);
        }),
        Response::MultiLookup { matches } => {
            frame(buf, OP_R_MULTI_LOOKUP, id, |b| put_pairs(b, matches));
        }
        Response::JoinProbe { pairs } => frame(buf, OP_R_JOIN_PROBE, id, |b| put_pairs(b, pairs)),
        Response::RangeScan { entries } => {
            frame(buf, OP_R_RANGE_SCAN, id, |b| put_pairs(b, entries));
        }
        Response::Write { .. } => {
            // The verb (insert/delete/update) is not recoverable from
            // the response alone, and the reply opcode must mirror it.
            panic!("write replies need their request kind; use encode_write_reply");
        }
    }
}

/// Whether a request's encoded body fits under [`MAX_BODY_LEN`].
/// Callers (the client's `send`) must check before encoding — `frame`
/// asserts the cap, and an oversized body would otherwise panic the
/// encoder's thread.
#[must_use]
pub fn request_fits(request: &Request) -> bool {
    let payload = match request {
        Request::Lookup { .. } => 8,
        Request::MultiLookup { keys } | Request::JoinProbe { keys } => {
            4 + keys.len().saturating_mul(8)
        }
        Request::RangeScan { .. } => 25,
        Request::Insert { pairs } | Request::Update { pairs } => 4 + pairs.len().saturating_mul(16),
        Request::Delete { keys } => 4 + keys.len().saturating_mul(8),
    };
    HEADER_LEN + payload <= MAX_BODY_LEN
}

/// Whether a response's encoded body fits under [`MAX_BODY_LEN`].
/// The server must check before encoding a completed reply: the limit
/// on a `RangeScan` is client-controlled, so a legal request can
/// produce a reply bigger than any frame — that answers
/// [`ErrorCode::TooLarge`] instead of panicking the event loop.
#[must_use]
pub fn response_fits(response: &Response) -> bool {
    let payload = match response {
        Response::Lookup { payloads, .. } => 8 + 4 + payloads.len().saturating_mul(8),
        Response::MultiLookup { matches } => 4 + matches.len().saturating_mul(16),
        Response::JoinProbe { pairs } => 4 + pairs.len().saturating_mul(16),
        Response::RangeScan { entries } => 4 + entries.len().saturating_mul(16),
        Response::Write { acks } => 4 + acks.len(),
    };
    HEADER_LEN + payload <= MAX_BODY_LEN
}

/// Encodes one error frame onto `buf`.
pub fn encode_error(buf: &mut Vec<u8>, id: u64, error: &ErrorReply) {
    let msg = error.message.as_bytes();
    let msg = &msg[..msg.len().min(usize::from(u16::MAX))];
    frame(buf, OP_R_ERROR, id, |b| {
        b.push(error.code.to_u8());
        b.push(0); // reserved
        put_u16(b, msg.len() as u16);
        b.extend_from_slice(msg);
    });
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A little-endian cursor over one frame's payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, at: 0 }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.at)
            .ok_or(DecodeError::Payload("truncated payload"))?;
        self.at += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let raw = self.take(2)?;
        Ok(u16::from_le_bytes([raw[0], raw[1]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let raw = self.take(8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(raw);
        Ok(u64::from_le_bytes(le))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|end| *end <= self.bytes.len())
            .ok_or(DecodeError::Payload("truncated payload"))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn keys(&mut self) -> Result<Vec<u64>, DecodeError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(8) > self.bytes.len() - self.at {
            return Err(DecodeError::Payload("key count exceeds payload"));
        }
        (0..count).map(|_| self.u64()).collect()
    }

    fn pairs(&mut self) -> Result<Vec<(u64, u64)>, DecodeError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(16) > self.bytes.len() - self.at {
            return Err(DecodeError::Payload("pair count exceeds payload"));
        }
        (0..count).map(|_| Ok((self.u64()?, self.u64()?))).collect()
    }

    fn acks(&mut self) -> Result<Vec<bool>, DecodeError> {
        let count = self.u32()? as usize;
        let raw = self.take(count)?;
        if raw.iter().any(|b| *b > 1) {
            // Ack bytes are reserved beyond 0/1, like header bits.
            return Err(DecodeError::Payload("ack byte is not 0 or 1"));
        }
        Ok(raw.iter().map(|b| *b == 1).collect())
    }

    /// Everything not yet consumed (used by opcodes whose payload is
    /// "the rest of the body", like the stats JSON).
    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.bytes[self.at..];
        self.at = self.bytes.len();
        slice
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError::Payload("trailing bytes in payload"))
        }
    }
}

/// A parsed frame envelope: total size, opcode, id, payload slice, and
/// any header-level (but resynchronizable) problem.
struct Envelope<'a> {
    consumed: usize,
    opcode: u8,
    id: u64,
    payload: &'a [u8],
    header_error: Option<DecodeError>,
}

/// The envelope parse shared by both decode directions: yields the
/// frame's total size, id, opcode, and payload slice once the buffer
/// holds the whole frame.
fn envelope(buf: &[u8]) -> Result<Option<Envelope<'_>>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let body_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if body_len > MAX_BODY_LEN {
        return Err(FrameError::Oversize(body_len));
    }
    if body_len < HEADER_LEN {
        return Err(FrameError::Runt(body_len));
    }
    let total = 4 + body_len;
    if buf.len() < total {
        return Ok(None);
    }
    let version = buf[4];
    let opcode = buf[5];
    let reserved = u16::from_le_bytes([buf[6], buf[7]]);
    let id = u64::from_le_bytes(buf[8..16].try_into().expect("8 header bytes"));
    let payload = &buf[16..total];
    // Header-level problems are resynchronizable (the envelope held), so
    // they ride along for the caller to turn into `Decoded::Corrupt`.
    let header_error = if version != WIRE_VERSION {
        Some(DecodeError::Version(version))
    } else if reserved != 0 {
        Some(DecodeError::Reserved(reserved))
    } else {
        None
    };
    Ok(Some(Envelope {
        consumed: total,
        opcode,
        id,
        payload,
        header_error,
    }))
}

/// Decodes a scan-flags byte; undefined bits are `Malformed` (they are
/// reserved for future meaning, like the header's reserved bits).
fn scan_flags(c: &mut Cursor<'_>) -> Result<bool, DecodeError> {
    let flags = c.u8()?;
    if flags & !SCAN_FLAG_DESC != 0 {
        return Err(DecodeError::Payload("reserved scan-flag bits set"));
    }
    Ok(flags & SCAN_FLAG_DESC != 0)
}

fn decode_request_payload(opcode: u8, payload: &[u8]) -> Result<WireRequest, DecodeError> {
    let mut c = Cursor::new(payload);
    let request = match opcode {
        OP_LOOKUP => WireRequest::Plain(Request::Lookup { key: c.u64()? }),
        OP_MULTI_LOOKUP => WireRequest::Plain(Request::MultiLookup { keys: c.keys()? }),
        OP_JOIN_PROBE => WireRequest::Plain(Request::JoinProbe { keys: c.keys()? }),
        OP_RANGE_SCAN => WireRequest::Plain(Request::RangeScan {
            lo: c.u64()?,
            hi: c.u64()?,
            limit: limit_from_wire(c.u64()?),
            desc: false,
        }),
        OP_RANGE_SCAN2 => {
            let (lo, hi, limit) = (c.u64()?, c.u64()?, limit_from_wire(c.u64()?));
            WireRequest::Plain(Request::RangeScan {
                lo,
                hi,
                limit,
                desc: scan_flags(&mut c)?,
            })
        }
        OP_RANGE_STREAM => {
            let (lo, hi, limit) = (c.u64()?, c.u64()?, limit_from_wire(c.u64()?));
            WireRequest::Stream {
                lo,
                hi,
                limit,
                desc: scan_flags(&mut c)?,
            }
        }
        OP_STATS => WireRequest::Stats,
        OP_TRACE => WireRequest::Trace,
        OP_PROFILE => WireRequest::Profile,
        OP_INSERT => WireRequest::Plain(Request::Insert { pairs: c.pairs()? }),
        OP_DELETE => WireRequest::Plain(Request::Delete { keys: c.keys()? }),
        OP_UPDATE => WireRequest::Plain(Request::Update { pairs: c.pairs()? }),
        other => return Err(DecodeError::Opcode(other)),
    };
    c.finish()?;
    Ok(request)
}

fn decode_reply_payload(
    opcode: u8,
    payload: &[u8],
) -> Result<Result<Reply, ErrorReply>, DecodeError> {
    let mut c = Cursor::new(payload);
    let reply = match opcode {
        OP_R_LOOKUP => Ok(Reply::Response(Response::Lookup {
            key: c.u64()?,
            payloads: c.keys()?,
        })),
        OP_R_MULTI_LOOKUP => Ok(Reply::Response(Response::MultiLookup {
            matches: c.pairs()?,
        })),
        OP_R_JOIN_PROBE => Ok(Reply::Response(Response::JoinProbe { pairs: c.pairs()? })),
        OP_R_RANGE_SCAN => Ok(Reply::Response(Response::RangeScan {
            entries: c.pairs()?,
        })),
        OP_R_RANGE_CHUNK => Ok(Reply::RangeChunk(c.pairs()?)),
        OP_R_RANGE_END => Ok(Reply::RangeEnd { entries: c.u64()? }),
        OP_R_STATS => Ok(Reply::Stats {
            json: String::from_utf8(c.rest().to_vec())
                .map_err(|_| DecodeError::Payload("stats payload is not UTF-8"))?,
        }),
        OP_R_TRACE => Ok(Reply::Trace {
            json: String::from_utf8(c.rest().to_vec())
                .map_err(|_| DecodeError::Payload("trace payload is not UTF-8"))?,
        }),
        OP_R_PROFILE => Ok(Reply::Profile {
            json: String::from_utf8(c.rest().to_vec())
                .map_err(|_| DecodeError::Payload("profile payload is not UTF-8"))?,
        }),
        OP_R_INSERT | OP_R_DELETE | OP_R_UPDATE => {
            Ok(Reply::Response(Response::Write { acks: c.acks()? }))
        }
        OP_R_ERROR => {
            let code = ErrorCode::from_u8(c.u8()?);
            let _reserved = c.u8()?;
            let msg_len = c.u16()? as usize;
            let message = String::from_utf8_lossy(c.take(msg_len)?).into_owned();
            Err(ErrorReply { code, message })
        }
        other => return Err(DecodeError::Opcode(other)),
    };
    c.finish()?;
    Ok(reply)
}

/// Incrementally decodes one *request* frame from the front of `buf`
/// (the server side).
///
/// # Errors
///
/// [`FrameError`] when the envelope itself is violated — framing is
/// lost and the connection must close.
pub fn decode_request(buf: &[u8]) -> Result<Decoded<WireRequest>, FrameError> {
    let Some(Envelope {
        consumed,
        opcode,
        id,
        payload,
        header_error,
    }) = envelope(buf)?
    else {
        return Ok(Decoded::Incomplete);
    };
    if let Some(error) = header_error {
        return Ok(Decoded::Corrupt {
            consumed,
            id,
            error,
        });
    }
    match decode_request_payload(opcode, payload) {
        Ok(value) => Ok(Decoded::Frame {
            consumed,
            id,
            value,
        }),
        Err(error) => Ok(Decoded::Corrupt {
            consumed,
            id,
            error,
        }),
    }
}

/// Incrementally decodes one *reply* frame — a response or an error —
/// from the front of `buf` (the client side).
///
/// # Errors
///
/// [`FrameError`] when the envelope itself is violated — framing is
/// lost and the connection must close.
pub fn decode_reply(buf: &[u8]) -> Result<Decoded<Result<Reply, ErrorReply>>, FrameError> {
    let Some(Envelope {
        consumed,
        opcode,
        id,
        payload,
        header_error,
    }) = envelope(buf)?
    else {
        return Ok(Decoded::Incomplete);
    };
    if let Some(error) = header_error {
        return Ok(Decoded::Corrupt {
            consumed,
            id,
            error,
        });
    }
    match decode_reply_payload(opcode, payload) {
        Ok(value) => Ok(Decoded::Frame {
            consumed,
            id,
            value,
        }),
        Err(error) => Ok(Decoded::Corrupt {
            consumed,
            id,
            error,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: &Request) {
        let mut buf = Vec::new();
        encode_request(&mut buf, 42, request);
        match decode_request(&buf).unwrap() {
            Decoded::Frame {
                consumed,
                id,
                value,
            } => {
                assert_eq!(consumed, buf.len());
                assert_eq!(id, 42);
                assert_eq!(value, WireRequest::Plain(request.clone()));
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    fn roundtrip_reply(reply: &Result<Response, ErrorReply>, id: u64) {
        let mut buf = Vec::new();
        match reply {
            Ok(response) => encode_response(&mut buf, id, response),
            Err(error) => encode_error(&mut buf, id, error),
        }
        let want = reply.clone().map(Reply::Response);
        match decode_reply(&buf).unwrap() {
            Decoded::Frame {
                consumed,
                id: got_id,
                value,
            } => {
                assert_eq!(consumed, buf.len());
                assert_eq!(got_id, id);
                assert_eq!(value, want);
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn request_frames_roundtrip() {
        roundtrip_request(&Request::Lookup { key: 7 });
        roundtrip_request(&Request::MultiLookup { keys: vec![] });
        roundtrip_request(&Request::MultiLookup {
            keys: vec![1, u64::MAX, 3],
        });
        roundtrip_request(&Request::JoinProbe {
            keys: vec![9, 9, 9],
        });
        roundtrip_request(&Request::RangeScan {
            lo: 5,
            hi: 500,
            limit: 17,
            desc: false,
        });
        roundtrip_request(&Request::RangeScan {
            lo: 0,
            hi: u64::MAX,
            limit: usize::MAX,
            desc: false,
        });
        roundtrip_request(&Request::RangeScan {
            lo: 3,
            hi: 9,
            limit: 2,
            desc: true,
        });
    }

    #[test]
    fn ascending_scans_keep_the_flagless_v1_opcode() {
        // Back-compat: a plain ascending scan must still encode as the
        // original 0x04 layout a pre-streaming peer understands.
        let mut buf = Vec::new();
        encode_request(
            &mut buf,
            1,
            &Request::RangeScan {
                lo: 0,
                hi: 10,
                limit: 5,
                desc: false,
            },
        );
        assert_eq!(buf[5], OP_RANGE_SCAN);
        assert_eq!(buf.len(), 4 + HEADER_LEN + 24, "no flags byte");
        let mut buf = Vec::new();
        encode_request(
            &mut buf,
            1,
            &Request::RangeScan {
                lo: 0,
                hi: 10,
                limit: 5,
                desc: true,
            },
        );
        assert_eq!(buf[5], OP_RANGE_SCAN2);
        assert_eq!(buf.len(), 4 + HEADER_LEN + 25, "flags byte present");
    }

    #[test]
    fn stream_request_frames_roundtrip() {
        for (limit, desc) in [(17usize, false), (usize::MAX, true)] {
            let mut buf = Vec::new();
            encode_range_stream(&mut buf, 9, 5, 500, limit, desc);
            match decode_request(&buf).unwrap() {
                Decoded::Frame {
                    consumed,
                    id,
                    value,
                } => {
                    assert_eq!((consumed, id), (buf.len(), 9));
                    assert_eq!(
                        value,
                        WireRequest::Stream {
                            lo: 5,
                            hi: 500,
                            limit,
                            desc,
                        }
                    );
                }
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn chunk_and_end_frames_roundtrip() {
        let mut buf = Vec::new();
        encode_range_chunk(&mut buf, 7, &[(1, 10), (2, 20)]);
        let first_len = buf.len();
        encode_range_end(&mut buf, 7, 2);
        match decode_reply(&buf).unwrap() {
            Decoded::Frame {
                consumed,
                id,
                value,
            } => {
                assert_eq!((consumed, id), (first_len, 7));
                assert_eq!(value, Ok(Reply::RangeChunk(vec![(1, 10), (2, 20)])));
                match decode_reply(&buf[consumed..]).unwrap() {
                    Decoded::Frame { id, value, .. } => {
                        assert_eq!(id, 7);
                        assert_eq!(value, Ok(Reply::RangeEnd { entries: 2 }));
                    }
                    other => panic!("expected end frame, got {other:?}"),
                }
            }
            other => panic!("expected chunk frame, got {other:?}"),
        }
        // An empty chunk is legal on the wire (servers simply avoid
        // sending them).
        let mut buf = Vec::new();
        encode_range_chunk(&mut buf, 8, &[]);
        match decode_reply(&buf).unwrap() {
            Decoded::Frame { value, .. } => assert_eq!(value, Ok(Reply::RangeChunk(vec![]))),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn stats_frames_roundtrip() {
        // Request: empty payload under the new 0x07 opcode.
        let mut buf = Vec::new();
        encode_stats_request(&mut buf, 21);
        assert_eq!(buf[5], OP_STATS);
        assert_eq!(buf.len(), 4 + HEADER_LEN, "empty payload");
        match decode_request(&buf).unwrap() {
            Decoded::Frame {
                consumed,
                id,
                value,
            } => {
                assert_eq!((consumed, id), (buf.len(), 21));
                assert_eq!(value, WireRequest::Stats);
            }
            other => panic!("expected frame, got {other:?}"),
        }
        // A stats request with trailing bytes is malformed, not ignored.
        let mut buf = Vec::new();
        frame(&mut buf, OP_STATS, 22, |b| b.push(1));
        match decode_request(&buf).unwrap() {
            Decoded::Corrupt { error, .. } => {
                assert_eq!(error, DecodeError::Payload("trailing bytes in payload"));
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        // Reply: the body is the JSON, verbatim.
        let json = r#"{"total_keys": 7, "latency": {"count": 3}}"#;
        let mut buf = Vec::new();
        encode_stats_reply(&mut buf, 21, json);
        assert_eq!(buf[5], OP_R_STATS);
        match decode_reply(&buf).unwrap() {
            Decoded::Frame { id, value, .. } => {
                assert_eq!(id, 21);
                assert_eq!(
                    value,
                    Ok(Reply::Stats {
                        json: json.to_string(),
                    })
                );
            }
            other => panic!("expected frame, got {other:?}"),
        }
        // Non-UTF-8 stats bodies are corrupt but resynchronizable.
        let mut buf = Vec::new();
        frame(&mut buf, OP_R_STATS, 23, |b| {
            b.extend_from_slice(&[0xFF, 0xFE])
        });
        match decode_reply(&buf).unwrap() {
            Decoded::Corrupt { id, error, .. } => {
                assert_eq!(id, 23);
                assert_eq!(error, DecodeError::Payload("stats payload is not UTF-8"));
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn trace_frames_roundtrip() {
        // Request: empty payload under the rule-4 0x08 opcode.
        let mut buf = Vec::new();
        encode_trace_request(&mut buf, 31);
        assert_eq!(buf[5], OP_TRACE);
        assert_eq!(buf.len(), 4 + HEADER_LEN, "empty payload");
        match decode_request(&buf).unwrap() {
            Decoded::Frame {
                consumed,
                id,
                value,
            } => {
                assert_eq!((consumed, id), (buf.len(), 31));
                assert_eq!(value, WireRequest::Trace);
            }
            other => panic!("expected frame, got {other:?}"),
        }
        // A trace request with trailing bytes is malformed, not ignored.
        let mut buf = Vec::new();
        frame(&mut buf, OP_TRACE, 32, |b| b.push(1));
        match decode_request(&buf).unwrap() {
            Decoded::Corrupt { error, .. } => {
                assert_eq!(error, DecodeError::Payload("trailing bytes in payload"));
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        // Reply: the body is the JSON, verbatim.
        let json = r#"{"capacity":256,"depth":1,"traces":[{"id":9,"kind":"lookup"}]}"#;
        let mut buf = Vec::new();
        encode_trace_reply(&mut buf, 31, json);
        assert_eq!(buf[5], OP_R_TRACE);
        match decode_reply(&buf).unwrap() {
            Decoded::Frame { id, value, .. } => {
                assert_eq!(id, 31);
                assert_eq!(
                    value,
                    Ok(Reply::Trace {
                        json: json.to_string(),
                    })
                );
            }
            other => panic!("expected frame, got {other:?}"),
        }
        // Non-UTF-8 trace bodies are corrupt but resynchronizable.
        let mut buf = Vec::new();
        frame(&mut buf, OP_R_TRACE, 33, |b| {
            b.extend_from_slice(&[0xFF, 0xFE])
        });
        match decode_reply(&buf).unwrap() {
            Decoded::Corrupt { id, error, .. } => {
                assert_eq!(id, 33);
                assert_eq!(error, DecodeError::Payload("trace payload is not UTF-8"));
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn profile_frames_roundtrip() {
        // Request: empty payload under the rule-4 0x09 opcode.
        let mut buf = Vec::new();
        encode_profile_request(&mut buf, 41);
        assert_eq!(buf[5], OP_PROFILE);
        assert_eq!(buf.len(), 4 + HEADER_LEN, "empty payload");
        match decode_request(&buf).unwrap() {
            Decoded::Frame {
                consumed,
                id,
                value,
            } => {
                assert_eq!((consumed, id), (buf.len(), 41));
                assert_eq!(value, WireRequest::Profile);
            }
            other => panic!("expected frame, got {other:?}"),
        }
        // A profile request with trailing bytes is malformed, not ignored.
        let mut buf = Vec::new();
        frame(&mut buf, OP_PROFILE, 42, |b| b.push(1));
        match decode_request(&buf).unwrap() {
            Decoded::Corrupt { error, .. } => {
                assert_eq!(error, DecodeError::Payload("trailing bytes in payload"));
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        // Reply: the body is the JSON, verbatim.
        let json = r#"{"enabled": true, "prof": {"backend":"soft","hw":false}}"#;
        let mut buf = Vec::new();
        encode_profile_reply(&mut buf, 41, json);
        assert_eq!(buf[5], OP_R_PROFILE);
        match decode_reply(&buf).unwrap() {
            Decoded::Frame { id, value, .. } => {
                assert_eq!(id, 41);
                assert_eq!(
                    value,
                    Ok(Reply::Profile {
                        json: json.to_string(),
                    })
                );
            }
            other => panic!("expected frame, got {other:?}"),
        }
        // Non-UTF-8 profile bodies are corrupt but resynchronizable.
        let mut buf = Vec::new();
        frame(&mut buf, OP_R_PROFILE, 43, |b| {
            b.extend_from_slice(&[0xFF, 0xFE])
        });
        match decode_reply(&buf).unwrap() {
            Decoded::Corrupt { id, error, .. } => {
                assert_eq!(id, 43);
                assert_eq!(error, DecodeError::Payload("profile payload is not UTF-8"));
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn write_request_frames_roundtrip() {
        roundtrip_request(&Request::Insert {
            pairs: vec![(1, 10), (u64::MAX, 0)],
        });
        roundtrip_request(&Request::Insert { pairs: vec![] });
        roundtrip_request(&Request::Delete {
            keys: vec![3, 3, 9],
        });
        roundtrip_request(&Request::Update {
            pairs: vec![(7, 70)],
        });
        // Each verb travels under its own rule-4 opcode.
        for (request, opcode) in [
            (
                Request::Insert {
                    pairs: vec![(1, 2)],
                },
                OP_INSERT,
            ),
            (Request::Delete { keys: vec![1] }, OP_DELETE),
            (
                Request::Update {
                    pairs: vec![(1, 2)],
                },
                OP_UPDATE,
            ),
        ] {
            let mut buf = Vec::new();
            encode_request(&mut buf, 1, &request);
            assert_eq!(buf[5], opcode);
        }
    }

    #[test]
    fn write_reply_frames_roundtrip_under_mirrored_opcodes() {
        for (kind, opcode) in [
            (WriteKind::Insert, OP_R_INSERT),
            (WriteKind::Delete, OP_R_DELETE),
            (WriteKind::Update, OP_R_UPDATE),
        ] {
            let acks = vec![true, false, true];
            let mut buf = Vec::new();
            encode_write_reply(&mut buf, 17, kind, &acks);
            assert_eq!(buf[5], opcode);
            match decode_reply(&buf).unwrap() {
                Decoded::Frame {
                    consumed,
                    id,
                    value,
                } => {
                    assert_eq!((consumed, id), (buf.len(), 17));
                    assert_eq!(value, Ok(Reply::Response(Response::Write { acks })));
                }
                other => panic!("expected frame, got {other:?}"),
            }
        }
        // Empty ack lists are legal (an empty batch round-trips).
        let mut buf = Vec::new();
        encode_write_reply(&mut buf, 1, WriteKind::Insert, &[]);
        match decode_reply(&buf).unwrap() {
            Decoded::Frame { value, .. } => {
                assert_eq!(value, Ok(Reply::Response(Response::Write { acks: vec![] })));
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn write_kind_maps_requests() {
        assert_eq!(
            WriteKind::of(&Request::Insert { pairs: vec![] }),
            Some(WriteKind::Insert)
        );
        assert_eq!(
            WriteKind::of(&Request::Delete { keys: vec![] }),
            Some(WriteKind::Delete)
        );
        assert_eq!(
            WriteKind::of(&Request::Update { pairs: vec![] }),
            Some(WriteKind::Update)
        );
        assert_eq!(WriteKind::of(&Request::Lookup { key: 1 }), None);
    }

    #[test]
    fn undefined_ack_bytes_are_malformed() {
        let mut buf = Vec::new();
        frame(&mut buf, OP_R_DELETE, 5, |b| {
            put_u32(b, 2);
            b.push(1);
            b.push(2); // reserved value
        });
        match decode_reply(&buf).unwrap() {
            Decoded::Corrupt { id, error, .. } => {
                assert_eq!(id, 5);
                assert_eq!(error, DecodeError::Payload("ack byte is not 0 or 1"));
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        // An ack count past the payload is caught by the cursor.
        let mut buf = Vec::new();
        frame(&mut buf, OP_R_INSERT, 6, |b| {
            put_u32(b, 9);
            b.push(1);
        });
        match decode_reply(&buf).unwrap() {
            Decoded::Corrupt { error, .. } => {
                assert!(matches!(error, DecodeError::Payload(_)), "{error:?}");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn write_fits_helpers_agree_with_the_cap() {
        let max_pairs = (MAX_BODY_LEN - HEADER_LEN - 4) / 16;
        assert!(request_fits(&Request::Insert {
            pairs: vec![(0, 0); max_pairs],
        }));
        assert!(!request_fits(&Request::Update {
            pairs: vec![(0, 0); max_pairs + 1],
        }));
        let max_keys = (MAX_BODY_LEN - HEADER_LEN - 4) / 8;
        assert!(request_fits(&Request::Delete {
            keys: vec![0; max_keys],
        }));
        assert!(!request_fits(&Request::Delete {
            keys: vec![0; max_keys + 1],
        }));
        assert!(response_fits(&Response::Write {
            acks: vec![true; 1024],
        }));
    }

    #[test]
    fn reserved_scan_flag_bits_are_malformed() {
        let mut buf = Vec::new();
        encode_range_stream(&mut buf, 3, 0, 10, 5, true);
        *buf.last_mut().unwrap() = 0x83; // desc plus two undefined bits
        match decode_request(&buf).unwrap() {
            Decoded::Corrupt { id, error, .. } => {
                assert_eq!(id, 3);
                assert!(matches!(error, DecodeError::Payload(_)), "{error:?}");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn reply_frames_roundtrip() {
        roundtrip_reply(
            &Ok(Response::Lookup {
                key: 3,
                payloads: vec![1, 2],
            }),
            0,
        );
        roundtrip_reply(&Ok(Response::MultiLookup { matches: vec![] }), 1);
        roundtrip_reply(
            &Ok(Response::JoinProbe {
                pairs: vec![(0, 9), (7, 9)],
            }),
            u64::MAX,
        );
        roundtrip_reply(
            &Ok(Response::RangeScan {
                entries: vec![(1, 10), (2, 20)],
            }),
            5,
        );
        roundtrip_reply(&Err(ErrorReply::new(ErrorCode::Busy, "queue full")), 99);
        roundtrip_reply(&Err(ErrorReply::new(ErrorCode::Other(200), "")), 100);
    }

    #[test]
    fn incremental_decode_waits_for_whole_frame() {
        let mut buf = Vec::new();
        encode_request(&mut buf, 1, &Request::MultiLookup { keys: vec![1, 2] });
        for cut in 0..buf.len() {
            assert!(
                matches!(decode_request(&buf[..cut]).unwrap(), Decoded::Incomplete),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        // Two frames back to back: the first decode consumes exactly one.
        let first_len = buf.len();
        encode_request(&mut buf, 2, &Request::Lookup { key: 5 });
        match decode_request(&buf).unwrap() {
            Decoded::Frame { consumed, id, .. } => {
                assert_eq!((consumed, id), (first_len, 1));
                match decode_request(&buf[consumed..]).unwrap() {
                    Decoded::Frame { id, .. } => assert_eq!(id, 2),
                    other => panic!("expected second frame, got {other:?}"),
                }
            }
            other => panic!("expected first frame, got {other:?}"),
        }
    }

    #[test]
    fn unknown_opcode_is_corrupt_but_resyncable() {
        let mut buf = Vec::new();
        frame(&mut buf, 0x5A, 77, |b| put_u64(b, 1234));
        match decode_request(&buf).unwrap() {
            Decoded::Corrupt {
                consumed,
                id,
                error,
            } => {
                assert_eq!(consumed, buf.len());
                assert_eq!(id, 77);
                assert_eq!(error, DecodeError::Opcode(0x5A));
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn unknown_version_is_corrupt_but_resyncable() {
        let mut buf = Vec::new();
        encode_request(&mut buf, 3, &Request::Lookup { key: 1 });
        buf[4] = 9; // future version
        match decode_request(&buf).unwrap() {
            Decoded::Corrupt { id, error, .. } => {
                assert_eq!(id, 3);
                assert_eq!(error, DecodeError::Version(9));
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn reserved_bits_are_rejected() {
        let mut buf = Vec::new();
        encode_request(&mut buf, 3, &Request::Lookup { key: 1 });
        buf[6] = 1;
        match decode_request(&buf).unwrap() {
            Decoded::Corrupt { error, .. } => assert_eq!(error, DecodeError::Reserved(1)),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn payload_shape_violations_are_corrupt() {
        // A MultiLookup claiming more keys than the payload holds.
        let mut buf = Vec::new();
        frame(&mut buf, OP_MULTI_LOOKUP, 8, |b| {
            put_u32(b, 10); // claims 10 keys...
            put_u64(b, 1); // ...carries one
        });
        match decode_request(&buf).unwrap() {
            Decoded::Corrupt { error, .. } => {
                assert!(matches!(error, DecodeError::Payload(_)), "{error:?}");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        // Trailing garbage after a complete Lookup payload.
        let mut buf = Vec::new();
        frame(&mut buf, OP_LOOKUP, 9, |b| {
            put_u64(b, 1);
            b.push(0xAB);
        });
        match decode_request(&buf).unwrap() {
            Decoded::Corrupt { error, .. } => {
                assert_eq!(error, DecodeError::Payload("trailing bytes in payload"));
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn envelope_violations_are_hard_errors() {
        // Oversize: length prefix beyond the cap.
        let mut buf = ((MAX_BODY_LEN + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 32]);
        assert_eq!(
            decode_request(&buf).unwrap_err(),
            FrameError::Oversize(MAX_BODY_LEN + 1)
        );
        // Runt: body shorter than the header.
        let buf = 4u32.to_le_bytes().to_vec();
        assert_eq!(decode_request(&buf).unwrap_err(), FrameError::Runt(4));
    }

    #[test]
    fn request_and_reply_opcodes_do_not_cross_decode() {
        let mut buf = Vec::new();
        encode_request(&mut buf, 1, &Request::Lookup { key: 2 });
        match decode_reply(&buf).unwrap() {
            Decoded::Corrupt { error, .. } => assert_eq!(error, DecodeError::Opcode(OP_LOOKUP)),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn fits_helpers_agree_with_the_cap() {
        // Exactly at the cap: (MAX_BODY_LEN - header - count word) / 16
        // pairs fit; one more does not.
        let max_pairs = (MAX_BODY_LEN - HEADER_LEN - 4) / 16;
        let at_cap = Response::RangeScan {
            entries: vec![(0, 0); max_pairs],
        };
        assert!(response_fits(&at_cap));
        let mut buf = Vec::new();
        encode_response(&mut buf, 1, &at_cap); // must not trip the encoder assert
        assert_eq!(buf.len(), 4 + MAX_BODY_LEN);
        let over_cap = Response::RangeScan {
            entries: vec![(0, 0); max_pairs + 1],
        };
        assert!(!response_fits(&over_cap));

        let max_keys = (MAX_BODY_LEN - HEADER_LEN - 4) / 8;
        assert!(request_fits(&Request::MultiLookup {
            keys: vec![0; max_keys],
        }));
        assert!(!request_fits(&Request::MultiLookup {
            keys: vec![0; max_keys + 1],
        }));
        assert!(request_fits(&Request::RangeScan {
            lo: 0,
            hi: u64::MAX,
            limit: usize::MAX,
            desc: true,
        }));
        assert_eq!(MAX_CHUNK_ENTRIES, (MAX_BODY_LEN - HEADER_LEN - 4) / 16);
    }

    #[test]
    fn error_message_truncates_to_u16() {
        let long = "x".repeat(usize::from(u16::MAX) + 500);
        let mut buf = Vec::new();
        encode_error(&mut buf, 1, &ErrorReply::new(ErrorCode::Malformed, long));
        match decode_reply(&buf).unwrap() {
            Decoded::Frame { value: Err(e), .. } => {
                assert_eq!(e.message.len(), usize::from(u16::MAX));
            }
            other => panic!("expected error frame, got {other:?}"),
        }
    }
}
